"""Tests for the trace broadcast hub and the subscribe protocol verb.

Covers the hub's contract in isolation (sequence numbers, drop-oldest,
resume backfill, subscriber caps) and end-to-end over the wire: many
concurrent viewers following one query, slow consumers hitting
drop-oldest without slowing the query, resume-from-sequence after a
disconnect, and subscribing to unknown or finished queries.
"""

import threading
import time

import pytest

from repro.errors import (
    RequestTimeoutError,
    ServerError,
    ServerOverloadedError,
)
from repro.profiler.broadcast import TraceBroadcastHub
from repro.server import Database, MClient, Mserver
from repro.tpch import populate


@pytest.fixture(scope="module")
def database():
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=0.05, seed=3)
    return db


class TestHubUnit:
    def test_sequence_numbers_are_monotonic(self):
        hub = TraceBroadcastHub()
        sub = hub.subscribe()
        for i in range(5):
            hub.publish("event", f"line-{i}", query_id="q1")
        seqs = [e.seq for e in sub.pop_batch()]
        assert seqs == [0, 1, 2, 3, 4]
        sub.close()

    def test_every_subscriber_sees_every_entry(self):
        hub = TraceBroadcastHub()
        subs = [hub.subscribe() for _ in range(10)]
        for i in range(20):
            hub.publish("event", f"line-{i}")
        for sub in subs:
            lines = [e.line for e in sub.pop_batch()]
            assert lines == [f"line-{i}" for i in range(20)]
            sub.close()

    def test_slow_subscriber_drops_oldest(self):
        hub = TraceBroadcastHub()
        sub = hub.subscribe(buffer_size=4)
        for i in range(10):
            hub.publish("event", f"line-{i}")
        batch = sub.pop_batch()
        # the 6 oldest entries were evicted, the newest 4 survive
        assert [e.line for e in batch] == [f"line-{i}" for i in range(6, 10)]
        assert sub.dropped == 6
        sub.close()

    def test_publish_never_blocks_on_full_buffer(self):
        hub = TraceBroadcastHub()
        hub.subscribe(buffer_size=1)  # never drained
        began = time.monotonic()
        for i in range(1000):
            hub.publish("event", f"line-{i}")
        assert time.monotonic() - began < 1.0

    def test_resume_backfills_from_ring(self):
        hub = TraceBroadcastHub(history=100)
        for i in range(10):
            hub.publish("event", f"line-{i}")
        sub = hub.subscribe(from_seq=4)
        assert [e.seq for e in sub.pop_batch()] == [4, 5, 6, 7, 8, 9]
        assert sub.missed == 0
        sub.close()

    def test_resume_gap_older_than_ring_is_counted(self):
        hub = TraceBroadcastHub(history=4)
        for i in range(10):
            hub.publish("event", f"line-{i}")
        sub = hub.subscribe(from_seq=0)
        # ring holds seqs 6..9; 0..5 are gone and reported as missed
        assert sub.missed == 6
        assert [e.seq for e in sub.pop_batch()] == [6, 7, 8, 9]
        sub.close()

    def test_query_filter(self):
        hub = TraceBroadcastHub()
        sub = hub.subscribe(query_id="q2")
        hub.publish("event", "a", query_id="q1")
        hub.publish("event", "b", query_id="q2")
        hub.publish("event", "c", query_id="q1")
        assert [e.line for e in sub.pop_batch()] == ["b"]
        sub.close()

    def test_max_subscribers_refused_typed(self):
        hub = TraceBroadcastHub(max_subscribers=2)
        a = hub.subscribe()
        b = hub.subscribe()
        with pytest.raises(ServerOverloadedError):
            hub.subscribe()
        a.close()
        hub.subscribe().close()  # a slot freed up
        b.close()

    def test_wait_batch_wakes_on_publish(self):
        hub = TraceBroadcastHub()
        sub = hub.subscribe()
        result = []

        def consume():
            result.extend(sub.wait_batch(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        hub.publish("event", "wake-up")
        thread.join(timeout=5.0)
        assert [e.line for e in result] == ["wake-up"]
        sub.close()

    def test_close_all_wakes_waiters(self):
        hub = TraceBroadcastHub()
        sub = hub.subscribe()
        thread = threading.Thread(
            target=lambda: sub.wait_batch(timeout=5.0))
        thread.start()
        time.sleep(0.05)
        hub.close_all()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert not hub.active()

    def test_stats_shape(self):
        hub = TraceBroadcastHub()
        sub = hub.subscribe()
        hub.publish("event", "x")
        stats = hub.stats()
        assert stats["subscribers"] == 1
        assert stats["published"] == 1
        assert stats["retained"] == 1
        sub.close()
        assert hub.stats()["subscribers"] == 0


class TestSubscribeProtocol:
    @pytest.fixture()
    def server(self, database):
        with Mserver(database) as srv:
            yield srv

    def test_two_viewers_follow_one_query(self, server):
        with MClient(port=server.port) as v1, \
                MClient(port=server.port) as v2, \
                MClient(port=server.port) as runner:
            s1 = v1.subscribe()
            s2 = v2.subscribe()
            runner.query("select count(*) from customer")
            e1 = list(s1.entries(until_end=True, max_seconds=5.0))
            e2 = list(s2.entries(until_end=True, max_seconds=5.0))
        kinds = {e["kind"] for e in e1}
        assert kinds == {"dot", "event", "end"}
        # both viewers saw the identical sequence — zero loss
        assert [e["seq"] for e in e1] == [e["seq"] for e in e2]
        assert e1[0]["line"].startswith("#dot\t")
        assert e1[-1]["kind"] == "end"

    def test_entries_carry_query_id(self, server):
        with MClient(port=server.port) as viewer, \
                MClient(port=server.port) as runner:
            sub = viewer.subscribe()
            result = runner.query("select count(*) from region")
            entries = list(sub.entries(until_end=True, max_seconds=5.0))
        assert entries
        assert {e["query_id"] for e in entries} == {result.query_id}

    def test_unsubscribe_returns_summary_and_frees_connection(
            self, server):
        with MClient(port=server.port) as viewer, \
                MClient(port=server.port) as runner:
            sub = viewer.subscribe()
            runner.query("select count(*) from region")
            list(sub.entries(until_end=True, max_seconds=5.0))
            summary = sub.stop()
            assert summary["unsubscribed"] is True
            assert summary["delivered"] > 0
            # the connection is an ordinary client again
            assert viewer.ping()
            assert viewer.query(
                "select count(*) from region").rows[0][0] > 0

    def test_requests_blocked_while_subscribed(self, server):
        with MClient(port=server.port) as viewer:
            sub = viewer.subscribe()
            with pytest.raises(ServerError):
                viewer.ping()
            sub.stop()
            assert viewer.ping()

    def test_subscriber_survives_idle_timeout(self, server, monkeypatch):
        # The reader arms its timed wait before the processor handles a
        # pipelined subscribe; a watcher that then only reads (sending
        # no further bytes) must NOT be hung up when that stale timed
        # wait fires — the subscribed exemption has to win the race.
        from repro.server import mserver as mserver_mod
        monkeypatch.setattr(mserver_mod, "_IDLE_TIMEOUT_S", 0.3)
        with MClient(port=server.port) as viewer:
            sub = viewer.subscribe()
            time.sleep(1.0)  # silent for >3x the idle timeout
            server.hub.publish("event", "still-alive", query_id="qx")
            entry = sub.next_entry(timeout=2.0)
            assert entry is not None
            assert entry["line"] == "still-alive"
            summary = sub.stop()
            assert summary["unsubscribed"] is True

    def test_stop_timeout_breaks_connection_for_clean_reuse(
            self, server, monkeypatch):
        # If the unsubscribe handshake times out, the connection may
        # still be streaming — stop() must drop it (forcing the next
        # request onto a fresh connection) rather than leave the client
        # reading stray broadcast entries as responses.
        with MClient(port=server.port) as viewer:
            viewer.subscribe()
            sub = viewer._subscription
            monkeypatch.setattr(viewer, "_recv_message",
                                lambda timeout: None)
            with pytest.raises(RequestTimeoutError):
                sub.stop(timeout=0.3)
            monkeypatch.undo()
            assert viewer._subscription is None
            assert viewer._socket is None  # broken, not half-streaming
            assert viewer.ping()  # reconnects cleanly

    def test_subscribe_unknown_query_rejected(self, server):
        with MClient(port=server.port) as client:
            with pytest.raises(ServerError, match="unknown query"):
                client.subscribe(query_id="q999999")
            assert client.ping()  # connection survives the error

    def test_subscribe_finished_query_replays_retained_trace(
            self, server):
        with MClient(port=server.port) as runner:
            # run with a live (throwaway) subscriber so the hub records
            with MClient(port=server.port) as warmup:
                warm = warmup.subscribe()
                result = runner.query("select count(*) from nation")
                list(warm.entries(until_end=True, max_seconds=5.0))
                warm.stop()
            # the query has finished; its trace is still in the ring
            with MClient(port=server.port) as late:
                sub = late.subscribe(query_id=result.query_id)
                entries = list(sub.entries(until_end=True,
                                           max_seconds=5.0))
                sub.stop()
        assert entries
        assert entries[-1]["kind"] == "end"
        assert {e["query_id"] for e in entries} == {result.query_id}

    def test_resume_from_sequence_after_disconnect(self, server):
        with MClient(port=server.port) as viewer, \
                MClient(port=server.port) as runner:
            sub = viewer.subscribe()
            runner.query("select count(*) from customer")
            first = list(sub.entries(until_end=True, max_seconds=5.0))
            assert first
            cut_at = first[len(first) // 2]["seq"]
            # the viewer "crashes" mid-stream without unsubscribing
            viewer._teardown()
            # a fresh connection resumes from where it left off
            with MClient(port=server.port) as fresh:
                resumed = fresh.subscribe(from_seq=cut_at + 1)
                assert resumed.missed == 0
                rest = list(resumed.entries(until_end=True,
                                            max_seconds=5.0))
                resumed.stop()
        assert [e["seq"] for e in rest] == \
            [e["seq"] for e in first if e["seq"] > cut_at]

    def test_slow_consumer_hits_drop_oldest_not_the_query(
            self, server):
        with MClient(port=server.port) as viewer, \
                MClient(port=server.port) as runner:
            # tiny buffer and a consumer that never reads during the
            # query: oldest entries are evicted server-side
            sub = viewer.subscribe(buffer=2)
            began = time.monotonic()
            result = runner.query("select count(*) from lineitem")
            elapsed = time.monotonic() - began
            assert result.rows[0][0] > 0
            # let the stream task flush the surviving entries
            list(sub.entries(idle_timeout=0.5, max_seconds=3.0))
            summary = sub.stop()
        assert summary["dropped"] > 0
        # the query was never blocked on the stalled viewer
        assert elapsed < 10.0

    def test_subscribe_refused_past_max_subscribers(self, database):
        with Mserver(database, max_subscribers=2) as server:
            with MClient(port=server.port) as a, \
                    MClient(port=server.port) as b, \
                    MClient(port=server.port) as c:
                sa = a.subscribe()
                sb = b.subscribe()
                with pytest.raises(ServerOverloadedError):
                    c.subscribe()
                sa.stop()
                sb.stop()

    def test_double_subscribe_on_one_connection_rejected(self, server):
        with MClient(port=server.port) as viewer:
            sub = viewer.subscribe()
            with pytest.raises(ServerError):
                viewer.subscribe()
            sub.stop()

    def test_unsubscribe_without_subscription_rejected(self, server):
        with MClient(port=server.port) as client:
            with pytest.raises(ServerError, match="not subscribed"):
                client._call({"op": "unsubscribe"})
            assert client.ping()

    def test_stats_includes_broadcast_block(self, server):
        with MClient(port=server.port) as client:
            response = client._call({"op": "stats"})
        assert "broadcast" in response
        assert "subscribers" in response["broadcast"]


class TestManySubscribers:
    def test_hundred_subscribers_zero_loss(self, database):
        """100+ keep-up viewers follow one TPC-H query, zero loss."""
        target = 104
        with Mserver(database, max_subscribers=256,
                     subscriber_buffer=4096) as server:
            clients = [MClient(port=server.port) for _ in range(target)]
            try:
                subs = [c.subscribe() for c in clients]
                with MClient(port=server.port) as runner:
                    runner.query("select count(*) from lineitem")
                streams = []
                for sub in subs:
                    entries = list(sub.entries(until_end=True,
                                               max_seconds=10.0))
                    streams.append(entries)
                    summary = sub.stop()
                    assert summary["dropped"] == 0
                    assert summary["missed"] == 0
            finally:
                for client in clients:
                    client.close()
        reference = [e["seq"] for e in streams[0]]
        assert reference, "no entries delivered"
        assert all([e["seq"] for e in s] == reference for s in streams)
