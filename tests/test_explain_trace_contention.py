"""Tests for EXPLAIN/TRACE SQL modifiers and the contention model."""

import pytest

from repro.errors import MalRuntimeError
from repro.mal.dataflow import SimulatedScheduler
from repro.mal.optimizer import default_pipe
from repro.server import Database
from repro.sqlfe import compile_sql
from repro.storage import Catalog
from repro.tpch import populate, query_sql


@pytest.fixture(scope="module")
def db():
    database = Database(workers=4, mitosis_threshold=200)
    populate(database.catalog, scale_factor=0.1, seed=5)
    return database


class TestExplainStatement:
    def test_explain_returns_plan_rows(self, db):
        outcome = db.execute("explain select count(*) from lineitem")
        assert outcome.columns == ["mal"]
        text = "\n".join(r[0] for r in outcome.rows)
        assert text.startswith("function user.")
        assert "end " in text

    def test_explain_does_not_execute(self, db):
        outcome = db.execute(
            "explain select count(*) from lineitem where l_quantity > 5"
        )
        assert outcome.execution is None

    def test_explain_case_insensitive(self, db):
        outcome = db.execute("EXPLAIN select count(*) from region")
        assert outcome.columns == ["mal"]


class TestTraceStatement:
    def test_trace_returns_event_rows(self, db):
        outcome = db.execute("trace select count(*) from region")
        assert outcome.columns[:4] == ["event", "clock", "status", "pc"]
        statuses = {row[2] for row in outcome.rows}
        assert statuses == {"start", "done"}

    def test_trace_rows_pair_up(self, db):
        outcome = db.execute("trace select count(*) from nation")
        starts = sum(1 for r in outcome.rows if r[2] == "start")
        dones = sum(1 for r in outcome.rows if r[2] == "done")
        assert starts == dones > 0

    def test_trace_carries_statement_text(self, db):
        outcome = db.execute("trace select count(*) from region")
        assert any("sql.tid" in row[7] for row in outcome.rows)


class TestContention:
    def program(self, db, workers=4):
        pipeline = default_pipe(nparts=workers, mitosis_threshold=200)
        for opt_pass in pipeline.passes:
            if hasattr(opt_pass, "catalog"):
                opt_pass.catalog = db.catalog
        return pipeline.apply(
            compile_sql(db.catalog, query_sql("q6"))
        )

    def test_contention_inflates_parallel_makespan(self, db):
        program = self.program(db)
        ideal = SimulatedScheduler(db.catalog, workers=4).run(program)
        contended = SimulatedScheduler(
            db.catalog, workers=4, contention=0.2
        ).run(self.program(db))
        assert contended.total_usec > ideal.total_usec

    def test_contention_ignores_sequential_runs(self, db):
        program = self.program(db, workers=1)
        program.dataflow_enabled = False
        a = SimulatedScheduler(db.catalog, workers=1).run(program)
        b = SimulatedScheduler(
            db.catalog, workers=1, contention=0.5
        ).run(program)
        assert a.total_usec == b.total_usec  # never >0 other busy workers

    def test_contention_makes_speedup_sublinear(self, db):
        serial = SimulatedScheduler(db.catalog, workers=1).run(
            self.program(db)
        ).total_usec
        ideal = SimulatedScheduler(db.catalog, workers=4).run(
            self.program(db)
        ).total_usec
        contended = SimulatedScheduler(
            db.catalog, workers=4, contention=0.15
        ).run(self.program(db)).total_usec
        assert serial / contended < serial / ideal

    def test_negative_contention_rejected(self, db):
        with pytest.raises(MalRuntimeError):
            SimulatedScheduler(db.catalog, contention=-0.1)

    def test_deterministic_under_contention(self, db):
        a = SimulatedScheduler(
            db.catalog, workers=4, contention=0.1
        ).run(self.program(db))
        b = SimulatedScheduler(
            db.catalog, workers=4, contention=0.1
        ).run(self.program(db))
        assert [(r.pc, r.start_usec, r.end_usec) for r in a.runs] == \
            [(r.pc, r.start_usec, r.end_usec) for r in b.runs]
