"""Serial vs process-parallel parity across the TPC-H suite.

The partition worker pool must be invisible in every observable way
except wall-clock: for each TPC-H query, for every mitosis partition
count and pool size, the result rows AND the profiler trace events of a
pool-backed run must be byte-identical to the in-process run.  The pool
precomputes fragment outputs in worker processes; the parent replays
the unchanged scheduling loop, so cost, rows, rss, thread assignments
and clock values may not drift by a single byte.
"""

import pytest

from repro.mal.dataflow import SimulatedScheduler
from repro.mal.mpool import PartitionWorkerPool
from repro.metrics.families import MPOOL_FALLBACKS, MPOOL_TASKS
from repro.profiler import Profiler
from repro.server.database import Database
from repro.storage import Catalog
from repro.tpch import QUERIES, populate, query_sql

NPARTS = (1, 2, 4, 8)
POOL_WORKERS = (1, 2, 4)

#: Low enough that the 0.05-scale lineitem (~300 rows) partitions.
MITOSIS_THRESHOLD = 50


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    populate(cat, scale_factor=0.05, seed=7)
    return cat


@pytest.fixture(scope="module")
def databases(catalog):
    """One Database per partition count (its workers drive mitosis)."""
    return {nparts: Database(catalog=catalog, workers=nparts,
                             mitosis_threshold=MITOSIS_THRESHOLD)
            for nparts in NPARTS}


@pytest.fixture(scope="module")
def pools():
    pools = {w: PartitionWorkerPool(workers=w, min_rows=0).start()
             for w in POOL_WORKERS}
    yield pools
    for pool in pools.values():
        pool.close()


def _trace_run(catalog, program, pool):
    profiler = Profiler()
    scheduler = SimulatedScheduler(catalog, workers=4, listener=profiler,
                                   pool=pool)
    result = scheduler.run(program)
    events = [(e.event, e.clock_usec, e.status, e.pc, e.thread, e.usec,
               e.rss_bytes, e.stmt) for e in profiler.events]
    return result, events


@pytest.fixture(scope="module")
def baselines(catalog, databases):
    """Serial (in-process) rows + trace per (query, nparts), lazily."""
    cache = {}

    def get(name, nparts):
        key = (name, nparts)
        if key not in cache:
            program = databases[nparts].compile(query_sql(name))
            result, events = _trace_run(catalog, program, None)
            cache[key] = (result.rows(), events)
        return cache[key]

    return get


@pytest.mark.parametrize("workers", POOL_WORKERS)
@pytest.mark.parametrize("nparts", NPARTS)
@pytest.mark.parametrize("name", sorted(QUERIES))
def test_parity(name, nparts, workers, catalog, databases, pools, baselines):
    program = databases[nparts].compile(query_sql(name))
    serial_rows, serial_events = baselines(name, nparts)
    result, events = _trace_run(catalog, program, pools[workers])
    assert result.rows() == serial_rows
    assert events == serial_events


class TestActuallyRemote:
    """Parity is vacuous if everything silently fell back in-process."""

    def test_fragments_dispatch_to_workers(self, catalog, databases, pools):
        before = MPOOL_TASKS.labels(outcome="ok").value()
        program = databases[4].compile(query_sql("q6"))
        _trace_run(catalog, program, pools[2])
        assert MPOOL_TASKS.labels(outcome="ok").value() >= before + 4

    def test_single_worker_pool_falls_back(self, catalog, databases, pools):
        before = MPOOL_FALLBACKS.labels(reason="workers").value()
        program = databases[4].compile(query_sql("q6"))
        _trace_run(catalog, program, pools[1])
        assert MPOOL_FALLBACKS.labels(reason="workers").value() == before + 1

    def test_row_threshold_falls_back(self, catalog, databases):
        pool = PartitionWorkerPool(workers=2, min_rows=10**9).start()
        try:
            before = MPOOL_FALLBACKS.labels(reason="small-plan").value()
            program = databases[4].compile(query_sql("q6"))
            result, _ = _trace_run(catalog, program, pool)
            assert MPOOL_FALLBACKS.labels(
                reason="small-plan").value() == before + 1
            assert result.rows()  # still correct, just in-process
        finally:
            pool.close()
