"""Unit tests for the optimizer passes and pipelines."""

import pytest

from repro.errors import OptimizerError
from repro.mal import Interpreter
from repro.mal.ast import Const, Var
from repro.mal.dataflow import SimulatedScheduler
from repro.mal.optimizer import (
    CommonSubexpression,
    ConstantFold,
    Dataflow,
    DeadCode,
    Mitosis,
    Pipeline,
    default_pipe,
    minimal_pipe,
    pipeline_by_name,
    sequential_pipe,
)
from repro.mal.parser import parse_instruction_text
from repro.storage import Catalog, INT


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("fact", [("k", INT), ("v", INT)])
    t.insert_many([[i % 100, i] for i in range(4000)])
    small = cat.schema().create_table("dim", [("d", INT)])
    small.insert_many([[i] for i in range(10)])
    return cat


QUERY = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","fact","k",0);
    X_3 := algebra.thetaselect(X_2,50,"<");
    X_4 := aggr.count(X_3);
    X_9 := sql.resultSet(1,1);
    X_10 := sql.rsColumn(X_9,"sys.fact","n","lng",X_4);
    sql.exportResult(X_10);
"""


class TestConstantFold:
    def test_folds_calc_chain(self):
        p = parse_instruction_text("""
            X_1 := calc.add(1,2);
            X_2 := calc.mul(X_1,10);
            X_3 := sql.mvc();
        """)
        out = ConstantFold().run(p)
        assert len(out) == 1  # only sql.mvc survives
        assert out.instructions[0].qualified_name == "sql.mvc"

    def test_substitutes_folded_value_into_users(self, catalog):
        p = parse_instruction_text("""
            X_0 := calc.add(40,10);
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","k",0);
            X_3 := algebra.thetaselect(X_2,X_0,"<");
            X_4 := aggr.count(X_3);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.fact","n","lng",X_4);
            sql.exportResult(X_10);
        """)
        out = ConstantFold().run(p)
        theta = next(i for i in out if i.function == "thetaselect")
        assert isinstance(theta.args[1], Const) and theta.args[1].value == 50
        assert Interpreter(catalog).run(out).rows() == \
            Interpreter(catalog).run(parse_instruction_text(QUERY)).rows()

    def test_folds_mtime(self):
        p = parse_instruction_text(
            'X_1 := mtime.adddays("1998-12-01",-90);\nX_2 := sql.mvc();'
            "\nlanguage.pass(X_1);"
        )
        out = ConstantFold().run(p)
        passes = [i for i in out if i.qualified_name == "language.pass"]
        assert isinstance(passes[0].args[0], Const)
        assert str(passes[0].args[0].value) == "1998-09-02"

    def test_leaves_nonconst_alone(self):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","k",0);
            X_3 := aggr.sum(X_2);
            X_4 := calc.add(X_3,1);
            language.pass(X_4);
        """)
        assert len(ConstantFold().run(p)) == 5


class TestDeadCode:
    def test_removes_unused(self):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","k",0);
            X_3 := aggr.sum(X_2);
        """)
        out = DeadCode().run(p)
        assert len(out) == 0  # nothing feeds a side effect

    def test_keeps_side_effect_chain(self, catalog):
        p = parse_instruction_text(QUERY)
        out = DeadCode().run(p)
        assert len(out) == len(p)

    def test_removes_only_dead_branch(self):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","k",0);
            X_3 := aggr.sum(X_2);
            X_4 := aggr.count(X_2);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.fact","n","lng",X_4);
            sql.exportResult(X_10);
        """)
        out = DeadCode().run(p)
        assert all(i.function != "sum" for i in out)
        assert any(i.function == "count" for i in out)


class TestCse:
    def test_merges_duplicate_binds(self, catalog):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","k",0);
            X_3 := sql.bind(X_1,"sys","fact","k",0);
            X_4 := aggr.count(X_2);
            X_5 := aggr.count(X_3);
            X_6 := calc.add(X_4,X_5);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.fact","n","lng",X_6);
            sql.exportResult(X_10);
        """)
        out = CommonSubexpression().run(p)
        binds = [i for i in out if i.function == "bind"]
        counts = [i for i in out if i.function == "count"]
        assert len(binds) == 1 and len(counts) == 1
        assert Interpreter(catalog).run(out).rows() == [(8000,)]

    def test_does_not_merge_allocators(self):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.mvc();
        """)
        assert len(CommonSubexpression().run(p)) == 2

    def test_does_not_merge_side_effects(self):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            sql.affectedRows(X_1,1);
            sql.affectedRows(X_1,1);
        """)
        assert len(CommonSubexpression().run(p)) == 3


class TestMitosis:
    def test_partitions_binds(self, catalog):
        p = parse_instruction_text(QUERY)
        out = Mitosis(nparts=4, catalog=catalog, threshold_rows=100).run(p)
        binds = [i for i in out if i.function == "bind"]
        assert len(binds) == 4
        assert all(len(b.args) == 7 for b in binds)

    def test_answer_preserved(self, catalog):
        p = parse_instruction_text(QUERY)
        out = Mitosis(nparts=4, catalog=catalog, threshold_rows=100).run(p)
        assert Interpreter(catalog).run(out).rows() == \
            Interpreter(catalog).run(parse_instruction_text(QUERY)).rows()

    def test_respects_threshold(self, catalog):
        p = parse_instruction_text(QUERY)
        out = Mitosis(nparts=4, catalog=catalog, threshold_rows=10**9).run(p)
        assert len(out) == len(p)

    def test_small_table_not_chosen(self, catalog):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","dim","d",0);
            X_4 := aggr.count(X_2);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.dim","n","lng",X_4);
            sql.exportResult(X_10);
        """)
        out = Mitosis(nparts=4, catalog=catalog, threshold_rows=1000).run(p)
        assert len(out) == len(p)

    def test_pack_inserted_for_opaque_consumer(self, catalog):
        p = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","v",0);
            X_3 := algebra.sortTail(X_2);
            X_4 := aggr.count(X_3);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.fact","n","lng",X_4);
            sql.exportResult(X_10);
        """)
        out = Mitosis(nparts=4, catalog=catalog, threshold_rows=100).run(p)
        assert any(i.qualified_name == "mat.pack" for i in out)
        assert Interpreter(catalog).run(out).rows() == [(4000,)]

    def test_grows_plan_node_count(self, catalog):
        p = parse_instruction_text(QUERY)
        out = Mitosis(nparts=8, catalog=catalog, threshold_rows=100).run(p)
        assert len(out) > len(p)

    def test_folded_aggregate_correct_sum(self, catalog):
        text = """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","fact","v",0);
            X_3 := aggr.sum(X_2);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.fact","s","lng",X_3);
            sql.exportResult(X_10);
        """
        p = parse_instruction_text(text)
        out = Mitosis(nparts=3, catalog=catalog, threshold_rows=100).run(p)
        expected = Interpreter(catalog).run(parse_instruction_text(text)).rows()
        assert Interpreter(catalog).run(out).rows() == expected

    def test_nparts_one_is_identity(self, catalog):
        p = parse_instruction_text(QUERY)
        assert Mitosis(nparts=1, catalog=catalog).run(p) is p

    def test_invalid_nparts(self):
        with pytest.raises(OptimizerError):
            Mitosis(nparts=0)


class TestDataflowPass:
    def test_sets_flag_and_marker(self):
        p = parse_instruction_text("X_1 := sql.mvc();")
        out = Dataflow().run(p)
        assert out.dataflow_enabled
        assert out.instructions[0].qualified_name == "language.dataflow"

    def test_idempotent_marker(self):
        p = parse_instruction_text("X_1 := sql.mvc();")
        out = Dataflow().run(Dataflow().run(p))
        markers = [i for i in out if i.qualified_name == "language.dataflow"]
        assert len(markers) == 1


class TestPipelines:
    def test_default_pipe_preserves_answer(self, catalog):
        pipe = default_pipe(nparts=4, mitosis_threshold=100)
        out = pipe.apply(parse_instruction_text(QUERY))
        assert SimulatedScheduler(catalog, workers=4).run(out).rows() == [(2000,)]

    def test_default_pipe_enables_dataflow(self, catalog):
        pipe = default_pipe(nparts=2, mitosis_threshold=100)
        out = pipe.apply(parse_instruction_text(QUERY))
        assert out.dataflow_enabled

    def test_sequential_pipe_keeps_plan_sequential(self):
        out = sequential_pipe().apply(parse_instruction_text(QUERY))
        assert not out.dataflow_enabled

    def test_reports_capture_deltas(self):
        pipe = minimal_pipe()
        pipe.apply(parse_instruction_text("X_1 := calc.add(1,2);"))
        by_name = {r.name: r for r in pipe.reports}
        assert by_name["constant_fold"].instructions_after == 0

    def test_pipeline_by_name(self):
        assert pipeline_by_name("minimal_pipe").name == "minimal_pipe"
        with pytest.raises(OptimizerError):
            pipeline_by_name("warp_pipe")
