"""Tests for the force-directed layout and the minimap."""

import pytest

from repro.dot import Digraph, plan_to_graph
from repro.layout import layout_graph
from repro.layout.force import ForceLayout
from repro.mal.parser import parse_instruction_text
from repro.viz import View, build_virtual_space
from repro.viz.color import GREEN, RED
from repro.viz.minimap import Minimap


def ring(n=8):
    g = Digraph()
    for i in range(n):
        g.add_edge(f"n{i}", f"n{(i + 1) % n}")
    return g


class TestForceLayout:
    def test_all_nodes_placed(self):
        layout = ForceLayout(iterations=50).layout(ring())
        assert len(layout.nodes) == 8
        assert len(layout.edges) == 8

    def test_handles_cycles(self):
        # a ring would break naive layering; force layout doesn't care
        layout = ForceLayout(iterations=30).layout(ring(5))
        assert layout.width > 0 and layout.height > 0

    def test_deterministic_for_seed(self):
        a = ForceLayout(seed=7).layout(ring())
        b = ForceLayout(seed=7).layout(ring())
        for node_id in a.nodes:
            assert a.nodes[node_id].x == pytest.approx(b.nodes[node_id].x)

    def test_seed_changes_placement(self):
        a = ForceLayout(seed=1).layout(ring())
        b = ForceLayout(seed=2).layout(ring())
        assert any(
            abs(a.nodes[n].x - b.nodes[n].x) > 1e-6 for n in a.nodes
        )

    def test_connected_nodes_closer_than_average(self):
        import math

        g = Digraph()
        # two 4-cliques joined by one edge
        for group in ("a", "b"):
            ids = [f"{group}{i}" for i in range(4)]
            for i, src in enumerate(ids):
                for dst in ids[i + 1:]:
                    g.add_edge(src, dst)
        g.add_edge("a0", "b0")
        layout = ForceLayout(iterations=200, seed=3).layout(g)

        def dist(p, q):
            return math.hypot(layout.nodes[p].x - layout.nodes[q].x,
                              layout.nodes[p].y - layout.nodes[q].y)

        within = dist("a1", "a2")
        across = dist("a1", "b1")
        assert within < across

    def test_empty_and_single(self):
        assert ForceLayout().layout(Digraph()).nodes == {}
        g = Digraph()
        g.add_node("only")
        assert len(ForceLayout().layout(g).nodes) == 1

    def test_positions_non_negative(self):
        layout = ForceLayout(iterations=40).layout(ring())
        for node in layout.nodes.values():
            assert node.x >= 0 and node.y >= 0


class TestMinimap:
    @pytest.fixture
    def space(self):
        program = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := algebra.select(X_2,1);
            sql.exportResult(X_3);
        """)
        return build_virtual_space(layout_graph(plan_to_graph(program)))

    def test_every_node_dotted(self, space):
        text = Minimap(space).render()
        assert text.count(".") == 4

    def test_colored_states_visible(self, space):
        space.shape_of("n2").fill = RED
        space.shape_of("n1").fill = GREEN
        text = Minimap(space).render()
        assert "r" in text and "g" in text

    def test_viewport_rectangle_drawn(self, space):
        view = View(space, width=400, height=300)
        view.fit_all()
        view.camera.zoom_in(3)
        text = Minimap(space, width=40, height=14).render(view)
        assert "+" in text  # rectangle corners

    def test_viewport_shrinks_when_zooming(self, space):
        view = View(space, width=400, height=300)
        view.fit_all()
        minimap = Minimap(space, width=60, height=20)
        c0, r0, c1, r1 = minimap.viewport_rectangle(view)
        wide_area = (c1 - c0) * (r1 - r0)
        view.camera.zoom_in(4)
        c0, r0, c1, r1 = minimap.viewport_rectangle(view)
        assert (c1 - c0) * (r1 - r0) < wide_area
