"""Tests for the Database facade, Mserver and MClient."""

import datetime

import pytest

from repro.errors import ServerError, SqlError
from repro.profiler import Profiler, UdpReceiver
from repro.profiler.stream import split_stream
from repro.server import Database, MClient, Mserver
from repro.storage import Catalog
from repro.tpch import populate


@pytest.fixture(scope="module")
def database():
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=0.05, seed=3)
    return db


class TestDatabase:
    def test_ddl_and_insert_and_select(self):
        db = Database()
        db.execute("create table pets (name varchar(10), age integer)")
        outcome = db.execute("insert into pets values ('rex', 3), ('flo', 5)")
        assert outcome.kind == "insert" and outcome.affected == 2
        rows = db.execute("select name from pets where age > 4").rows
        assert rows == [("flo",)]

    def test_drop_table(self):
        db = Database()
        db.execute("create table gone (x integer)")
        db.execute("drop table gone")
        with pytest.raises(Exception):
            db.execute("select x from gone")

    def test_insert_negative_literal(self):
        db = Database()
        db.execute("create table n (x integer)")
        db.execute("insert into n values (-5)")
        assert db.execute("select x from n").rows == [(-5,)]

    def test_insert_non_literal_rejected(self):
        db = Database()
        db.execute("create table n (x integer)")
        with pytest.raises(SqlError):
            db.execute("insert into n values (1 + 2)")

    def test_explain_returns_mal(self, database):
        plan = database.explain(
            "select count(*) from lineitem where l_quantity > 5"
        )
        assert plan.startswith("function user.")
        assert "sql.bind" in plan

    def test_dot_returns_digraph(self, database):
        text = database.dot("select count(*) from lineitem")
        assert text.startswith("digraph")

    def test_profiler_listener_receives_events(self, database):
        profiler = Profiler()
        database.execute("select count(*) from region", listener=profiler)
        assert len(profiler.events) > 0

    def test_set_pipeline_validates(self, database):
        with pytest.raises(Exception):
            database.set_pipeline("bogus_pipe")

    def test_default_pipe_parallelizes_large_scan(self, database):
        profiler = Profiler()
        database.execute(
            "select count(*) from lineitem where l_quantity > 10",
            listener=profiler,
        )
        threads = {e.thread for e in profiler.events}
        assert len(threads) > 1

    def test_sequential_pipe_stays_on_one_thread(self, database):
        database.set_pipeline("sequential_pipe")
        try:
            profiler = Profiler()
            database.execute(
                "select count(*) from lineitem where l_quantity > 10",
                listener=profiler,
            )
            assert {e.thread for e in profiler.events} == {0}
        finally:
            database.set_pipeline("default_pipe")

    def test_date_values_roundtrip(self, database):
        rows = database.execute(
            "select min(l_shipdate) from lineitem"
        ).rows
        assert isinstance(rows[0][0], datetime.date)


class TestMserverProtocol:
    @pytest.fixture()
    def server(self, database):
        with Mserver(database) as srv:
            yield srv

    def test_ping(self, server):
        with MClient(port=server.port) as client:
            assert client.ping()

    def test_query_rows(self, server):
        with MClient(port=server.port) as client:
            result = client.query("select count(*) from orders")
            assert result.kind == "rows"
            assert result.rows[0][0] > 0

    def test_query_date_decoding(self, server):
        with MClient(port=server.port) as client:
            rows = client.query("select min(o_orderdate) from orders").rows
            assert isinstance(rows[0][0], datetime.date)

    def test_explain_and_dot(self, server):
        with MClient(port=server.port) as client:
            assert "sql.tid" in client.explain("select count(*) from nation")
            assert client.dot("select count(*) from nation").startswith(
                "digraph"
            )

    def test_sql_error_reported_not_fatal(self, server):
        with MClient(port=server.port) as client:
            with pytest.raises(ServerError):
                client.query("select nope from nowhere")
            # the connection survives the error
            assert client.ping()

    def test_set_pipeline_roundtrip(self, server):
        with MClient(port=server.port) as client:
            client.set_pipeline("sequential_pipe")
            client.set_pipeline("default_pipe")
            with pytest.raises(ServerError):
                client.set_pipeline("warp_pipe")

    def test_multiple_clients(self, server):
        with MClient(port=server.port) as a, MClient(port=server.port) as b:
            assert a.ping() and b.ping()
            assert a.query("select count(*) from region").rows == \
                b.query("select count(*) from region").rows


class TestProfilerStreaming:
    def test_query_streams_dot_then_trace_then_end(self, database):
        with Mserver(database) as server, UdpReceiver() as receiver:
            with MClient(port=server.port) as client:
                client.set_profiler(port=receiver.port)
                client.query("select count(*) from customer")
            lines = list(receiver.lines(timeout=3.0))
        dot_lines, trace_lines = split_stream(lines)
        assert dot_lines and dot_lines[0].startswith("digraph")
        assert trace_lines
        from repro.profiler import parse_event

        first = parse_event(trace_lines[0])
        assert first.status == "start"

    def test_filter_options_respected(self, database):
        with Mserver(database) as server, UdpReceiver() as receiver:
            with MClient(port=server.port) as client:
                client.set_profiler(
                    port=receiver.port,
                    filter_options={"statuses": ["done"]},
                )
                client.query("select count(*) from customer")
            lines = list(receiver.lines(timeout=3.0))
        _dot, trace_lines = split_stream(lines)
        from repro.profiler import parse_event

        statuses = {parse_event(line).status for line in trace_lines}
        assert statuses == {"done"}

    def test_profiler_off_stops_stream(self, database):
        with Mserver(database) as server, UdpReceiver() as receiver:
            with MClient(port=server.port) as client:
                client.set_profiler(port=receiver.port)
                client.profiler_off()
                client.query("select count(*) from region")
                line = receiver.try_line(timeout=0.3)
        assert line is None
