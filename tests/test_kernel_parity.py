"""Property-based parity suite: bulk BAT kernels vs naive references.

Every kernel rewritten for the bulk execution layer in
``repro.storage.bat`` is run here against the per-row reference
implementation preserved in ``repro.storage.naive``, over randomized
inputs covering void and materialised heads, nil-bearing columns and
every atom type.  "Parity" is strict: same tails, same heads, same head
materialisation (void stays void), same output types, same errors.

The second half covers the SQL→MAL plan cache: hit/miss accounting,
invalidation on DDL/DML and data loaded behind the catalog's back, and
cross-session isolation of per-session pipeline/worker overrides.
"""

import datetime
import random

import pytest

from repro.errors import StorageError
from repro.storage import naive
from repro.storage.bat import BAT
from repro.storage.types import BIT, DATE, DBL, INT, LNG, OID, STR, nil
from repro.server.database import Database, PlanCache, normalize_sql
from repro.storage.catalog import Catalog

SEEDS = [3, 11, 29]

_WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
          "theta", "iota", "kappa", ""]


def _value(rng: random.Random, mal_type):
    if mal_type is INT or mal_type is LNG:
        return rng.randrange(-50, 50)
    if mal_type is OID:
        return rng.randrange(0, 100)
    if mal_type is DBL:
        return round(rng.uniform(-25.0, 25.0), 3)
    if mal_type is STR:
        return rng.choice(_WORDS) + str(rng.randrange(10))
    if mal_type is DATE:
        return datetime.date(1995, 1, 1) + datetime.timedelta(
            days=rng.randrange(0, 1200))
    if mal_type is BIT:
        return rng.random() < 0.5
    raise AssertionError(mal_type)


def make_bat(rng: random.Random, mal_type, n=None, nil_rate=0.25,
             void=None, hseqbase=None) -> BAT:
    """A random BAT: void or shuffled materialised head, optional nils."""
    if n is None:
        n = rng.randrange(0, 40)
    if void is None:
        void = rng.random() < 0.5
    if hseqbase is None:
        hseqbase = rng.choice([0, 0, 7, 100])
    values = [nil if rng.random() < nil_rate else _value(rng, mal_type)
              for _ in range(n)]
    if void:
        return BAT(mal_type, values, hseqbase=hseqbase)
    heads = [rng.randrange(0, 200) for _ in range(n)]
    return BAT(mal_type, values, head=heads)


def assert_parity(fast: BAT, reference: BAT) -> None:
    """Strict observational equality, including head materialisation."""
    assert fast.tail_type is reference.tail_type
    assert fast.tail == reference.tail
    assert (fast.head is None) == (reference.head is None)
    assert list(fast.heads()) == list(reference.heads())
    # identical footprint => identical rss numbers in profiler traces
    assert fast.bytes() == naive.bat_bytes(reference)


ALL_TYPES = [INT, LNG, DBL, STR, OID, DATE, BIT]
ORDERED_TYPES = [INT, LNG, DBL, STR, OID, DATE]


# ---------------------------------------------------------------------------
# selections
# ---------------------------------------------------------------------------


class TestSelectionParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mal_type", ALL_TYPES)
    def test_point_select(self, seed, mal_type):
        rng = random.Random(seed)
        for _ in range(8):
            bat = make_bat(rng, mal_type)
            needle = (_value(rng, mal_type)
                      if not bat.tail or rng.random() < 0.5
                      else rng.choice([v for v in bat.tail] or [nil]))
            assert_parity(bat.select(needle), naive.select(bat, needle))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mal_type", ORDERED_TYPES)
    @pytest.mark.parametrize("include_low", [True, False])
    @pytest.mark.parametrize("include_high", [True, False])
    def test_range_select(self, seed, mal_type, include_low, include_high):
        rng = random.Random(seed)
        for _ in range(6):
            bat = make_bat(rng, mal_type)
            low = nil if rng.random() < 0.25 else _value(rng, mal_type)
            high = nil if rng.random() < 0.25 else _value(rng, mal_type)
            assert_parity(
                bat.select(low, high, include_low, include_high),
                naive.select(bat, low, high, include_low, include_high),
            )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mal_type", ORDERED_TYPES)
    @pytest.mark.parametrize("op", ["==", "!=", "<", "<=", ">", ">="])
    def test_thetaselect(self, seed, mal_type, op):
        rng = random.Random(seed)
        for _ in range(5):
            bat = make_bat(rng, mal_type)
            value = _value(rng, mal_type)
            assert_parity(bat.thetaselect(value, op),
                          naive.thetaselect(bat, value, op))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("pattern", ["%a%", "alpha%", "%a_", "_e%",
                                         "gamma3", "%", ""])
    def test_likeselect(self, seed, pattern):
        rng = random.Random(seed)
        bat = make_bat(rng, STR, n=30)
        assert_parity(bat.likeselect(pattern),
                      naive.likeselect(bat, pattern))

    def test_unknown_theta_op_raises(self):
        bat = BAT(INT, [1, 2])
        with pytest.raises(StorageError):
            bat.thetaselect(1, "<>")

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mal_type", [INT, DBL, STR, DATE])
    def test_order_index_path_matches_scan(self, seed, mal_type):
        """BATs above ORDER_INDEX_MIN_ROWS answer selective ranges by
        bisecting the memoized order index — results must match the
        scan reference exactly, nils and duplicates included."""
        rng = random.Random(seed)
        from repro.storage.bat import ORDER_INDEX_MIN_ROWS

        n = ORDER_INDEX_MIN_ROWS + 100
        for nil_rate in (0.0, 0.2):
            bat = make_bat(rng, mal_type, n=n, nil_rate=nil_rate)
            lo, hi = sorted((_value(rng, mal_type), _value(rng, mal_type)))
            for bounds in [(lo, hi), (lo, lo), (nil, lo), (hi, nil)]:
                for incl in [(True, True), (False, False), (True, False)]:
                    assert_parity(
                        bat.select(bounds[0], bounds[1], *incl),
                        naive.select(bat, bounds[0], bounds[1], *incl))
            assert_parity(bat.select(lo), naive.select(bat, lo))
            for op in ["<", "<=", ">", ">=", "=="]:
                assert_parity(bat.thetaselect(lo, op),
                              naive.thetaselect(bat, lo, op))

    def test_order_index_invalidated_by_append(self):
        from repro.storage.bat import ORDER_INDEX_MIN_ROWS

        rng = random.Random(2)
        n = ORDER_INDEX_MIN_ROWS + 10
        bat = BAT(INT, [rng.randrange(1000) for _ in range(n)])
        assert_parity(bat.select(0, 50), naive.select(bat, 0, 50))  # builds
        bat.append(7)
        bat.extend([13, 999])
        assert_parity(bat.select(0, 50), naive.select(bat, 0, 50))
        assert_parity(bat.thetaselect(990, ">"),
                      naive.thetaselect(bat, 990, ">"))


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


class TestJoinParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("base", [0, 5])
    def test_leftjoin_void_other_all_hits(self, seed, base):
        """The prescan fast path: every oid lands inside ``other``."""
        rng = random.Random(seed)
        other = make_bat(rng, STR, n=20, void=True, hseqbase=base)
        oids = [rng.randrange(base, base + 20) for _ in range(30)]
        for left_void in (True, False):
            left = (BAT(OID, oids, hseqbase=3) if left_void
                    else BAT(OID, oids, head=[rng.randrange(99)
                                              for _ in oids]))
            assert_parity(left.leftjoin(other), naive.leftjoin(left, other))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leftjoin_void_other_with_misses_and_nils(self, seed):
        rng = random.Random(seed)
        other = make_bat(rng, DBL, n=10, void=True, hseqbase=4)
        oids = [nil if rng.random() < 0.2 else rng.randrange(0, 25)
                for _ in range(40)]
        left = BAT(OID, oids, hseqbase=2)
        assert_parity(left.leftjoin(other), naive.leftjoin(left, other))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leftjoin_hash_other_with_duplicate_heads(self, seed):
        rng = random.Random(seed)
        heads = [rng.randrange(0, 8) for _ in range(25)]  # many dups
        other = BAT(STR, [_value(rng, STR) for _ in heads], head=heads)
        left = make_bat(rng, OID, n=30, nil_rate=0.2)
        assert_parity(left.leftjoin(other), naive.leftjoin(left, other))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leftjoin_value_keyed_heads(self, seed):
        """Old-MonetDB value-keyed join: other's head holds str values."""
        rng = random.Random(seed)
        values = list({_value(rng, STR) for _ in range(15)})
        other = BAT(STR, values).reverse()  # head=str values, tail=oids
        left = BAT(STR, [rng.choice(values + ["missing!"])
                         for _ in range(30)])
        assert_parity(left.leftjoin(other), naive.leftjoin(left, other))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("base", [0, 6])
    def test_leftfetchjoin_all_hits(self, seed, base):
        rng = random.Random(seed)
        other = make_bat(rng, STR, n=15, void=True, hseqbase=base)
        oids = [rng.randrange(base, base + 15) for _ in range(25)]
        for left_void in (True, False):
            left = (BAT(OID, oids, hseqbase=9) if left_void
                    else BAT(OID, oids, head=[rng.randrange(99)
                                              for _ in oids]))
            assert_parity(left.leftfetchjoin(other),
                          naive.leftfetchjoin(left, other))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leftfetchjoin_nil_passthrough(self, seed):
        rng = random.Random(seed)
        other = make_bat(rng, INT, n=12, void=True, hseqbase=0)
        oids = [nil if rng.random() < 0.3 else rng.randrange(0, 12)
                for _ in range(30)]
        left = BAT(OID, oids, hseqbase=1)
        assert_parity(left.leftfetchjoin(other),
                      naive.leftfetchjoin(left, other))

    def test_leftfetchjoin_miss_raises_in_both(self):
        other = BAT(INT, [10, 20, 30], hseqbase=5)
        left = BAT(OID, [5, 6, 99])
        with pytest.raises(StorageError, match="fetchjoin miss"):
            left.leftfetchjoin(other)
        with pytest.raises(StorageError, match="fetchjoin miss"):
            naive.leftfetchjoin(left, other)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leftfetchjoin_hash_other(self, seed):
        rng = random.Random(seed)
        heads = rng.sample(range(50), 20)
        heads += heads[:3]  # duplicates: last position must win
        other = BAT(DBL, [_value(rng, DBL) for _ in heads], head=heads)
        left = BAT(OID, [rng.choice(heads) for _ in range(30)])
        assert_parity(left.leftfetchjoin(other),
                      naive.leftfetchjoin(left, other))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kernel", ["semijoin", "kdifference"])
    def test_semijoin_kdifference_all_head_shapes(self, seed, kernel):
        rng = random.Random(seed)
        for self_void in (True, False):
            for other_void in (True, False):
                left = make_bat(rng, STR, n=25, void=self_void,
                                hseqbase=rng.choice([0, 4]))
                other = make_bat(rng, INT, n=rng.choice([0, 10]),
                                 void=other_void,
                                 hseqbase=rng.choice([0, 8, 30]))
                fast = getattr(left, kernel)(other)
                reference = getattr(naive, kernel)(left, other)
                assert_parity(fast, reference)


# ---------------------------------------------------------------------------
# ordering, grouping, aggregation
# ---------------------------------------------------------------------------


class TestOrderGroupAggregateParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mal_type", ORDERED_TYPES)
    @pytest.mark.parametrize("reverse", [False, True])
    def test_sort(self, seed, mal_type, reverse):
        rng = random.Random(seed)
        for nil_rate in (0.0, 0.3):
            bat = make_bat(rng, mal_type, nil_rate=nil_rate)
            assert_parity(bat.sort(reverse=reverse),
                          naive.sort(bat, reverse=reverse))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mal_type", ALL_TYPES)
    def test_group(self, seed, mal_type):
        rng = random.Random(seed)
        bat = make_bat(rng, mal_type)
        for fast, reference in zip(bat.group(), naive.group(bat)):
            assert_parity(fast, reference)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_refine_group(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 40)
        first = make_bat(rng, STR, n=n)
        second = make_bat(rng, INT, n=n, void=first.is_void_head,
                          hseqbase=first.hseqbase)
        if not first.is_void_head:
            second = BAT(INT, second.tail, head=list(first.head))
        groups = first.group()[0]
        for fast, reference in zip(second.refine_group(groups),
                                   naive.refine_group(second, groups)):
            assert_parity(fast, reference)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("func", ["count", "sum", "min", "max", "avg"])
    def test_scalar_aggregate(self, seed, func):
        rng = random.Random(seed)
        for mal_type in (INT, DBL):
            for nil_rate in (0.0, 0.4, 1.0):
                bat = make_bat(rng, mal_type, nil_rate=nil_rate)
                assert bat.aggregate(func) == naive.aggregate(bat, func)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("func", ["count", "sum", "min", "max", "avg"])
    @pytest.mark.parametrize("mal_type", [INT, DBL])
    def test_grouped_aggregate(self, seed, func, mal_type):
        rng = random.Random(seed)
        n = rng.randrange(1, 50)
        keys = BAT(INT, [rng.randrange(0, 6) for _ in range(n)])
        groups = keys.group()[0]
        ngroups = (max(groups.tail) + 1) if groups.tail else 0
        values = make_bat(rng, mal_type, n=n, void=True, nil_rate=0.3)
        assert_parity(
            values.grouped_aggregate(groups, ngroups, func),
            naive.grouped_aggregate(values, groups, ngroups, func),
        )

    @pytest.mark.parametrize("func", ["sum", "min", "max", "avg"])
    def test_grouped_aggregate_empty_group_is_nil(self, func):
        values = BAT(INT, [nil, nil, 5])
        groups = BAT(OID, [0, 0, 2])
        fast = values.grouped_aggregate(groups, 3, func)
        reference = naive.grouped_aggregate(values, groups, 3, func)
        assert_parity(fast, reference)
        assert fast.tail[0] is nil and fast.tail[1] is nil


# ---------------------------------------------------------------------------
# elementwise calc
# ---------------------------------------------------------------------------


class TestCalcParity:
    # "and"/"or" need BIT-castable inputs; they get their own test below.
    OPS = ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("op", OPS)
    def test_calc_two_bats(self, seed, op):
        rng = random.Random(seed)
        left_type = rng.choice([INT, DBL])
        right_type = rng.choice([INT, DBL])
        n = rng.randrange(0, 40)
        for nil_rate in (0.0, 0.3):
            a = make_bat(rng, left_type, n=n, nil_rate=nil_rate, void=True)
            b = make_bat(rng, right_type, n=n, nil_rate=nil_rate, void=True)
            assert_parity(a.calc(b, op), naive.calc(a, b, op))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("swapped", [False, True])
    def test_calc_const(self, seed, op, swapped):
        rng = random.Random(seed)
        for nil_rate in (0.0, 0.3):
            a = make_bat(rng, rng.choice([INT, DBL]), nil_rate=nil_rate)
            const = rng.choice([0, 3, -2, 1.5])
            assert_parity(a.calc_const(const, op, swapped=swapped),
                          naive.calc_const(a, const, op, swapped=swapped))

    def test_calc_const_nil_constant(self):
        a = BAT(INT, [1, 2, 3])
        assert_parity(a.calc_const(nil, "+"), naive.calc_const(a, nil, "+"))

    def test_division_by_zero_parity(self):
        a = BAT(INT, [6, 7, nil])
        b = BAT(INT, [3, 0, 2])
        assert_parity(a.calc(b, "/"), naive.calc(a, b, "/"))
        assert a.calc(b, "/").tail == [2.0, nil, nil]

    @pytest.mark.parametrize("op", ["and", "or"])
    def test_boolean_truthiness_semantics(self, op):
        a = BAT(BIT, [True, True, False, False])
        b = BAT(BIT, [True, False, True, False])
        assert_parity(a.calc(b, op), naive.calc(a, b, op))

    def test_str_concat_parity(self):
        a = BAT(STR, ["x", nil, "z"])
        assert_parity(a.calc_const("!", "+"), naive.calc_const(a, "!", "+"))


# ---------------------------------------------------------------------------
# memoized caches: bytes, indexes, bulk extend
# ---------------------------------------------------------------------------


class TestCacheCoherence:
    @pytest.mark.parametrize("mal_type", ALL_TYPES)
    def test_bytes_matches_reference_and_survives_mutation(self, mal_type):
        rng = random.Random(5)
        bat = make_bat(rng, mal_type, n=20, void=True)
        assert bat.bytes() == naive.bat_bytes(bat)
        assert bat.bytes() == naive.bat_bytes(bat)  # cached second read
        bat.append(_value(rng, mal_type))
        assert bat.bytes() == naive.bat_bytes(bat)
        bat.extend([_value(rng, mal_type) for _ in range(7)])
        assert bat.bytes() == naive.bat_bytes(bat)

    def test_extend_equals_append_loop(self):
        rng = random.Random(9)
        values = [nil if rng.random() < 0.2 else rng.randrange(100)
                  for _ in range(50)]
        bulk = BAT(INT, [1, 2], head=[10, 11])
        loop = BAT(INT, [1, 2], head=[10, 11])
        bulk.extend(values)
        for v in values:
            loop.append(v)
        assert bulk.tail == loop.tail
        assert bulk.head == loop.head

    def test_extend_casts_in_bulk(self):
        bat = BAT(INT, [])
        bat.extend(["7", 8.0, True, nil])
        assert bat.tail == [7, 8, 1, nil]

    def test_join_index_invalidated_by_append(self):
        other = BAT(INT, [100, 200], head=[1, 2])
        left = BAT(OID, [1, 2, 3])
        assert left.leftjoin(other).tail == [100, 200]
        other.append(300)  # head continues densely: 3
        assert left.leftjoin(other).tail == [100, 200, 300]
        assert left.leftfetchjoin(other).tail == [100, 200, 300]

    def test_fetch_index_invalidated_by_extend(self):
        other = BAT(STR, ["a"], head=[0])
        left = BAT(OID, [0])
        assert left.leftfetchjoin(other).tail == ["a"]
        other.extend(["b", "c"])
        wider = BAT(OID, [0, 1, 2])
        assert wider.leftfetchjoin(other).tail == ["a", "b", "c"]
        assert wider.semijoin(other).tail == [0, 1, 2]


# ---------------------------------------------------------------------------
# the plan cache
# ---------------------------------------------------------------------------


def _fresh_db(**kwargs) -> Database:
    db = Database(Catalog(), workers=2, **kwargs)
    db.execute("create table pets (id int, name varchar, grams int)")
    db.execute("insert into pets values (1, 'ada', 4200), "
               "(2, 'bit', 3100), (3, 'nil', 500)")
    return db


class TestPlanCache:
    def test_warm_hit_returns_same_program(self):
        db = _fresh_db()
        q = "select name from pets where grams > 1000"
        cold = db.compile(q)
        warm = db.compile(q)
        assert warm is cold
        stats = db.plan_cache.stats()
        assert stats["hits"] == 1 and stats["size"] == 1

    def test_whitespace_reformatting_shares_entry(self):
        db = _fresh_db()
        db.compile("select name from pets where grams > 1000")
        db.compile("  SELECT name\n  FROM pets\n  WHERE grams > 1000 ;")
        # same normalized text modulo case? no: case differs -> new entry
        assert db.plan_cache.stats()["size"] == 2
        db.compile("select   name from\tpets where grams > 1000")
        assert db.plan_cache.stats()["hits"] == 1

    def test_string_literal_whitespace_is_significant(self):
        assert normalize_sql("select 'a  b'  from t") == "select 'a  b' from t"
        assert (normalize_sql("select 'a  b' from t")
                != normalize_sql("select 'a b' from t"))

    def test_warm_execute_results_identical(self):
        db = _fresh_db()
        q = "select name, grams from pets where grams >= 500 order by grams"
        cold = db.execute(q)
        warm = db.execute(q)
        assert warm.rows == cold.rows
        assert db.plan_cache.stats()["hits"] >= 1

    def test_ddl_invalidates(self):
        db = _fresh_db()
        q = "select name from pets"
        db.execute(q)
        db.execute("create table other_t (x int)")
        assert db.plan_cache.stats()["size"] == 0
        db.execute(q)  # recompiles against the new catalog state
        assert db.plan_cache.stats()["size"] == 1
        db.execute("drop table other_t")
        assert db.plan_cache.stats()["size"] == 0

    def test_dml_invalidates_and_changes_key(self):
        db = _fresh_db()
        q = "select count(*) from pets"
        assert db.execute(q).rows == [(3,)]
        db.execute("insert into pets values (4, 'rex', 9000)")
        assert db.plan_cache.stats()["size"] == 0
        assert db.execute(q).rows == [(4,)]

    def test_out_of_band_load_changes_fingerprint(self):
        db = _fresh_db()
        q = "select count(*) from pets"
        db.execute(q)
        # bypass Database entirely: fingerprint (row counts) must differ
        db.catalog.table("pets").insert([5, "ivy", 700])
        assert db.execute(q).rows == [(4,)]
        assert db.plan_cache.stats()["misses"] >= 2

    def test_cross_session_overrides_get_distinct_plans(self):
        db = _fresh_db()
        q = "select name from pets where grams > 1000"
        a = db.execute(q, pipeline_name="sequential_pipe")
        b = db.execute(q, workers=1)
        c = db.execute(q)
        assert db.plan_cache.stats()["size"] == 3
        assert sorted(a.rows) == sorted(b.rows) == sorted(c.rows)
        # each session's second run hits its own entry
        db.execute(q, pipeline_name="sequential_pipe")
        db.execute(q, workers=1)
        assert db.plan_cache.stats()["hits"] == 2

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), "plan-a")
        cache.put(("b",), "plan-b")
        assert cache.get(("a",)) == "plan-a"  # refresh a
        cache.put(("c",), "plan-c")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "plan-a"
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        db = _fresh_db(plan_cache_size=0)
        q = "select name from pets"
        first = db.execute(q)
        second = db.execute(q)
        assert second.rows == first.rows
        stats = db.plan_cache.stats()
        assert stats == {"size": 0, "capacity": 0, "hits": 0,
                         "misses": 0, "evictions": 0,
                         "drift_evictions": 0}

    def test_explain_shares_cache_with_execute(self):
        db = _fresh_db()
        q = "select name from pets where grams > 1000"
        db.execute(q)
        plan_text = db.execute("explain " + q)
        assert db.plan_cache.stats()["hits"] >= 1
        assert any("algebra" in row[0] for row in plan_text.rows)

    def test_trace_shape_unchanged_on_warm_hit(self):
        from repro.profiler import Profiler

        db = _fresh_db()
        q = "select sum(grams) from pets where grams > 400"

        def trace():
            profiler = Profiler()
            db.execute(q, listener=profiler)
            return [(e.event, e.clock_usec, e.status, e.pc, e.thread,
                     e.usec, e.rss_bytes, e.stmt)
                    for e in profiler.events]

        cold = trace()
        warm = trace()
        assert warm == cold
        assert db.plan_cache.stats()["hits"] >= 1
