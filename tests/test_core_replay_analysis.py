"""Tests for replay, painter, analysis, bird's-eye, pruning and
micro-analysis — the Stethoscope's offline feature set."""

import pytest

from repro.core.analysis import (
    costly_clusters,
    costly_instructions,
    detect_sequential_anomaly,
    memory_by_operator,
    parallelism_profile,
    thread_utilization,
)
from repro.core.birdseye import render_birdseye, segment_trace
from repro.core.coloring import ColorAction
from repro.core.inspect import DebugWindow
from repro.core.painter import GraphPainter
from repro.core.replay import ReplayController
from repro.dot import plan_to_graph
from repro.errors import StethoscopeError
from repro.layout import layout_graph
from repro.mal.parser import parse_instruction_text
from repro.profiler.events import TraceEvent
from repro.viz.color import GREEN, RED, WHITE
from repro.viz.events import EventDispatchQueue
from repro.viz.vspace import build_virtual_space
from repro.workloads import synthetic_plan, trace_for_program

PLAN_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","x",0);
    X_3 := algebra.select(X_2,1);
    X_4 := algebra.leftjoin(X_3,X_2);
    sql.exportResult(X_4);
"""


def make_event(seq, status, pc, clock=None, usec=10, thread=0,
               module="algebra", rss=1024):
    stmt = f"X_{pc} := {module}.op();"
    return TraceEvent(
        event=seq, clock_usec=clock if clock is not None else seq * 100,
        status=status, pc=pc, thread=thread,
        usec=usec if status == "done" else 0, rss_bytes=rss, stmt=stmt,
    )


def slow_trace():
    """pc2 is long-running (overtaken); others are fast pairs."""
    return [
        make_event(0, "start", 0), make_event(1, "done", 0),
        make_event(2, "start", 1), make_event(3, "done", 1),
        make_event(4, "start", 2),
        make_event(5, "start", 3), make_event(6, "done", 3),
        make_event(7, "done", 2, usec=400),
        make_event(8, "start", 4), make_event(9, "done", 4),
    ]


@pytest.fixture
def painter():
    layout = layout_graph(plan_to_graph(parse_instruction_text(PLAN_TEXT)))
    space = build_virtual_space(layout)
    return GraphPainter(space, EventDispatchQueue(min_interval_ms=150))


class TestPainter:
    def test_apply_and_flush(self, painter):
        painter.apply(ColorAction(2, RED, "test"))
        assert painter.color_of("n2") is None  # queued, not yet rendered
        painter.flush()
        assert painter.color_of("n2") == RED
        assert painter.space.shape_of("n2").fill == RED

    def test_backlog_counts_unrendered(self, painter):
        for pc in range(5):
            painter.apply(ColorAction(pc, RED, "t"))
        assert painter.backlog() == 5

    def test_unknown_node_ignored(self, painter):
        painter.apply(ColorAction(999, RED, "t"))
        painter.flush()
        assert painter.color_of("n999") is None


class TestReplay:
    def make(self, painter, threshold=None):
        return ReplayController(slow_trace(), painter, threshold)

    def test_step_advances(self, painter):
        replay = self.make(painter)
        event = replay.step()
        assert event.event == 0 and replay.position == 1

    def test_step_colors_long_instruction(self, painter):
        replay = self.make(painter)
        replay.fast_forward(6)  # through start2, start3
        assert painter.color_of("n2") == RED
        replay.run_to_end()
        assert painter.color_of("n2") == GREEN

    def test_fast_instructions_never_colored(self, painter):
        replay = self.make(painter)
        replay.run_to_end()
        for node in ("n0", "n1", "n4"):
            assert painter.color_of(node) is None

    def test_pause_blocks_stepping(self, painter):
        replay = self.make(painter)
        replay.pause()
        assert replay.step() is None
        replay.resume()
        assert replay.step() is not None

    def test_fast_forward_until_clock(self, painter):
        replay = self.make(painter)
        replay.fast_forward_until(350)
        assert replay.position == 4

    def test_rewind_resets_colors(self, painter):
        replay = self.make(painter)
        replay.run_to_end()
        assert painter.color_of("n2") == GREEN
        replay.rewind(4)  # back before done2
        assert replay.position == 6
        assert painter.space.shape_of("n2").fill == RED

    def test_seek_zero_blank_display(self, painter):
        replay = self.make(painter)
        replay.run_to_end()
        replay.seek(0)
        assert painter.space.shape_of("n2").fill == WHITE
        assert painter.color_of("n2") is None

    def test_seek_deterministic_vs_direct(self, painter):
        replay = self.make(painter)
        replay.run_to_end()
        replay.seek(7)
        via_seek = painter.space.shape_of("n2").fill
        replay.seek(0)
        replay.fast_forward(7)
        assert painter.space.shape_of("n2").fill == via_seek

    def test_seek_out_of_range(self, painter):
        with pytest.raises(StethoscopeError):
            self.make(painter).seek(99)

    def test_costly_between(self, painter):
        replay = self.make(painter)
        costly = replay.costly_between(0, len(slow_trace()), top=1)
        assert costly[0].pc == 2 and costly[0].usec == 400

    def test_costly_between_bad_window(self, painter):
        with pytest.raises(StethoscopeError):
            self.make(painter).costly_between(5, 2)

    def test_threshold_mode(self, painter):
        replay = self.make(painter, threshold=100)
        replay.run_to_end()
        assert painter.color_of("n2") == RED      # 400 >= 100
        assert painter.color_of("n0") == GREEN    # 10 < 100


class TestAnalysis:
    def parallel_trace(self):
        # two threads, overlapping work
        return [
            make_event(0, "start", 0, clock=0, thread=0),
            make_event(1, "start", 1, clock=0, thread=1),
            make_event(2, "done", 0, clock=100, usec=100, thread=0),
            make_event(3, "done", 1, clock=80, usec=80, thread=1),
            make_event(4, "start", 2, clock=100, thread=0),
            make_event(5, "done", 2, clock=150, usec=50, thread=0),
        ]

    def test_thread_utilization(self):
        report = thread_utilization(self.parallel_trace())
        by_thread = {r.thread: r for r in report}
        assert by_thread[0].busy_usec == 150
        assert by_thread[1].busy_usec == 80
        assert by_thread[0].utilization == pytest.approx(1.0)

    def test_memory_by_operator_sorted_by_peak(self):
        events = [
            make_event(0, "done", 0, module="algebra", rss=100),
            make_event(1, "done", 1, module="sql", rss=5000),
        ]
        report = memory_by_operator(events)
        assert report[0].operator.startswith("sql.")

    def test_costly_instructions_top(self):
        top = costly_instructions(slow_trace(), top=2)
        assert top[0].pc == 2

    def test_costly_clusters_adjacent_merge(self):
        events = [
            make_event(0, "done", 3, usec=500),
            make_event(1, "done", 4, usec=400),
            make_event(2, "done", 9, usec=450),
            make_event(3, "done", 0, usec=1),
        ]
        clusters = costly_clusters(events, fraction=0.95)
        spans = {c.span for c in clusters}
        assert (3, 4) in spans and (9, 9) in spans

    def test_costly_clusters_empty(self):
        assert costly_clusters([]) == []

    def test_parallelism_profile(self):
        profile = parallelism_profile(self.parallel_trace())
        assert profile.threads_used == 2
        assert profile.max_concurrency == 2
        assert profile.makespan_usec == 150
        assert profile.busy_usec == 230
        assert profile.speedup_vs_serial > 1.0

    def test_sequential_anomaly_detected(self):
        events = [
            make_event(0, "start", 0, thread=0),
            make_event(1, "done", 0, thread=0),
        ]
        anomaly = detect_sequential_anomaly(events, expected_threads=4)
        assert anomaly.detected
        assert "dataflow" in anomaly.explanation

    def test_parallel_run_not_flagged(self):
        anomaly = detect_sequential_anomaly(self.parallel_trace(),
                                            expected_threads=2)
        assert not anomaly.detected


class TestBirdseye:
    def test_segments_by_module(self):
        events = [
            make_event(0, "done", 0, module="sql"),
            make_event(1, "done", 1, module="sql"),
            make_event(2, "done", 2, module="algebra"),
            make_event(3, "done", 3, module="sql"),
        ]
        segments = segment_trace(events)
        assert [s.module for s in segments] == ["sql", "algebra", "sql"]
        assert segments[0].count == 2

    def test_render_shows_shares(self):
        events = [
            make_event(0, "done", 0, module="sql", usec=100),
            make_event(1, "done", 1, module="algebra", usec=900),
        ]
        text = render_birdseye(segment_trace(events))
        assert "algebra" in text and "90.0%" in text

    def test_render_empty(self):
        assert "empty" in render_birdseye([])

    def test_min_segment_absorbs_noise(self):
        events = [
            make_event(0, "done", 0, module="sql"),
            make_event(1, "done", 1, module="algebra"),
            make_event(2, "done", 2, module="sql"),
        ]
        segments = segment_trace(events, min_segment=2)
        assert len(segments) == 1


class TestDebugWindow:
    def test_watches_selected_pcs(self):
        window = DebugWindow("w", {2, 3})
        assert window.observe(make_event(0, "start", 1)) is None
        snap = window.observe(make_event(1, "start", 2))
        assert snap.state == "running"
        window.observe(make_event(2, "done", 2, usec=50))
        rows = window.rows()
        assert [r.state for r in rows] == ["done", "pending"]

    def test_render_contains_rows(self):
        window = DebugWindow("joins", {5})
        window.observe(make_event(0, "done", 5, usec=123))
        text = window.render()
        assert "pc=5" in text and "usec=123" in text


class TestSyntheticWorkloads:
    def test_plan_size_formula(self):
        plan = synthetic_plan(chains=167, chain_length=4)
        assert len(plan) > 1000  # the paper's "more than 1000 nodes"

    def test_plan_validates(self):
        synthetic_plan(chains=5).validate()

    def test_trace_covers_plan(self):
        plan = synthetic_plan(chains=4)
        events = trace_for_program(plan, workers=4)
        assert len(events) == 2 * len(plan)
        assert {e.pc for e in events} == set(range(len(plan)))

    def test_trace_deterministic(self):
        plan = synthetic_plan(chains=3)
        a = trace_for_program(plan, seed=5)
        b = trace_for_program(plan, seed=5)
        assert a == b

    def test_long_fraction_creates_outliers(self):
        plan = synthetic_plan(chains=10, chain_length=6)
        events = trace_for_program(plan, long_fraction=0.2, seed=3)
        durations = [e.usec for e in events if e.status == "done"]
        assert max(durations) > 100 * min(durations)

    def test_trace_respects_dependencies(self):
        plan = synthetic_plan(chains=3)
        events = trace_for_program(plan, workers=2)
        done_clock = {e.pc: e.clock_usec for e in events
                      if e.status == "done"}
        start_clock = {e.pc: e.clock_usec for e in events
                       if e.status == "start"}
        for pc, deps in plan.dependencies().items():
            for dep in deps:
                assert done_clock[dep] <= start_clock[pc]
