"""Tests for the adaptive feedback loop: the runtime statistics store,
selectivity-ordered recompilation (``adaptive_order``), plan-cache cost
drift, deadline rerouting, and adaptive order-index management."""

import os
import tempfile

import pytest

from repro.errors import StorageError
from repro.metrics.families import (
    ADAPTIVE_DEADLINE_REROUTES,
    ADAPTIVE_INDEX_BUILDS,
    ADAPTIVE_INDEX_DROPS,
    ADAPTIVE_REORDERS,
    PLAN_CACHE_EVICTIONS,
)
from repro.server import Database, MClient, Mserver
from repro.server.database import normalize_sql
from repro.server.lifecycle import QueryContext
from repro.stats import StatsStore, program_signatures, select_signature
from repro.storage import INT, BAT
from repro.storage.bat import (
    IndexPolicy,
    configure_index_policy,
    index_policy,
)

FP = (1, 2, 3)


def _skewed_db(**kwargs):
    """A database over ``t(a, b)`` where the SQL predicate order is
    pessimal: ``a < 900`` passes ~90%, ``b = 7`` passes ~1%."""
    kwargs.setdefault("workers", 2)
    db = Database(**kwargs)
    db.execute("create table t (a int, b int)")
    table = db.catalog.table("t")
    table.insert_many([[i % 1000, i % 100] for i in range(3000)])
    db.catalog.invalidate()
    return db


# ---------------------------------------------------------------------------
# statistics store
# ---------------------------------------------------------------------------


class TestStatsStore:
    def test_signatures_resolve_selects_to_columns(self):
        db = Database(workers=2)
        db.execute("create table t (a int, b int)")
        program = db.compile("select a from t where a < 5 and b = 7")
        signatures = set(program_signatures(program).values())
        assert any(s.startswith("algebra.") and "sys.t.a" in s
                   for s in signatures)
        assert any(s.startswith("algebra.") and "sys.t.b" in s
                   for s in signatures)

    def test_select_signature_format(self):
        from repro.mal.ast import Const

        assert select_signature("algebra.select", "sys.t.a",
                                [Const(5), Const(None)]) == \
            "algebra.select(sys.t.a;5,nil)"

    def test_query_latency_is_ewma_smoothed(self):
        store = StatsStore(alpha=0.3)
        store.observe_query("q", "default_pipe", 2, 100.0, FP)
        store.observe_query("q", "default_pipe", 2, 200.0, FP)
        assert store.query_latency("q", "default_pipe", 2, FP) == \
            pytest.approx(130.0)

    def test_lru_eviction_is_bounded(self):
        store = StatsStore(capacity=8)  # query table caps at 8 // 4
        for i in range(3):
            store.observe_query(f"q{i}", "default_pipe", 2, 10.0, FP)
        assert store.summary()["query_entries"] == 2
        assert store.summary()["evictions"] == 1
        # oldest evicted, newest retained
        assert store.query_latency("q0", "default_pipe", 2, FP) is None
        assert store.query_latency("q2", "default_pipe", 2, FP) == 10.0

    def test_snapshot_roundtrip(self, tmp_path):
        store = StatsStore(capacity=32, alpha=0.5)
        store.observe_query("q", "default_pipe", 2, 42.0, FP)
        path = str(tmp_path / "stats.json")
        assert store.save(path) == 1
        reloaded = StatsStore.load(path)
        assert reloaded.snapshot() == store.snapshot()
        assert reloaded.query_latency("q", "default_pipe", 2, FP) == 42.0

    def test_corrupt_snapshot_raises_storage_error(self, tmp_path):
        store = StatsStore()
        store.observe_query("q", "default_pipe", 2, 42.0, FP)
        path = str(tmp_path / "stats.json")
        store.save(path)
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text.replace("42.0", "43.0", 1))  # body no longer
        with pytest.raises(StorageError):                # matches CRC
            StatsStore.load(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = str(tmp_path / "stats.json")
        with open(path, "w") as f:
            f.write('{"version": 99}')
        with pytest.raises(StorageError):
            StatsStore.load(path)

    def test_choose_pipeline_prefers_feasible_cheapest(self):
        store = StatsStore()
        # nothing observed: stay on the default
        assert store.choose_pipeline("q", 2, FP, 1e6,
                                     "default_pipe") == \
            ("default_pipe", False)
        store.observe_query("q", "default_pipe", 2, 5_000_000.0, FP)
        store.observe_query("q", "sequential_pipe", 2, 1_000.0, FP)
        # default predicted to blow the deadline: reroute to cheapest
        assert store.choose_pipeline("q", 2, FP, 1_000_000.0,
                                     "default_pipe") == \
            ("sequential_pipe", True)
        # generous deadline: the default stays
        assert store.choose_pipeline("q", 2, FP, 1e9,
                                     "default_pipe") == \
            ("default_pipe", False)


# ---------------------------------------------------------------------------
# selectivity-ordered recompilation
# ---------------------------------------------------------------------------


def _plan_text(program):
    """Formatted plan with the per-compile program name normalized away
    (only the plan *shape* matters to these assertions)."""
    from repro.mal.printer import format_program

    short = program.name.split(".")[-1]
    return format_program(program).replace(program.name, "user.q") \
                                  .replace(short, "q")


class TestAdaptiveOrder:
    def test_warm_recompile_reorders_most_selective_first(self):
        before = ADAPTIVE_REORDERS.labels(outcome="reordered").value()
        db = _skewed_db(plan_cache_size=0)
        sql = "select a, b from t where a < 900 and b = 7"
        cold = db.execute(sql)
        warm = db.execute(sql)
        assert warm.rows == cold.rows
        cold_text = _plan_text(cold.program)
        warm_text = _plan_text(warm.program)
        assert warm_text != cold_text
        # cold follows syntax: the ~90%-pass a < 900 thetaselect runs
        # first; warm runs the ~1%-pass b = 7 select first
        assert cold_text.index("algebra.thetaselect") < \
            cold_text.index("algebra.select(")
        assert warm_text.index("algebra.select(") < \
            warm_text.index("algebra.thetaselect")
        assert ADAPTIVE_REORDERS.labels(
            outcome="reordered").value() == before + 1

    def test_static_pipe_restores_syntactic_plans(self):
        db = _skewed_db(plan_cache_size=0, pipeline_name="static_pipe")
        sql = "select a, b from t where a < 900 and b = 7"
        cold = db.execute(sql)
        warm = db.execute(sql)
        # warm compiles identically: no feedback enters static plans
        assert _plan_text(warm.program) == _plan_text(cold.program)
        assert warm.rows == cold.rows


# ---------------------------------------------------------------------------
# plan-cache drift
# ---------------------------------------------------------------------------


class TestPlanCacheDrift:
    def test_skew_perturbation_evicts_and_recompiles(self):
        before = PLAN_CACHE_EVICTIONS.labels(reason="drift").value()
        db = Database(workers=2, plan_cache_size=8)
        db.execute("create table t (a int, b int)")
        table = db.catalog.table("t")
        table.insert_many([[i % 1000, i % 100] for i in range(2000)])
        db.catalog.invalidate()
        sql = "select a, b from t where a < 5"
        db.execute(sql)          # miss: compile, cache
        db.execute(sql)          # hit: records the cost baseline
        assert db.plan_cache.stats()["drift_evictions"] == 0
        cached_program = db.last_program

        # perturb the skew *in place*: same row count, same plan key,
        # but the select now passes every row instead of ~0.5%
        bat = table.columns["a"].bat
        bat.tail[:] = [i % 5 for i in range(2000)]
        bat._invalidate_caches()

        db.execute(sql)          # hit, but observed cost drifts >= 2x
        stats = db.plan_cache.stats()
        assert stats["drift_evictions"] == 1
        assert stats["size"] == 0
        assert PLAN_CACHE_EVICTIONS.labels(
            reason="drift").value() == before + 1

        misses = stats["misses"]
        outcome = db.execute(sql)  # miss again: recompiled
        assert db.plan_cache.stats()["misses"] == misses + 1
        assert outcome.program is not cached_program

    def test_plan_entry_diagnostics(self):
        db = _skewed_db(plan_cache_size=8)
        sql = "select a, b from t where a < 900 and b = 7"
        db.execute(sql)
        db.execute(sql)
        (entry,) = db.plan_cache.entries()
        assert entry["sql"] == normalize_sql(sql)
        assert entry["pipeline"] == "default_pipe"
        assert entry["workers"] == 2
        assert entry["hits"] == 1
        assert entry["age_s"] >= 0.0
        assert entry["recorded_usec"] > 0
        assert entry["last_usec"] > 0
        assert entry["drift"] == pytest.approx(
            entry["last_usec"] / entry["recorded_usec"], abs=1e-3)


# ---------------------------------------------------------------------------
# deadline rerouting
# ---------------------------------------------------------------------------


class TestDeadlineReroute:
    def test_infeasible_default_reroutes_to_cheapest_variant(self):
        before = ADAPTIVE_DEADLINE_REROUTES.value()
        db = _skewed_db(plan_cache_size=0)
        sql = "select a, b from t where a < 900 and b = 7"
        expected = db.execute(sql).rows
        fp = db.catalog.fingerprint()
        nsql = normalize_sql(sql)
        # teach the store that the default variant blows a 1s deadline
        # while the sequential pipeline fits it comfortably
        db.stats_store.observe_query(nsql, "default_pipe", 2,
                                     5_000_000.0, fp)
        db.stats_store.observe_query(nsql, "sequential_pipe", 2,
                                     1_000.0, fp)
        context = QueryContext("q1", sql, deadline_s=1.0)
        outcome = db.execute(sql, context=context)
        assert outcome.rows == expected
        assert ADAPTIVE_DEADLINE_REROUTES.value() == before + 1

    def test_no_deadline_means_no_reroute(self):
        before = ADAPTIVE_DEADLINE_REROUTES.value()
        db = _skewed_db(plan_cache_size=0)
        db.execute("select a, b from t where a < 900 and b = 7")
        assert ADAPTIVE_DEADLINE_REROUTES.value() == before


# ---------------------------------------------------------------------------
# adaptive order-index management
# ---------------------------------------------------------------------------


@pytest.fixture
def restore_index_policy():
    previous = index_policy()
    yield
    configure_index_policy(previous)


class TestIndexPolicy:
    def test_configure_validates(self, restore_index_policy):
        with pytest.raises(ValueError):
            configure_index_policy(min_rows=0)
        with pytest.raises(ValueError):
            configure_index_policy(hit_floor=1.5)
        with pytest.raises(ValueError):
            configure_index_policy(IndexPolicy(), min_rows=64)
        installed = configure_index_policy(min_rows=64)
        assert index_policy() is installed
        assert index_policy().min_rows == 64

    def test_min_rows_is_configurable(self, restore_index_policy):
        configure_index_policy(min_rows=16)
        bat = BAT(INT, list(range(32)))
        assert bat.select(3, 5).tail == [3, 4, 5]
        assert bat._order_cache is not None  # built on first touch

    def test_serve_flag_parses(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--order-index-min-rows", "64"])
        assert args.order_index_min_rows == 64
        assert _build_parser().parse_args(
            ["serve"]).order_index_min_rows is None

    def test_eager_build_on_range_heavy_small_bat(
            self, restore_index_policy):
        configure_index_policy(adaptive_min_rows=64, eager_after=4)
        before = ADAPTIVE_INDEX_BUILDS.labels(trigger="eager").value()
        bat = BAT(INT, list(range(200)))  # below min_rows (512)
        for _ in range(3):
            bat.select(10, 12)
        assert bat._order_cache is None   # mix not yet range-heavy
        bat.select(10, 12)                # 4th range select: build
        assert bat._order_cache is not None
        assert ADAPTIVE_INDEX_BUILDS.labels(
            trigger="eager").value() == before + 1

    def test_tiny_bats_never_build_eagerly(self, restore_index_policy):
        configure_index_policy(adaptive_min_rows=64, eager_after=2)
        bat = BAT(INT, list(range(32)))   # below adaptive_min_rows
        for _ in range(8):
            bat.select(1, 3)
        assert bat._order_cache is None

    def test_low_hit_rate_drops_index(self, restore_index_policy):
        configure_index_policy(min_rows=16, window=8, hit_floor=0.5,
                               scan_fallback_num=4)
        before = ADAPTIVE_INDEX_DROPS.value()
        bat = BAT(INT, list(range(1000)))
        # wide runs (901 * 4 > 1000 rows) always fall back to the scan
        # kernel: a full window of misses drops the index
        for _ in range(8):
            assert len(bat.select(0, 900)) == 901
        assert bat._order_disabled
        assert bat._order_cache is None
        assert ADAPTIVE_INDEX_DROPS.value() == before + 1
        # still answers correctly (by scanning), and mutation re-arms
        assert bat.select(5, 7).tail == [5, 6, 7]
        bat.append(1000)
        assert not bat._order_disabled

    def test_scan_fallback_zero_disables_fallback(
            self, restore_index_policy):
        configure_index_policy(min_rows=16, scan_fallback_num=0)
        bat = BAT(INT, list(range(1000)))
        assert len(bat.select(0, 900)) == 901
        assert bat._order_misses == 0     # wide run answered as a hit
        assert bat._order_hits == 1


# ---------------------------------------------------------------------------
# stats verb and CLI surfaces
# ---------------------------------------------------------------------------


class TestStatsSurfaces:
    def test_stats_verb_exposes_feedback_state(self):
        db = _skewed_db(plan_cache_size=8)
        with Mserver(db) as server:
            with MClient(port=server.port) as client:
                client.query("select a, b from t where a < 900 and b = 7")
                client.query("select a, b from t where a < 900 and b = 7")
                payload = client.stats_payload()
        store = payload["stats_store"]
        assert store["observations"] > 0
        assert store["entries"] > 0
        assert payload["stats_top"], "hot signatures should be listed"
        (entry,) = payload["plan_entries"]
        assert entry["hits"] == 1
        assert "where a <" in entry["sql"]
        assert payload["plan_cache"]["drift_evictions"] == 0

    def test_cli_stats_renders_snapshot(self, capsys):
        import io

        from repro.cli import main as cli_main

        store = StatsStore()
        store.observe_query("select 1", "default_pipe", 2, 42.0, FP)
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "stats.json")
            store.save(path)
            out = io.StringIO()
            assert cli_main(["stats", "--snapshot", path], out=out) == 0
        text = out.getvalue()
        assert "stats store:" in text
        assert "observations: 1" in text

    def test_cli_stats_requires_target(self):
        import io

        from repro.cli import main as cli_main

        out = io.StringIO()
        assert cli_main(["stats"], out=out) == 2

    def test_database_persists_stats_alongside_catalog(self):
        with tempfile.TemporaryDirectory() as workdir:
            db = Database(workers=2, wal_dir=workdir)
            db.execute("create table t (a int)")
            db.catalog.table("t").insert_many([[i] for i in range(10)])
            db.execute("select count(*) from t")
            db.close()
            assert os.path.exists(os.path.join(workdir, "stats.json"))
            reopened = Database(workers=2, wal_dir=workdir)
            assert len(reopened.stats_store) > 0
            reopened.close()
