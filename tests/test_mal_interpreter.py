"""Unit tests for the sequential MAL interpreter and cost model."""

import pytest

from repro.errors import MalRuntimeError
from repro.mal import Const, Interpreter, MalProgram, Var, bat_of
from repro.mal.interpreter import CostModel
from repro.mal.parser import parse_instruction_text
from repro.storage import Catalog, INT, STR


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("items", [("k", INT), ("v", STR)])
    t.insert_many([[1, "one"], [2, "two"], [1, "uno"], [3, "three"]])
    return cat


def run_text(catalog, text):
    program = parse_instruction_text(text)
    return Interpreter(catalog).run(program), program


class TestExecution:
    def test_bind_select_project(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
            X_3 := sql.bind(X_1,"sys","items","v",0);
            X_4 := algebra.select(X_2,1);
            X_5 := bat.mirror(X_4);
            X_6 := algebra.leftjoin(X_5,X_3);
            X_9 := sql.resultSet(1,2);
            X_10 := sql.rsColumn(X_9,"sys.items","v","str",X_6);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [("one",), ("uno",)]

    def test_scalar_aggregate(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
            X_3 := aggr.sum(X_2);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.items","sum_k","lng",X_3);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [(7,)]

    def test_group_and_grouped_aggr(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
            (X_3,X_4,X_5) := group.new(X_2);
            X_6 := aggr.count(X_2,X_3,X_4);
            X_9 := sql.resultSet(1,3);
            X_10 := sql.rsColumn(X_9,"sys.items","cnt","lng",X_6);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [(2,), (1,), (1,)]

    def test_undefined_variable_raises(self, catalog):
        program = MalProgram()
        program.declare("X_ghost")
        program.add("language", "pass", [Var("X_ghost")])
        with pytest.raises(Exception):
            Interpreter(catalog).run(program)

    def test_unknown_instruction_raises(self, catalog):
        result = None
        with pytest.raises(MalRuntimeError):
            run_text(catalog, "X_1 := nosuch.op();")

    def test_multi_result_mismatch_raises(self, catalog):
        with pytest.raises(MalRuntimeError):
            run_text(catalog, """
                X_1 := sql.mvc();
                X_2 := sql.bind(X_1,"sys","items","k",0);
                (X_3,X_4) := aggr.sum(X_2);
            """)

    def test_affected_rows(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            sql.affectedRows(X_1,5);
        """)
        assert result.affected_rows == 5


class TestRuns:
    def test_one_run_per_instruction(self, catalog):
        result, program = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
        """)
        assert [r.pc for r in result.runs] == [0, 1]

    def test_clock_monotone_and_contiguous(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
            X_3 := aggr.sum(X_2);
        """)
        prev_end = 0
        for run in result.runs:
            assert run.start_usec == prev_end
            assert run.end_usec == run.start_usec + run.usec
            assert run.usec >= 1
            prev_end = run.end_usec
        assert result.total_usec == prev_end

    def test_rows_recorded(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
        """)
        assert result.runs[1].rows == 4

    def test_rss_grows_with_bound_bats(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
        """)
        assert result.runs[1].rss_bytes > result.runs[0].rss_bytes

    def test_listener_sees_start_and_done(self, catalog):
        seen = []
        program = parse_instruction_text("X_1 := sql.mvc();")
        Interpreter(catalog, listener=lambda ph, r: seen.append((ph, r.pc))).run(
            program
        )
        assert seen == [("start", 0), ("done", 0)]

    def test_deterministic_timing(self, catalog):
        text = """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
            X_3 := algebra.select(X_2,1);
        """
        r1, _ = run_text(catalog, text)
        r2, _ = run_text(catalog, text)
        assert [(r.start_usec, r.usec) for r in r1.runs] == [
            (r.start_usec, r.usec) for r in r2.runs
        ]


class TestCostModel:
    def test_join_costs_more_than_admin(self, catalog):
        result, _ = run_text(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","items","k",0);
            X_4 := algebra.select(X_2,1);
            X_5 := algebra.leftjoin(X_4,X_2);
        """)
        by_fn = {r.function: r.usec for r in result.runs}
        assert by_fn["leftjoin"] > by_fn["mvc"]

    def test_cost_scales_with_input(self):
        cat = Catalog()
        t = cat.schema().create_table("big", [("x", INT)])
        t.insert_many([[i] for i in range(2000)])
        small_cat = Catalog()
        ts = small_cat.schema().create_table("big", [("x", INT)])
        ts.insert([1])
        text = """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","big","x",0);
            X_3 := algebra.thetaselect(X_2,0,">");
        """
        big, _ = run_text(cat, text)
        small, _ = run_text(small_cat, text)
        assert big.runs[2].usec > small.runs[2].usec

    def test_cost_at_least_one_usec(self, catalog):
        result, _ = run_text(catalog, "X_1 := sql.mvc();")
        assert result.runs[0].usec >= 1

    def test_sort_superlinear_term(self):
        model = CostModel()
        from repro.mal.ast import MalInstruction
        from repro.storage import BAT, INT as I

        sort = MalInstruction([], "algebra", "sortTail", [])
        small = model.cost_usec(sort, [BAT(I, list(range(100)))], [])
        large = model.cost_usec(sort, [BAT(I, list(range(10000)))], [])
        assert large > 100 * small / 100  # grows faster than linear baseline
        assert large > small
