"""Tests for the profiler: events, filters, trace I/O and UDP streaming."""

import pytest

from repro.errors import TraceFormatError
from repro.mal import Interpreter
from repro.mal.parser import parse_instruction_text
from repro.profiler import (
    EventFilter,
    Profiler,
    TraceEvent,
    UdpEmitter,
    UdpReceiver,
    format_event,
    parse_event,
    read_trace,
    write_trace,
)
from repro.profiler.stream import DOT_PREFIX, split_stream
from repro.profiler.traceio import parse_trace_text
from repro.storage import Catalog, INT


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT)])
    t.insert_many([[i] for i in range(50)])
    return cat


def run_profiled(catalog, event_filter=None):
    profiler = Profiler(event_filter)
    program = parse_instruction_text("""
        X_1 := sql.mvc();
        X_2 := sql.bind(X_1,"sys","t","x",0);
        X_3 := algebra.thetaselect(X_2,10,">");
        X_4 := aggr.count(X_3);
        X_9 := sql.resultSet(1,1);
        X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_4);
        sql.exportResult(X_10);
    """)
    Interpreter(catalog, listener=profiler).run(program)
    return profiler


class TestEventFormat:
    def event(self, **kwargs):
        base = dict(event=3, clock_usec=1000, status="done", pc=2, thread=1,
                    usec=44, rss_bytes=2048,
                    stmt='X_2 := sql.bind(X_1,"sys","t","x",0);')
        base.update(kwargs)
        return TraceEvent(**base)

    def test_roundtrip(self):
        event = self.event()
        assert parse_event(format_event(event)) == event

    def test_roundtrip_with_backslash(self):
        event = self.event(stmt='X := calc.str("a\\\\b");')
        assert parse_event(format_event(event)) == event

    def test_module_function_extraction(self):
        assert self.event().module == "sql"
        assert self.event().function == "bind"

    def test_module_of_bare_call(self):
        event = self.event(stmt="sql.exportResult(X_30);")
        assert event.module == "sql" and event.function == "exportResult"

    def test_module_of_multiresult(self):
        event = self.event(stmt="(X_1,X_2,X_3) := group.new(X_0);")
        assert event.module == "group"

    def test_bad_line_raises(self):
        with pytest.raises(TraceFormatError):
            parse_event("[ not an event ]")

    def test_bad_status_raises(self):
        line = format_event(self.event()).replace("done", "doing")
        with pytest.raises(TraceFormatError):
            parse_event(line)


class TestProfiler:
    def test_two_events_per_instruction(self, catalog):
        profiler = run_profiled(catalog)
        assert len(profiler.events) == 14
        statuses = [e.status for e in profiler.events]
        assert statuses[::2] == ["start"] * 7
        assert statuses[1::2] == ["done"] * 7

    def test_sequence_increasing(self, catalog):
        profiler = run_profiled(catalog)
        ids = [e.event for e in profiler.events]
        assert ids == list(range(14))

    def test_pcs_match_plan(self, catalog):
        profiler = run_profiled(catalog)
        assert [e.pc for e in profiler.done_events()] == list(range(7))

    def test_done_carries_usec(self, catalog):
        profiler = run_profiled(catalog)
        assert all(e.usec >= 1 for e in profiler.done_events())
        starts = [e for e in profiler.events if e.status == "start"]
        assert all(e.usec == 0 for e in starts)

    def test_filter_by_status(self, catalog):
        profiler = run_profiled(catalog, EventFilter(statuses={"done"}))
        assert all(e.status == "done" for e in profiler.events)
        assert len(profiler.events) == 7

    def test_filter_by_module(self, catalog):
        profiler = run_profiled(catalog, EventFilter(modules={"algebra"}))
        assert {e.module for e in profiler.events} == {"algebra"}

    def test_filter_min_usec_keeps_starts(self, catalog):
        profiler = run_profiled(catalog, EventFilter(min_usec=10 ** 6))
        assert all(e.status == "start" for e in profiler.events)

    def test_filter_describe(self):
        f = EventFilter(statuses={"done"}, min_usec=5)
        assert "done" in f.describe() and "usec >= 5" in f.describe()
        assert EventFilter().describe() == "all events"

    def test_custom_sink(self, catalog):
        seen = []
        profiler = Profiler()
        profiler.add_sink(seen.append)
        program = parse_instruction_text("X_1 := sql.mvc();")
        Interpreter(catalog, listener=profiler).run(program)
        assert len(seen) == 2

    def test_reset(self, catalog):
        profiler = run_profiled(catalog)
        profiler.reset()
        assert profiler.events == [] and profiler.total_usec() == 0


class TestTraceIo:
    def test_write_read_roundtrip(self, catalog, tmp_path):
        profiler = run_profiled(catalog)
        path = str(tmp_path / "query.trace")
        count = write_trace(profiler.events, path)
        assert count == 14
        assert read_trace(path) == profiler.events

    def test_attach_file_sink(self, catalog, tmp_path):
        path = str(tmp_path / "live.trace")
        profiler = Profiler()
        profiler.attach_file(path)
        program = parse_instruction_text("X_1 := sql.mvc();")
        Interpreter(catalog, listener=profiler).run(program)
        assert len(read_trace(path)) == 2

    def test_read_reports_line_numbers(self, tmp_path):
        path = str(tmp_path / "bad.trace")
        with open(path, "w") as f:
            f.write("garbage\n")
        with pytest.raises(TraceFormatError, match="bad.trace:1"):
            read_trace(path)

    def test_parse_trace_text(self, catalog):
        profiler = run_profiled(catalog)
        text = "\n".join(format_event(e) for e in profiler.events)
        assert parse_trace_text(text) == profiler.events


class TestUdpStream:
    def test_events_travel_over_udp(self, catalog):
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            profiler = Profiler()
            profiler.add_sink(emitter)
            program = parse_instruction_text("X_1 := sql.mvc();")
            Interpreter(catalog, listener=profiler).run(program)
            emitter.send_end()
            lines = list(receiver.lines(timeout=2.0))
            emitter.close()
        assert len(lines) == 2
        assert parse_event(lines[0]).status == "start"

    def test_dot_content_framed_and_split(self):
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            emitter.send_dot("digraph G {\nn0 -> n1;\n}")
            emitter.send_line('[ 0,\t0,\t"start",\t0,\t0,\t0,\t0,\t"x := a.b();"\t]')
            emitter.send_end()
            lines = list(receiver.lines(timeout=2.0))
            emitter.close()
        dot_lines, trace_lines = split_stream(lines)
        assert dot_lines == ["digraph G {", "n0 -> n1;", "}"]
        assert len(trace_lines) == 1

    def test_multiple_emitters_one_receiver(self):
        # the textual stethoscope supports multiple (distributed) servers
        with UdpReceiver() as receiver:
            a = UdpEmitter(port=receiver.port)
            b = UdpEmitter(port=receiver.port)
            a.send_line("#dot\tdigraph A {}")
            b.send_line("#dot\tdigraph B {}")
            seen = {receiver.try_line(1.0), receiver.try_line(1.0)}
            a.close()
            b.close()
        assert seen == {"#dot\tdigraph A {}", "#dot\tdigraph B {}"}
