"""Tests for the SVG writer/parser and the dot→svg→graph workflow."""

import pytest

from repro.dot import Digraph, plan_to_graph
from repro.errors import SvgError
from repro.layout import layout_graph
from repro.mal.parser import parse_instruction_text
from repro.svg import layout_to_svg, parse_svg, svg_to_graph
from repro.svg.writer import layout_to_scene, scene_to_svg

PLAN_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","x",0);
    X_3 := algebra.select(X_2,1);
    sql.exportResult(X_3);
"""


@pytest.fixture
def plan_layout():
    return layout_graph(plan_to_graph(parse_instruction_text(PLAN_TEXT)))


class TestWriter:
    def test_svg_is_well_formed(self, plan_layout):
        text = layout_to_svg(plan_layout)
        assert text.startswith('<?xml version="1.0"')
        parse_svg(text)  # no exception

    def test_node_ids_present(self, plan_layout):
        text = layout_to_svg(plan_layout)
        for pc in range(4):
            assert f'id="n{pc}"' in text

    def test_labels_escaped(self):
        g = Digraph()
        g.add_node("a", {"label": "x < y & z"})
        text = layout_to_svg(layout_graph(g))
        assert "x &lt; y &amp; z" in text
        assert parse_svg(text).node("a").label == "x < y & z"

    def test_fill_override(self, plan_layout):
        text = layout_to_svg(plan_layout, fills={"n2": "red"})
        assert 'fill="red"' in text

    def test_scene_counts(self, plan_layout):
        scene = layout_to_scene(plan_layout)
        assert len(scene.nodes) == 4
        assert len(scene.edges) == 3


class TestParser:
    def test_roundtrip_geometry(self, plan_layout):
        scene = parse_svg(layout_to_svg(plan_layout, margin=0.0))
        for node_id, node in plan_layout.nodes.items():
            parsed = scene.node(node_id)
            assert parsed.x == pytest.approx(node.x, abs=0.1)
            assert parsed.y == pytest.approx(node.y, abs=0.1)
            assert parsed.width == pytest.approx(node.width, abs=0.1)

    def test_roundtrip_labels(self, plan_layout):
        scene = parse_svg(layout_to_svg(plan_layout))
        assert scene.node("n0").label.startswith("X_1 := sql.mvc()")

    def test_roundtrip_edges(self, plan_layout):
        scene = parse_svg(layout_to_svg(plan_layout))
        pairs = {(e.src, e.dst) for e in scene.edges}
        assert ("n1", "n2") in pairs

    def test_svg_to_graph_structure(self, plan_layout):
        graph = svg_to_graph(layout_to_svg(plan_layout))
        assert set(graph.nodes) == {"n0", "n1", "n2", "n3"}
        assert "n2" in graph.successors("n1")
        assert graph.node("n0").attrs["x"]  # geometry recovered

    def test_bad_xml_raises(self):
        with pytest.raises(SvgError):
            parse_svg("<svg><unclosed></svg")

    def test_missing_edge_endpoints_raise(self):
        text = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<polyline class="edge" points="0,0 1,1"/></svg>'
        )
        with pytest.raises(SvgError):
            parse_svg(text)

    def test_bad_points_raise(self):
        text = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<polyline class="edge" data-src="a" data-dst="b" points="0,0 1"/>'
            "</svg>"
        )
        with pytest.raises(SvgError):
            parse_svg(text)

    def test_non_node_groups_ignored(self):
        text = (
            '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10">'
            '<g class="decoration"><rect x="0" y="0" width="5" height="5"/>'
            "</g></svg>"
        )
        assert parse_svg(text).nodes == {}


class TestWorkflowChain:
    def test_full_dot_svg_graph_chain(self):
        """The paper's exact pipeline: dot text → graph → layout → svg →
        in-memory graph, ending with the same structure it started from."""
        from repro.dot import graph_to_dot, parse_dot

        program = parse_instruction_text(PLAN_TEXT)
        dot_text = graph_to_dot(plan_to_graph(program))
        graph = parse_dot(dot_text)
        layout = layout_graph(graph)
        svg_text = layout_to_svg(layout)
        recovered = svg_to_graph(svg_text)
        assert set(recovered.nodes) == set(graph.nodes)
        assert recovered.edge_count() == graph.edge_count()
        for node_id in graph.nodes:
            assert recovered.node(node_id).label == graph.node(node_id).label
