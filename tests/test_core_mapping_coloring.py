"""Tests for trace↔dot mapping and the §4.2.1 colouring algorithms."""

import pytest

from repro.core.coloring import (
    PairSequenceColorizer,
    ThresholdColorizer,
    color_buffer,
)
from repro.core.mapping import PlanTraceMap, node_for_pc, pc_for_node
from repro.dot import plan_to_graph
from repro.errors import MappingError
from repro.mal.parser import parse_instruction_text
from repro.profiler.events import TraceEvent
from repro.viz.color import GREEN, RED


def make_event(seq, status, pc, clock=None, usec=10, thread=0,
               stmt="X := a.b();"):
    return TraceEvent(
        event=seq, clock_usec=clock if clock is not None else seq * 100,
        status=status, pc=pc, thread=thread,
        usec=usec if status == "done" else 0, rss_bytes=0, stmt=stmt,
    )


def pair_stream(*pairs):
    """Build events from (status, pc) tuples, like the paper's example."""
    return [make_event(i, status, pc) for i, (status, pc) in enumerate(pairs)]


class TestNodeNames:
    def test_pc_to_node(self):
        assert node_for_pc(1) == "n1"

    def test_node_to_pc(self):
        assert pc_for_node("n42") == 42

    def test_bad_node_name(self):
        with pytest.raises(MappingError):
            pc_for_node("x42")

    def test_negative_pc(self):
        with pytest.raises(MappingError):
            node_for_pc(-1)


class TestPlanTraceMap:
    def graph(self):
        return plan_to_graph(parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := algebra.select(X_2,1);
        """))

    def test_events_indexed_by_node(self):
        events = pair_stream(("start", 0), ("done", 0), ("start", 1),
                             ("done", 1))
        trace_map = PlanTraceMap(self.graph(), events)
        assert len(trace_map.events_of("n0")) == 2
        assert trace_map.events_of("n2") == []

    def test_pc_without_node_rejected(self):
        events = pair_stream(("start", 99),)
        with pytest.raises(MappingError):
            PlanTraceMap(self.graph(), events)

    def test_done_event_of(self):
        events = pair_stream(("start", 1), ("done", 1))
        trace_map = PlanTraceMap(self.graph(), events)
        assert trace_map.done_event_of("n1").status == "done"
        assert trace_map.done_event_of("n0") is None

    def test_executed_and_unexecuted(self):
        events = pair_stream(("start", 0), ("done", 0))
        trace_map = PlanTraceMap(self.graph(), events)
        assert trace_map.executed_nodes() == ["n0"]
        assert set(trace_map.unexecuted_nodes()) == {"n1", "n2"}

    def test_coverage(self):
        events = pair_stream(("start", 0), ("done", 0), ("start", 1))
        trace_map = PlanTraceMap(self.graph(), events)
        assert trace_map.coverage() == pytest.approx(2 / 3)

    def test_strict_label_mismatch(self):
        graph = self.graph()
        events = [make_event(0, "start", 0, stmt="something else")]
        with pytest.raises(MappingError):
            PlanTraceMap(graph, events, strict_labels=True)


class TestPairSequenceColorizer:
    def test_paper_worked_example(self):
        """{start,1},{done,1},{start,2},{done,2},{start,3},{start,4}:
        only pc=3 turns RED."""
        events = pair_stream(
            ("start", 1), ("done", 1), ("start", 2), ("done", 2),
            ("start", 3), ("start", 4),
        )
        actions = color_buffer(events)
        assert [(a.pc, a.color) for a in actions] == [(3, RED)]

    def test_long_instruction_goes_green_on_done(self):
        events = pair_stream(
            ("start", 1), ("start", 2), ("done", 2), ("done", 1),
        )
        actions = color_buffer(events)
        # pc1 overtaken by start2 -> RED; pc2 paired? no: done2 follows
        # start2 adjacently -> uncoloured; done1 -> GREEN
        assert (1, RED) == (actions[0].pc, actions[0].color)
        assert (1, GREEN) == (actions[-1].pc, actions[-1].color)
        assert all(a.pc != 2 for a in actions)

    def test_fast_pairs_uncolored(self):
        events = pair_stream(*[
            pair for pc in range(20)
            for pair in (("start", pc), ("done", pc))
        ])
        assert color_buffer(events) == []

    def test_finish_paints_stuck_instruction(self):
        colorizer = PairSequenceColorizer()
        for event in pair_stream(("start", 7),):
            colorizer.push(event)
        actions = colorizer.finish()
        assert [(a.pc, a.color) for a in actions] == [(7, RED)]

    def test_currently_red_tracks_open_long_instructions(self):
        colorizer = PairSequenceColorizer()
        for event in pair_stream(("start", 1), ("start", 2)):
            colorizer.push(event)
        assert colorizer.currently_red == {1}

    def test_interleaved_threads_all_overtaken(self):
        events = pair_stream(
            ("start", 1), ("start", 2), ("start", 3),
            ("done", 1), ("done", 2), ("done", 3),
        )
        actions = color_buffer(events)
        reds = [a.pc for a in actions if a.color == RED]
        greens = [a.pc for a in actions if a.color == GREEN]
        # every start was overtaken before its done -> all RED then GREEN
        assert set(reds) == {1, 2, 3}
        assert set(greens) == {1, 2, 3}
        for pc in (1, 2, 3):
            per_pc = [a.color for a in actions if a.pc == pc]
            assert per_pc == [RED, GREEN]

    def test_no_duplicate_red(self):
        colorizer = PairSequenceColorizer()
        events = pair_stream(("start", 1), ("start", 2), ("start", 3))
        actions = []
        for event in events:
            actions.extend(colorizer.push(event))
        reds = [a.pc for a in actions if a.color == RED]
        assert sorted(reds) == sorted(set(reds))


class TestThresholdColorizer:
    def test_threshold_split(self):
        colorizer = ThresholdColorizer(threshold_usec=100)
        slow = make_event(0, "done", 1, usec=500)
        fast = make_event(1, "done", 2, usec=5)
        assert colorizer.push(slow)[0].color == RED
        assert colorizer.push(fast)[0].color == GREEN

    def test_start_events_produce_nothing(self):
        colorizer = ThresholdColorizer(threshold_usec=100)
        assert colorizer.push(make_event(0, "start", 1)) == []

    def test_overdue_detection(self):
        colorizer = ThresholdColorizer(threshold_usec=100)
        colorizer.push(make_event(0, "start", 1, clock=0))
        assert colorizer.overdue(clock_usec=50) == []
        overdue = colorizer.overdue(clock_usec=200)
        assert [(a.pc, a.color) for a in overdue] == [(1, RED)]

    def test_done_clears_overdue(self):
        colorizer = ThresholdColorizer(threshold_usec=100)
        colorizer.push(make_event(0, "start", 1, clock=0))
        colorizer.push(make_event(1, "done", 1, clock=500, usec=500))
        assert colorizer.overdue(clock_usec=1000) == []

    def test_positive_threshold_required(self):
        with pytest.raises(ValueError):
            ThresholdColorizer(0)
