"""Tests for the Sugiyama layout engine."""

import pytest

from repro.dot import Digraph, parse_dot, plan_to_graph
from repro.layout import LayeredLayout, layout_graph
from repro.layout.acyclic import acyclic_orientation
from repro.layout.geometry import node_size_for_label
from repro.layout.ordering import count_crossings, insert_virtual_nodes
from repro.layout.rank import assign_ranks, layers_from_ranks
from repro.mal.parser import parse_instruction_text


def diamond():
    g = Digraph()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


class TestAcyclic:
    def test_dag_untouched(self):
        oriented, reversed_indices = acyclic_orientation(diamond())
        assert reversed_indices == set()
        assert len(oriented) == 4

    def test_cycle_broken(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        oriented, reversed_indices = acyclic_orientation(g)
        assert len(reversed_indices) == 1
        ranks = assign_ranks(list(g.nodes), oriented)
        for src, dst in oriented:
            assert ranks[src] < ranks[dst]

    def test_self_loop_dropped_from_orientation(self):
        g = Digraph()
        g.add_edge("a", "a")
        g.add_edge("a", "b")
        oriented, _ = acyclic_orientation(g)
        assert ("a", "a") not in oriented


class TestRanking:
    def test_diamond_ranks(self):
        g = diamond()
        oriented, _ = acyclic_orientation(g)
        ranks = assign_ranks(list(g.nodes), oriented)
        assert ranks == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_edges_point_downward(self):
        program = parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := algebra.select(X_2,1);
            sql.exportResult(X_3);
        """)
        g = plan_to_graph(program)
        oriented, _ = acyclic_orientation(g)
        ranks = assign_ranks(list(g.nodes), oriented)
        for src, dst in oriented:
            assert ranks[src] < ranks[dst]

    def test_source_pulled_toward_consumer(self):
        # a -> b -> c -> d ; e -> d : e should sit at rank 2, not 0
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        g.add_edge("e", "d")
        oriented, _ = acyclic_orientation(g)
        ranks = assign_ranks(list(g.nodes), oriented)
        assert ranks["e"] == ranks["d"] - 1

    def test_layers_dense(self):
        ranks = {"a": 0, "b": 2, "c": 1}
        layers = layers_from_ranks(ranks)
        assert layers == [["a"], ["c"], ["b"]]


class TestOrdering:
    def test_virtual_nodes_for_long_edges(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")  # spans 2 ranks
        oriented, _ = acyclic_orientation(g)
        ranks = assign_ranks(list(g.nodes), oriented)
        seg = insert_virtual_nodes(ranks, layers_from_ranks(ranks), oriented)
        assert len(seg.virtual) == 1
        assert all(
            abs(ranks.get(s, -1) - ranks.get(d, -1)) <= 1
            or s in seg.virtual or d in seg.virtual
            for s, d in seg.segments
        )

    def test_count_crossings_known_case(self):
        layers = [["a", "b"], ["x", "y"]]
        crossing = [("a", "y"), ("b", "x")]
        straight = [("a", "x"), ("b", "y")]
        assert count_crossings(layers, crossing) == 1
        assert count_crossings(layers, straight) == 0

    def test_sweeps_remove_trivial_crossing(self):
        g = Digraph()
        g.add_edge("a", "y")
        g.add_edge("b", "x")
        g.add_node("dummy")  # irrelevant isolated node
        layout_engine = LayeredLayout()
        layout_engine.layout(g)
        assert layout_engine.last_crossings == 0


class TestEngine:
    def test_every_node_positioned(self):
        layout = layout_graph(diamond())
        assert set(layout.nodes) == {"a", "b", "c", "d"}

    def test_no_overlap_within_layer(self):
        program = parse_instruction_text("""
            X_0 := sql.mvc();
            X_1 := sql.bind(X_0,"sys","t","a",0);
            X_2 := sql.bind(X_0,"sys","t","b",0);
            X_3 := sql.bind(X_0,"sys","t","c",0);
            X_4 := algebra.leftjoin(X_1,X_2);
            X_5 := algebra.leftjoin(X_4,X_3);
            sql.exportResult(X_5);
        """)
        layout = layout_graph(plan_to_graph(program))
        by_rank = {}
        for node in layout.nodes.values():
            by_rank.setdefault(node.rank, []).append(node)
        for nodes in by_rank.values():
            nodes.sort(key=lambda n: n.x)
            for left, right in zip(nodes, nodes[1:]):
                assert left.right < right.left, (
                    f"{left.node_id} overlaps {right.node_id}"
                )

    def test_edges_have_polylines(self):
        layout = layout_graph(diamond())
        assert len(layout.edges) == 4
        assert all(len(e.points) >= 2 for e in layout.edges)

    def test_dependency_flows_downward(self):
        layout = layout_graph(diamond())
        assert layout.nodes["a"].y < layout.nodes["b"].y < layout.nodes["d"].y

    def test_bounds_positive(self):
        layout = layout_graph(diamond())
        assert layout.width > 0 and layout.height > 0
        for node in layout.nodes.values():
            assert node.left >= 0 and node.top >= 0

    def test_node_at_hit_test(self):
        layout = layout_graph(diamond())
        node = layout.nodes["a"]
        assert layout.node_at(node.x, node.y).node_id == "a"
        assert layout.node_at(-1000.0, -1000.0) is None

    def test_empty_graph(self):
        layout = layout_graph(Digraph())
        assert layout.nodes == {} and layout.edges == []

    def test_single_node(self):
        g = Digraph()
        g.add_node("only", {"label": "hello"})
        layout = layout_graph(g)
        assert layout.nodes["only"].label == "hello"

    def test_self_loop_rendered(self):
        g = Digraph()
        g.add_edge("a", "a")
        layout = layout_graph(g)
        assert len(layout.edges) == 1
        assert len(layout.edges[0].points) == 3

    def test_label_size_model(self):
        small_w, _ = node_size_for_label("ab")
        large_w, _ = node_size_for_label("a" * 60)
        assert large_w > small_w
        _, one_line = node_size_for_label("x")
        _, two_lines = node_size_for_label("x\ny")
        assert two_lines > one_line

    def test_thousand_node_plan(self):
        g = Digraph()
        for i in range(1, 1200):
            g.add_edge(f"n{(i - 1) // 3}", f"n{i}")
        layout = layout_graph(g)
        assert len(layout.nodes) == 1200

    def test_bounds_of_selection(self):
        layout = layout_graph(diamond())
        left, top, right, bottom = layout.bounds_of(["a", "d"])
        assert right > left and bottom > top
