"""Tests for the visualization toolkit (glyphs, camera, queue, lens...)."""

import pytest

from repro.dot import plan_to_graph
from repro.errors import VizError
from repro.layout import layout_graph
from repro.mal.parser import parse_instruction_text
from repro.viz import (
    Animator,
    Camera,
    Color,
    EventDispatchQueue,
    FisheyeLens,
    GREEN,
    RED,
    RectangleGlyph,
    View,
    VirtualSpace,
    WHITE,
    build_virtual_space,
)
from repro.viz.color import gradient_for

PLAN_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","x",0);
    X_3 := algebra.select(X_2,1);
    sql.exportResult(X_3);
"""


@pytest.fixture
def space():
    layout = layout_graph(plan_to_graph(parse_instruction_text(PLAN_TEXT)))
    return build_virtual_space(layout)


class TestColor:
    def test_hex_roundtrip(self):
        assert Color.from_hex("#dc2828").to_hex() == "#dc2828"

    def test_bad_hex(self):
        with pytest.raises(VizError):
            Color.from_hex("#zzz")

    def test_channel_range_enforced(self):
        with pytest.raises(VizError):
            Color(300, 0, 0)

    def test_lerp_endpoints(self):
        assert WHITE.lerp(RED, 0.0) == WHITE
        assert WHITE.lerp(RED, 1.0) == RED

    def test_lerp_clamped(self):
        assert WHITE.lerp(RED, 5.0) == RED

    def test_gradient_for_range(self):
        cold = gradient_for(0, 0, 100)
        hot = gradient_for(100, 0, 100)
        assert cold == GREEN and hot == RED
        middle = gradient_for(50, 0, 100)
        assert middle not in (GREEN, RED)

    def test_gradient_degenerate_range(self):
        assert gradient_for(5, 5, 5) == GREEN


class TestVirtualSpace:
    def test_glyph_per_object(self, space):
        # paper: one shape + one text per node, one glyph per edge
        # plan has 4 nodes and 3 edges -> 4+4+3 = 11 glyphs
        assert len(space) == 11

    def test_shape_and_text_accessors(self, space):
        shape = space.shape_of("n1")
        assert shape.owner == "n1"
        assert "sql.bind" in space.text_of("n1").text

    def test_duplicate_glyph_rejected(self, space):
        with pytest.raises(VizError):
            space.add(RectangleGlyph(glyph_id="shape:n1"))

    def test_remove(self, space):
        space.remove("shape:n0")
        assert "shape:n0" not in space
        with pytest.raises(VizError):
            space.remove("shape:n0")

    def test_shape_at_hit(self, space):
        shape = space.shape_of("n2")
        assert space.shape_at(shape.x, shape.y).owner == "n2"
        assert space.shape_at(-9999, -9999) is None

    def test_node_ids(self, space):
        assert set(space.node_ids()) == {"n0", "n1", "n2", "n3"}

    def test_bounds_nonempty(self, space):
        left, top, right, bottom = space.bounds()
        assert right > left and bottom > top


class TestCamera:
    def test_world_screen_roundtrip(self):
        camera = Camera(x=50, y=50, altitude=150)
        sx, sy = camera.world_to_screen(80, 20, 800, 600)
        wx, wy = camera.screen_to_world(sx, sy, 800, 600)
        assert (wx, wy) == (pytest.approx(80), pytest.approx(20))

    def test_zoom_in_raises_scale(self):
        camera = Camera(altitude=100)
        before = camera.scale
        camera.zoom_in(2.0)
        assert camera.scale > before

    def test_zoom_out_then_in_restores(self):
        camera = Camera(altitude=100)
        camera.zoom_out(2.0)
        camera.zoom_in(2.0)
        assert camera.altitude == pytest.approx(100)

    def test_zoom_in_bounded_above_negative_focal(self):
        camera = Camera(altitude=1)
        for _ in range(10):
            camera.zoom_in(10)
        # negative altitudes magnify past 1:1 but never reach -focal
        assert -camera.focal < camera.altitude
        assert camera.scale > 1.0

    def test_fit_contains_bounds(self):
        camera = Camera()
        camera.fit((0, 0, 1000, 500), 800, 600)
        for corner in ((0, 0), (1000, 0), (0, 500), (1000, 500)):
            sx, sy = camera.world_to_screen(*corner, 800, 600)
            assert -1 <= sx <= 801 and -1 <= sy <= 601

    def test_bad_zoom_factor(self):
        with pytest.raises(VizError):
            Camera().zoom_in(0)


class TestEventDispatchQueue:
    def test_min_interval_enforced(self):
        queue = EventDispatchQueue(min_interval_ms=150)
        ran = []
        for i in range(5):
            queue.post(f"node {i}", lambda i=i: ran.append(i))
        assert queue.run_until(0) == 1  # first runs immediately
        assert queue.run_until(149) == 0
        assert queue.run_until(150) == 1
        assert queue.run_until(10_000) == 3
        assert ran == [0, 1, 2, 3, 4]

    def test_throughput_bound(self):
        queue = EventDispatchQueue(min_interval_ms=150)
        assert queue.throughput_per_second() == pytest.approx(1000 / 150)

    def test_backlog_growth_when_overloaded(self):
        queue = EventDispatchQueue(min_interval_ms=150)
        for i in range(100):
            queue.post(f"n{i}", lambda: None)
        queue.run_until(1000)  # room for ~7 renders
        assert queue.pending() > 90

    def test_drain_flushes_everything(self):
        queue = EventDispatchQueue(min_interval_ms=150)
        for i in range(10):
            queue.post(f"n{i}", lambda: None)
        queue.drain()
        assert queue.pending() == 0
        assert len(queue.executed) == 10

    def test_max_latency_reflects_queueing(self):
        queue = EventDispatchQueue(min_interval_ms=100)
        for i in range(5):
            queue.post(f"n{i}", lambda: None)
        queue.drain()
        assert queue.max_latency_ms() >= 300  # the 5th waited 4 slots


class TestAnimator:
    def test_camera_animation_reaches_target(self):
        camera = Camera(x=0, y=0, altitude=100)
        animator = Animator()
        animator.animate_camera_to(camera, 50, 80, 10, duration_ms=100)
        animator.run_to_completion(step_ms=10)
        assert (camera.x, camera.y, camera.altitude) == (50, 80, 10)

    def test_fill_animation(self, space):
        shape = space.shape_of("n0")
        animator = Animator()
        animator.animate_fill(shape, RED, duration_ms=100)
        animator.run_to_completion(step_ms=25)
        assert shape.fill == RED

    def test_highlight_returns_to_start(self, space):
        shape = space.shape_of("n0")
        shape.fill = WHITE
        animator = Animator()
        animator.animate_highlight([shape], RED, duration_ms=100)
        animator.run_to_completion(step_ms=10)
        assert shape.fill == WHITE

    def test_active_count_drops(self):
        animator = Animator()
        camera = Camera()
        animator.animate_camera_to(camera, 1, 1, 1, duration_ms=50)
        assert animator.active == 1
        animator.run_to_completion()
        assert animator.active == 0


class TestLens:
    def test_identity_outside_radius(self):
        lens = FisheyeLens(0, 0, radius=10, magnification=3)
        assert lens.transform(100, 100) == (100, 100)

    def test_magnifies_near_focus(self):
        lens = FisheyeLens(0, 0, radius=100, magnification=3)
        x, y = lens.transform(10, 0)
        assert x > 10  # pushed outward
        assert y == 0

    def test_focus_fixed_point(self):
        lens = FisheyeLens(5, 5, radius=100)
        assert lens.transform(5, 5) == (5, 5)

    def test_boundary_continuous(self):
        lens = FisheyeLens(0, 0, radius=100, magnification=3)
        inside_x, _ = lens.transform(99.9, 0)
        assert inside_x == pytest.approx(100, abs=0.5)

    def test_magnification_at_centre(self):
        lens = FisheyeLens(0, 0, radius=100, magnification=3)
        assert lens.magnification_at(0, 0) == pytest.approx(4.0)
        assert lens.magnification_at(500, 0) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(VizError):
            FisheyeLens(radius=0)
        with pytest.raises(VizError):
            FisheyeLens(magnification=0.5)

    def test_magnifier_uniform_inside(self):
        from repro.viz.lens import MagnifierLens

        lens = MagnifierLens(0, 0, radius=50, magnification=2)
        assert lens.transform(10, 0) == (20, 0)
        assert lens.transform(100, 0) == (100, 0)
        assert lens.magnification_at(10, 0) == 2
        assert lens.magnification_at(100, 0) == 1.0

    def test_magnifier_tracks_focus(self):
        from repro.viz.lens import MagnifierLens

        lens = MagnifierLens(0, 0, radius=10, magnification=3)
        lens.move_to(100, 100)
        assert lens.transform(0, 0) == (0, 0)  # now outside
        assert lens.transform(101, 100) == (103, 100)

    def test_magnifier_invalid_parameters(self):
        from repro.viz.lens import MagnifierLens

        with pytest.raises(VizError):
            MagnifierLens(radius=-1)
        with pytest.raises(VizError):
            MagnifierLens(magnification=0.9)


class TestView:
    def test_fit_all_then_all_visible(self, space):
        view = View(space, width=400, height=300)
        view.fit_all()
        visible_owners = {
            g.owner for g in view.visible_glyphs()
            if isinstance(g, RectangleGlyph)
        }
        assert visible_owners == {"n0", "n1", "n2", "n3"}

    def test_focus_node_then_pick_center(self, space):
        view = View(space, width=400, height=300)
        view.focus_node("n2")
        picked = view.pick(200, 150)  # viewport centre
        assert picked is not None and picked.owner == "n2"

    def test_render_ascii_shows_boxes(self, space):
        view = View(space, width=100, height=40)
        view.fit_all()
        text = view.render_ascii(columns=100, rows=40)
        assert "#" in text

    def test_render_ascii_shows_colored_state(self, space):
        space.shape_of("n2").fill = RED
        view = View(space, width=120, height=48)
        view.fit_all()
        assert "R" in view.render_ascii(columns=120, rows=48)

    def test_render_svg_carries_fills(self, space):
        space.shape_of("n1").fill = GREEN
        view = View(space)
        svg = view.render_svg()
        assert GREEN.to_hex() in svg
        assert 'id="shape:n1"' in svg
