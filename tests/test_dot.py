"""Tests for the dot graph model, writer and parser."""

import pytest

from repro.dot import Digraph, graph_to_dot, parse_dot, plan_to_dot, plan_to_graph
from repro.errors import DotError, DotParseError
from repro.mal.parser import parse_instruction_text

PLAN_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","x",0);
    X_3 := algebra.select(X_2,1);
    X_4 := bat.mirror(X_3);
    X_5 := algebra.leftjoin(X_4,X_2);
    sql.exportResult(X_5);
"""


class TestDigraph:
    def make(self):
        g = Digraph("G")
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        return g

    def test_nodes_created_by_edges(self):
        g = self.make()
        assert set(g.nodes) == {"a", "b", "c", "d"}

    def test_duplicate_node_raises(self):
        g = self.make()
        with pytest.raises(DotError):
            g.add_node("a")

    def test_degrees(self):
        g = self.make()
        assert g.out_degree("a") == 2
        assert g.in_degree("d") == 2

    def test_roots_and_leaves(self):
        g = self.make()
        assert g.roots() == ["a"]
        assert g.leaves() == ["d"]

    def test_successors_predecessors(self):
        g = self.make()
        assert g.successors("a") == ["b", "c"]
        assert g.predecessors("d") == ["b", "c"]

    def test_topological_order(self):
        g = self.make()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")

    def test_cycle_detected(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert not g.is_acyclic()
        with pytest.raises(DotError):
            g.topological_order()

    def test_reachable(self):
        g = self.make()
        assert g.reachable_from("b") == {"b", "d"}

    def test_bfs_layers(self):
        g = self.make()
        layers = g.bfs_layers()
        assert layers == [["a"], ["b", "c"], ["d"]]

    def test_subgraph(self):
        g = self.make()
        sub = g.subgraph({"a", "b", "d"})
        assert set(sub.nodes) == {"a", "b", "d"}
        assert sub.edge_count() == 2  # a->b, b->d

    def test_missing_node_lookup_raises(self):
        with pytest.raises(DotError):
            self.make().node("zzz")


class TestWriter:
    def test_plan_nodes_named_by_pc(self):
        program = parse_instruction_text(PLAN_TEXT)
        graph = plan_to_graph(program)
        assert set(graph.nodes) == {f"n{i}" for i in range(6)}

    def test_labels_carry_statements(self):
        program = parse_instruction_text(PLAN_TEXT)
        graph = plan_to_graph(program)
        assert "sql.mvc()" in graph.node("n0").label
        assert graph.node("n2").attrs["pc"] == "2"

    def test_edges_follow_dataflow(self):
        program = parse_instruction_text(PLAN_TEXT)
        graph = plan_to_graph(program)
        assert "n2" in graph.successors("n1")   # bind -> select
        assert "n5" in graph.successors("n4")   # leftjoin -> exportResult

    def test_graph_acyclic(self):
        program = parse_instruction_text(PLAN_TEXT)
        assert plan_to_graph(program).is_acyclic()

    def test_dot_text_shape(self):
        program = parse_instruction_text(PLAN_TEXT)
        text = plan_to_dot(program)
        assert text.startswith("digraph user_fragment {")
        assert "n1 -> n2;" in text
        assert text.rstrip().endswith("}")


class TestParser:
    def test_roundtrip_plan(self):
        program = parse_instruction_text(PLAN_TEXT)
        original = plan_to_graph(program)
        parsed = parse_dot(graph_to_dot(original))
        assert set(parsed.nodes) == set(original.nodes)
        assert parsed.edge_count() == original.edge_count()
        for node_id in original.nodes:
            assert parsed.node(node_id).label == original.node(node_id).label

    def test_edge_chain(self):
        g = parse_dot("digraph { a -> b -> c; }")
        assert g.edge_count() == 2
        assert g.successors("b") == ["c"]

    def test_node_defaults_applied(self):
        g = parse_dot('digraph { node [shape=circle]; a; b [shape=box]; }')
        assert g.node("a").attrs["shape"] == "circle"
        assert g.node("b").attrs["shape"] == "box"

    def test_edge_defaults_applied(self):
        g = parse_dot("digraph { edge [color=red]; a -> b; }")
        assert g.edges[0].attrs["color"] == "red"

    def test_graph_attributes(self):
        g = parse_dot('digraph G { rankdir=LR; label="my graph"; a; }')
        assert g.attrs["rankdir"] == "LR"
        assert g.attrs["label"] == "my graph"

    def test_quoted_labels_with_escapes(self):
        g = parse_dot('digraph { a [label="x := f(\\"s\\");"]; }')
        assert g.node("a").label == 'x := f("s");'

    def test_comments_ignored(self):
        g = parse_dot(
            "digraph { // line\n# hash\n/* block\nspanning */ a -> b; }"
        )
        assert g.edge_count() == 1

    def test_subgraph_flattened(self):
        g = parse_dot(
            "digraph { subgraph cluster_0 { a -> b; } b -> c; }"
        )
        assert set(g.nodes) == {"a", "b", "c"}
        assert g.edge_count() == 2

    def test_numeric_ids(self):
        g = parse_dot("digraph { 1 -> 2; }")
        assert set(g.nodes) == {"1", "2"}

    def test_strict_accepted(self):
        assert parse_dot("strict digraph { a; }").node_count() == 1

    def test_undirected_rejected(self):
        with pytest.raises(DotParseError):
            parse_dot("graph { a -- b; }")

    def test_missing_brace(self):
        with pytest.raises(DotParseError):
            parse_dot("digraph { a -> b;")

    def test_error_carries_line(self):
        with pytest.raises(DotParseError, match="line 2"):
            parse_dot("digraph {\n a = ; \n}")

    def test_large_generated_graph(self):
        lines = ["digraph big {"]
        for i in range(1500):
            lines.append(f'n{i} [label="node {i}"];')
        for i in range(1, 1500):
            lines.append(f"n{i - 1} -> n{i};")
        lines.append("}")
        g = parse_dot("\n".join(lines))
        assert g.node_count() == 1500
        assert g.edge_count() == 1499
