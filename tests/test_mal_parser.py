"""Unit tests for the MAL text parser and printer (round-trip)."""

import pytest

from repro.errors import MalParseError
from repro.mal import format_program, parse_program
from repro.mal.ast import Const, Var
from repro.mal.parser import parse_instruction_text

SIMPLE = """\
function user.s1_1{autoCommit=true}():void;
    X_2 := sql.mvc();
    X_10:bat[:oid,:int] := sql.bind(X_2,"sys","lineitem","l_partkey",0);
    X_23:bat[:oid,:oid] := algebra.select(X_10,1);
    X_30 := algebra.leftjoin(X_23,X_10);
    sql.exportResult(X_30);
end s1_1;
"""


class TestParsing:
    def test_header(self):
        p = parse_program(SIMPLE)
        assert p.name == "user.s1_1"
        assert p.properties == {"autoCommit": True}

    def test_instruction_count_and_pcs(self):
        p = parse_program(SIMPLE)
        assert len(p) == 5
        assert [i.pc for i in p] == [0, 1, 2, 3, 4]

    def test_args_kinds(self):
        p = parse_program(SIMPLE)
        bind = p.instructions[1]
        assert isinstance(bind.args[0], Var)
        assert isinstance(bind.args[1], Const)
        assert bind.args[1].value == "sys"
        assert bind.args[4].value == 0

    def test_type_annotations_recorded(self):
        p = parse_program(SIMPLE)
        spec = p.type_of("X_10")
        assert spec.is_bat and spec.tail.name == "int"

    def test_bare_call_without_results(self):
        p = parse_program(SIMPLE)
        assert p.instructions[4].results == []

    def test_multi_result(self):
        p = parse_instruction_text(
            "X_1 := sql.mvc();\n(X_2,X_3,X_4) := group.new(X_1);"
        )
        assert p.instructions[1].results == ["X_2", "X_3", "X_4"]

    def test_literals(self):
        p = parse_instruction_text(
            'X_1 := calc.add(1,2.5);\nX_2 := calc.ifthenelse(true,nil,"s");'
        )
        a = p.instructions[0].args
        assert a[0].value == 1 and a[1].value == 2.5
        b = p.instructions[1].args
        assert b[0].value is True and b[1].value is None and b[2].value == "s"

    def test_typed_literal(self):
        p = parse_instruction_text("X_1 := calc.lng(0:lng);")
        const = p.instructions[0].args[0]
        assert const.value == 0 and const.mal_type.name == "lng"

    def test_negative_number(self):
        p = parse_instruction_text("X_1 := calc.add(-3,-1.5);")
        assert p.instructions[0].args[0].value == -3

    def test_comments_ignored(self):
        p = parse_instruction_text("# nothing\nX_1 := sql.mvc(); # trailing\n")
        assert len(p) == 1

    def test_string_escapes(self):
        p = parse_instruction_text(r'X_1 := calc.str("a\"b");')
        assert p.instructions[0].args[0].value == 'a"b'


class TestParseErrors:
    def test_missing_end(self):
        with pytest.raises(MalParseError):
            parse_program("function user.x():void;\nX_1 := sql.mvc();")

    def test_missing_semicolon(self):
        with pytest.raises(MalParseError):
            parse_instruction_text("X_1 := sql.mvc()")

    def test_bad_character(self):
        with pytest.raises(MalParseError):
            parse_instruction_text("X_1 := sql.mvc(); @")

    def test_garbage_after_end(self):
        with pytest.raises(MalParseError):
            parse_program(
                "function user.x():void;\nend x;\nmore"
            )

    def test_error_carries_line_number(self):
        with pytest.raises(MalParseError, match="line 2"):
            parse_program("function user.x():void;\nX_1 := ;\nend x;")


class TestRoundTrip:
    def test_format_then_parse_preserves_structure(self):
        original = parse_program(SIMPLE)
        text = format_program(original)
        again = parse_program(text)
        assert len(again) == len(original)
        for a, b in zip(original, again):
            assert a.qualified_name == b.qualified_name
            assert a.results == b.results
            assert len(a.args) == len(b.args)

    def test_roundtrip_preserves_types(self):
        original = parse_program(SIMPLE)
        again = parse_program(format_program(original))
        assert str(again.type_of("X_10")) == ":bat[:oid,:int]"

    def test_print_contains_figure1_shapes(self):
        text = format_program(parse_program(SIMPLE))
        assert "function user.s1_1" in text
        assert 'sql.bind(X_2,"sys","lineitem","l_partkey",0)' in text
        assert text.rstrip().endswith("end s1_1;")
