"""Smoke tests: every shipped example must run end to end.

Each example is executed in-process (same interpreter, fresh module
namespace) with stdout captured, and its key output markers checked —
the cheapest guarantee that the README's "runnable examples" stay
runnable.
"""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    buffer = io.StringIO()
    cwd = os.getcwd()
    try:
        with redirect_stdout(buffer):
            runpy.run_path(path, run_name="__main__")
    finally:
        os.chdir(cwd)
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # quickstart writes an SVG to cwd
        out = run_example("quickstart.py")
        assert "MAL plan (Figure 1)" in out
        assert "sql.bind" in out
        assert "bird's-eye trace clustering" in out
        assert (tmp_path / "quickstart_display.svg").exists()

    def test_offline_tpch_analysis(self):
        out = run_example("offline_tpch_analysis.py")
        assert "thread utilisation" in out
        assert "costly clusters" in out
        assert "pruned view" in out
        assert "threshold=50usec" in out

    def test_online_monitoring(self):
        out = run_example("online_monitoring.py")
        assert "pipeline=default_pipe" in out
        assert "pipeline=sequential_pipe" in out
        assert "ANOMALY" in out  # the paper's reported finding

    def test_large_plan_navigation(self):
        out = run_example("large_plan_navigation.py")
        assert "synthetic plan: 1" in out  # >1000 instructions
        assert "bird's-eye" in out
        assert "fisheye magnification" in out

    def test_mal_debugger_session(self):
        out = run_example("mal_debugger_session.py")
        assert "EXPLAIN" in out and "TRACE" in out
        assert "breakpoint hit at pc=" in out
        assert "finished:" in out
