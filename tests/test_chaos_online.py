"""Chaos tests for the online monitor: out-of-order, duplicated and
lossy streams must converge to the in-order coloring, and the full
seeded sweep must satisfy the harness invariants."""

import random

import pytest

from repro.core.coloring import PairSequenceColorizer
from repro.core.online import (
    OnlineSession,
    analyze_stream,
    interpolate_pairs,
)
from repro.core.textual import TextualStethoscope
from repro.faults import FaultPlan, armed, disarm
from repro.profiler.events import TraceEvent
from repro.server import Database, MClient, Mserver
from repro.tpch import populate


@pytest.fixture(scope="module")
def database():
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=0.02, seed=3)
    return db


@pytest.fixture()
def server(database):
    with Mserver(database) as srv:
        yield srv


@pytest.fixture(autouse=True)
def always_disarm():
    yield
    disarm()


def recorded_trace(database, sql="select count(*) from lineitem "
                                 "where l_quantity > 10"):
    """A real in-order trace, captured through the profiler."""
    from repro.profiler import Profiler

    profiler = Profiler()
    database.execute(sql, listener=profiler)
    return list(profiler.events)


def final_coloring(events):
    """Each pc's final colour after a full stream + finish."""
    colorizer = PairSequenceColorizer()
    for event in events:
        colorizer.push(event)
    colorizer.finish()
    final = {}
    for action in colorizer.actions:
        final[action.pc] = action.color.to_hex()
    return final


class TestShuffledStreamsConverge:
    """Property-style: any seeded shuffle/duplication of a recorded
    trace must normalise back to the in-order coloring."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_shuffle_recovers_in_order_coloring(self, database, seed):
        events = recorded_trace(database)
        reference = final_coloring(events)
        rng = random.Random(seed)
        jumbled = list(events)
        rng.shuffle(jumbled)
        ordered, health = analyze_stream(jumbled)
        assert ordered == events
        assert health.gaps == 0 and health.duplicates == 0
        assert health.out_of_order > 0  # the shuffle was real
        assert final_coloring(ordered) == reference

    @pytest.mark.parametrize("seed", [10, 11, 12, 13])
    def test_duplication_recovers_in_order_coloring(self, database, seed):
        events = recorded_trace(database)
        reference = final_coloring(events)
        rng = random.Random(seed)
        noisy = list(events)
        for event in rng.sample(events, k=len(events) // 3):
            noisy.insert(rng.randrange(len(noisy) + 1), event)
        rng.shuffle(noisy)
        ordered, health = analyze_stream(noisy)
        assert ordered == events
        assert health.duplicates == len(events) // 3
        assert final_coloring(ordered) == reference

    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_lost_starts_interpolated(self, database, seed):
        events = recorded_trace(database)
        reference = final_coloring(events)
        rng = random.Random(seed)
        victims = {e.event for e in rng.sample(
            [e for e in events if e.status == "start"], k=3)}
        damaged = [e for e in events if e.event not in victims]
        ordered, health = analyze_stream(damaged)
        assert health.gaps == 3
        clean, added = interpolate_pairs(ordered)
        assert added == 3
        statuses = {}
        for event in clean:
            statuses.setdefault(event.pc, []).append(event.status)
        assert all("start" in s and "done" in s
                   for s in statuses.values())
        # interpolated starts sit at (or before) their done event
        for pc, seq in statuses.items():
            assert seq.index("start") < seq.index("done")
        # the repaired coloring matches the undamaged one
        assert final_coloring(clean) == reference

    def test_completeness_score_matches_loss(self):
        events = [TraceEvent(event=i, clock_usec=i * 10,
                             status="start" if i % 2 == 0 else "done",
                             pc=i // 2, thread=0, usec=5, rss_bytes=0,
                             stmt="algebra.select(X_1,1)")
                  for i in range(100)]
        kept = [e for e in events if e.event % 10 != 3]  # lose 10%
        _ordered, health = analyze_stream(kept)
        assert health.distinct == 90
        assert health.gaps == 10
        assert health.completeness == pytest.approx(0.9)
        assert health.degraded


class TestDegradedSession:
    def _run(self, server, tmp_path, timeout_s=15.0):
        textual = TextualStethoscope()
        connection = textual.connect("chaos")

        def run_query():
            with MClient(port=server.port, retries=2,
                         backoff_base_s=0.01, retry_seed=1) as client:
                client.set_profiler(port=connection.port)
                return client.query("select count(*) from lineitem "
                                    "where l_quantity > 10").rows

        session = OnlineSession(connection, run_query, str(tmp_path))
        try:
            return session.run(timeout_s=timeout_s, settle_s=0.3)
        finally:
            textual.close()

    def test_lost_end_marker_does_not_hang(self, server, tmp_path):
        import time

        from repro.metrics.families import ONLINE_DEGRADED

        before = ONLINE_DEGRADED.value()
        # drop only the end-of-stream marker: limit the drop rule to
        # fire exactly once, on the last datagram (the END), by giving
        # it probability 1 after a "latency" no-op... simplest reliable
        # recipe: drop everything after the trace, i.e. arm drop with
        # a generous rule limited to kind "end" is not expressible, so
        # drop @1.0 with limit=1 only kills the first line — instead
        # run with heavy drop so END statistically dies, and accept
        # either a clean or degraded finish, asserting only "no hang".
        plan = FaultPlan(seed=4).on("udp.emit", "drop", probability=0.35)
        began = time.monotonic()
        with armed(plan):
            result = self._run(server, tmp_path, timeout_s=15.0)
        elapsed = time.monotonic() - began
        assert elapsed < 10.0  # never waits out the full timeout
        assert result.health is not None
        if not result.health.ended:
            assert result.degraded
            assert ONLINE_DEGRADED.value() > before
        assert 0.0 <= result.health.completeness <= 1.0

    def test_degraded_coloring_matches_clean_run(self, server, tmp_path):
        clean = self._run(server, tmp_path)
        assert clean.health is not None and not clean.degraded
        reference = final_coloring(clean.events)
        plan = FaultPlan(seed=8).on("udp.emit", "reorder",
                                    probability=0.3)
        with armed(plan):
            chaotic = self._run(server, tmp_path)
        assert plan.journal  # reordering actually happened
        assert chaotic.health is not None
        # reordered-only streams lose nothing: full completeness...
        assert chaotic.health.completeness == 1.0
        # ...and the normalised stream converges to the clean coloring
        assert final_coloring(chaotic.clean_events) == reference
        if chaotic.painter is not None and clean.painter is not None:
            # when the dot shipment survived too, the repainted nodes
            # agree with the clean run's
            assert {n: c.to_hex()
                    for n, c in chaotic.painter.rendered.items()} == \
                {n: c.to_hex()
                 for n, c in clean.painter.rendered.items()}

    def test_degraded_false_still_raises(self, server, tmp_path):
        from repro.errors import StethoscopeError

        textual = TextualStethoscope()
        connection = textual.connect("strict")
        session = OnlineSession(connection, lambda: None, str(tmp_path))
        with pytest.raises(StethoscopeError):
            session.run(timeout_s=0.5, degraded_ok=False)
        textual.close()

    def test_degraded_true_swallows_silent_stream(self, tmp_path):
        textual = TextualStethoscope()
        connection = textual.connect("silent")
        session = OnlineSession(connection, lambda: None, str(tmp_path))
        result = session.run(timeout_s=5.0, settle_s=0.2)
        textual.close()
        assert result.health is not None
        assert not result.health.ended
        assert result.degraded
        assert result.events == []


class TestWorkerChaosCase:
    """The ``worker-chaos`` mix against a real pool-backed server."""

    @pytest.fixture(scope="class")
    def pooled_server(self):
        db = Database(workers=2, mitosis_threshold=50,
                      parallel_workers=2, parallel_min_rows=0)
        populate(db.catalog, scale_factor=0.02, seed=3)
        with Mserver(db) as srv:
            yield srv

    def test_crash_is_typed_and_pool_recovers(self, pooled_server):
        from repro.errors import WorkerCrashError
        from repro.faults.chaos import run_case

        # seed 0's first mpool.worker draw fires the crash rule
        case = run_case(pooled_server, seed=0, mix="worker-chaos")
        assert case.ok, case.violations
        assert case.outcome == "typed-error"
        assert WorkerCrashError.__name__ in case.error
        assert ("mpool.worker", "crash", "0") in case.journal
        pool = pooled_server.database.pool
        assert pool.alive == pool.workers

    def test_quiet_seed_returns_rows(self, pooled_server):
        from repro.faults.chaos import run_case

        # seed 1 draws no crash; stalls/latency may fire but only slow
        case = run_case(pooled_server, seed=1, mix="worker-chaos")
        assert case.ok, case.violations
        assert case.outcome == "rows"


class TestDurabilityChaosCase:
    """One durability-chaos case is self-contained: it builds its own
    WAL-backed database + server, crash-loops it, and needs no shared
    sweep server at all."""

    def test_single_case_crash_loops_and_recovers(self):
        from repro.faults.chaos import run_case

        case = run_case(None, seed=1, mix="durability-chaos")
        assert case.ok, case.violations
        assert case.fault_fires > 0
        assert 0.0 < case.completeness <= 1.0

    def test_replay_is_deterministic(self):
        from repro.faults.chaos import run_case

        first = run_case(None, seed=2, mix="durability-chaos")
        second = run_case(None, seed=2, mix="durability-chaos")
        assert first.ok and second.ok
        assert first.journal == second.journal


class TestAcceptanceSweep:
    """The acceptance criterion: >= 20 seeds x every mix (including the
    lifecycle mixes ``overload``/``slow-query`` and the pool mix
    ``worker-chaos``), zero hangs, typed errors only, replays
    byte-identical for the deterministic mixes."""

    def test_full_sweep(self, tmp_path):
        from repro.faults.chaos import MIXES, REPLAY_EXEMPT, run_sweep

        seeds = list(range(20))
        report = run_sweep(seeds, mixes=list(MIXES), scale=0.01,
                           workdir=str(tmp_path), wall_cap_s=20.0,
                           replay_sample=1)
        assert len(report.cases) == 20 * len(MIXES)
        assert report.ok, report.render()
        assert report.replay_checked == len(MIXES) - len(REPLAY_EXEMPT)
        assert report.replay_mismatches == 0
        for case in report.cases:
            assert case.wall_s < 20.0
            assert case.outcome in ("rows", "typed-error")
        # the harness genuinely interfered somewhere
        assert any(case.fault_fires for case in report.cases)
        assert any(case.completeness < 1.0 for case in report.cases
                   if case.mix == "drop10")
        # the lifecycle mixes exercised their invariants on every seed
        assert sum(1 for c in report.cases if c.mix == "overload") == 20
        assert all(c.outcome == "typed-error" for c in report.cases
                   if c.mix == "slow-query")
        # the pool mix ran on every seed; some seeds crashed a worker
        # (surfacing typed) and every case recovered for its next query
        worker_cases = [c for c in report.cases if c.mix == "worker-chaos"]
        assert len(worker_cases) == 20
        crashed = [c for c in worker_cases
                   if any(site == "mpool.worker" and action == "crash"
                          for site, action, _d in c.journal)]
        assert crashed and all(c.outcome == "typed-error" for c in crashed)
        # the durability mix crash-looped a private WAL-backed server on
        # every seed (byte-identity of recovery vs the acked prefix is a
        # violation, so report.ok above already enforces it); across the
        # sweep the persistence fault sites genuinely interfered
        durable_cases = [c for c in report.cases
                         if c.mix == "durability-chaos"]
        assert len(durable_cases) == 20
        assert any(site.startswith("persist.")
                   for c in durable_cases for site, _a, _d in c.journal)
        assert all(c.completeness > 0.0 for c in durable_cases)
