"""Shared fixtures: the server-test leak guard.

Server tests start real threads and sockets, and worker-pool tests fork
real child processes; a test that forgets to stop a server or close a
pool must fail loudly here rather than slowing every later test.  The
guard snapshots non-daemon threads, this process's open socket fds,
live multiprocessing children, and POSIX shared-memory/semaphore
segments before each guarded test and asserts all four return to
baseline afterwards, retrying briefly so orderly teardown has time to
finish.  Module-scoped pools are fine: pytest instantiates them before
the first test's snapshot and tears them down after the last one's.
"""

import multiprocessing
import os
import threading
import time

import pytest

#: Test modules whose tests touch server sockets/threads or fork
#: partition worker processes.
_GUARDED_MODULES = (
    "test_server",
    "test_server_lifecycle",
    "test_chaos_online",
    "test_broadcast",
    "test_mpool",
    "test_parallel_parity",
    "test_durability",
    "test_replication",
)


def _durable_fds() -> int:
    """Open WAL/checkpoint file descriptors (durable-storage leak check)."""
    count = 0
    try:
        fd_dir = "/proc/self/fd"
        for name in os.listdir(fd_dir):
            try:
                target = os.readlink(os.path.join(fd_dir, name))
            except OSError:
                continue
            base = os.path.basename(target)
            if base == "wal.log" or "/checkpoint-" in target:
                count += 1
    except OSError:
        pass
    return count


def _socket_fds() -> set:
    """Inode-ish identifiers of this process's open socket fds."""
    sockets = set()
    try:
        fd_dir = "/proc/self/fd"
        for name in os.listdir(fd_dir):
            try:
                target = os.readlink(os.path.join(fd_dir, name))
            except OSError:
                continue
            if target.startswith("socket:"):
                sockets.add(target)
    except OSError:
        pass  # no procfs (non-Linux); the thread check still applies
    return sockets


def _live_non_daemon() -> set:
    return {t for t in threading.enumerate()
            if t.is_alive() and not t.daemon}


def _child_pids() -> set:
    """PIDs of live multiprocessing children (also reaps finished ones)."""
    return {p.pid for p in multiprocessing.active_children()
            if p.is_alive()}


def _shm_segments() -> set:
    """POSIX shared-memory and named-semaphore segments of this boot."""
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith(("psm_", "sem."))}
    except OSError:
        return set()  # no /dev/shm (non-Linux); other checks still apply


@pytest.fixture(autouse=True)
def leak_guard(request):
    """Fail any guarded test that leaks threads, sockets, child
    processes, or shared-memory segments."""
    module = request.node.module.__name__.rsplit(".", 1)[-1]
    if module not in _GUARDED_MODULES:
        yield
        return
    threads_before = _live_non_daemon()
    # counts, not identities, for sockets and children: a worker pool
    # that (correctly) re-forks a crashed worker replaces its pipe fds
    # and child pid without growing either total
    sockets_before = len(_socket_fds())
    children_before = len(_child_pids())
    shm_before = _shm_segments()
    durable_before = _durable_fds()
    yield
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        leaked_threads = _live_non_daemon() - threads_before
        leaked_sockets = len(_socket_fds()) - sockets_before
        leaked_children = len(_child_pids()) - children_before
        leaked_shm = _shm_segments() - shm_before
        leaked_durable = _durable_fds() - durable_before
        if not leaked_threads and leaked_sockets <= 0 \
                and leaked_children <= 0 and not leaked_shm \
                and leaked_durable <= 0:
            return
        time.sleep(0.05)
    assert not leaked_threads, (
        f"leaked non-daemon threads: {[t.name for t in leaked_threads]}")
    assert leaked_sockets <= 0, (
        f"leaked {leaked_sockets} socket fd(s)")
    assert leaked_children <= 0, (
        f"leaked {leaked_children} child process(es): "
        f"{sorted(_child_pids())}")
    assert not leaked_shm, (
        f"leaked shared-memory segments: {sorted(leaked_shm)}")
    assert leaked_durable <= 0, (
        f"leaked {leaked_durable} WAL/checkpoint fd(s)")
