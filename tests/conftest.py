"""Shared fixtures: the server-test leak guard.

Server tests start real threads and sockets; a test that forgets to
stop a server (or a server that forgets to reap its handler threads)
must fail loudly here rather than slowing every later test.  The guard
snapshots non-daemon threads and this process's open socket fds before
each server test and asserts both return to baseline afterwards,
retrying briefly so orderly teardown has time to finish.
"""

import os
import threading
import time

import pytest

#: Test modules whose tests touch server sockets/threads.
_GUARDED_MODULES = (
    "test_server",
    "test_server_lifecycle",
    "test_chaos_online",
    "test_broadcast",
)


def _socket_fds() -> set:
    """Inode-ish identifiers of this process's open socket fds."""
    sockets = set()
    try:
        fd_dir = "/proc/self/fd"
        for name in os.listdir(fd_dir):
            try:
                target = os.readlink(os.path.join(fd_dir, name))
            except OSError:
                continue
            if target.startswith("socket:"):
                sockets.add(target)
    except OSError:
        pass  # no procfs (non-Linux); the thread check still applies
    return sockets


def _live_non_daemon() -> set:
    return {t for t in threading.enumerate()
            if t.is_alive() and not t.daemon}


@pytest.fixture(autouse=True)
def leak_guard(request):
    """Fail any server test that leaks threads or sockets."""
    module = request.node.module.__name__.rsplit(".", 1)[-1]
    if module not in _GUARDED_MODULES:
        yield
        return
    threads_before = _live_non_daemon()
    sockets_before = _socket_fds()
    yield
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        leaked_threads = _live_non_daemon() - threads_before
        leaked_sockets = _socket_fds() - sockets_before
        if not leaked_threads and not leaked_sockets:
            return
        time.sleep(0.05)
    assert not leaked_threads, (
        f"leaked non-daemon threads: {[t.name for t in leaked_threads]}")
    assert not leaked_sockets, (
        f"leaked {len(leaked_sockets)} socket fd(s)")
