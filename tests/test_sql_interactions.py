"""Interaction tests: HAVING×ORDER BY, ordered subqueries, DISTINCT over
joins — combinations where plan stages must compose correctly."""

import pytest

from repro.mal import Interpreter
from repro.sqlfe import compile_sql
from repro.storage import Catalog, INT, STR


@pytest.fixture
def catalog():
    cat = Catalog()
    sales = cat.schema().create_table(
        "sales", [("region", STR), ("amount", INT)]
    )
    sales.insert_many([
        ["north", 10], ["north", 30], ["south", 5], ["south", 7],
        ["east", 100], ["east", 1], ["west", 2],
    ])
    return cat


def run(catalog, sql):
    return Interpreter(catalog).run(compile_sql(catalog, sql)).rows()


class TestHavingOrderingInterplay:
    def test_having_then_order_by_aggregate(self, catalog):
        rows = run(
            catalog,
            "select region, sum(amount) as s from sales group by region "
            "having count(*) > 1 order by s desc",
        )
        assert rows == [("east", 101), ("north", 40), ("south", 12)]

    def test_having_then_order_by_position(self, catalog):
        rows = run(
            catalog,
            "select region, sum(amount) from sales group by region "
            "having sum(amount) > 11 order by 2",
        )
        assert rows == [("south", 12), ("north", 40), ("east", 101)]

    def test_having_then_order_by_key_not_in_output(self, catalog):
        rows = run(
            catalog,
            "select sum(amount) from sales group by region "
            "having count(*) > 1 order by region",
        )
        assert rows == [(101,), (40,), (12,)]

    def test_having_order_limit_offset(self, catalog):
        rows = run(
            catalog,
            "select region, sum(amount) as s from sales group by region "
            "having sum(amount) > 5 order by s desc limit 2 offset 1",
        )
        assert rows == [("north", 40), ("south", 12)]


class TestSubqueryComposition:
    def test_ordered_limited_subquery(self, catalog):
        # top-2 regions by total, then select their rows
        rows = run(
            catalog,
            "select region, amount from sales where region in "
            "(select region from sales group by region "
            " order by sum(amount) desc limit 2) "
            "order by region, amount",
        )
        assert rows == [
            ("east", 1), ("east", 100), ("north", 10), ("north", 30),
        ]

    def test_subquery_with_distinct(self, catalog):
        rows = run(
            catalog,
            "select count(*) from sales where region in "
            "(select distinct region from sales where amount > 9)",
        )
        assert rows == [(4,)]  # north(2) + east(2)

    def test_nested_scalar_inside_in_subquery(self, catalog):
        # regions whose total beats the global mean amount
        rows = run(
            catalog,
            "select region from sales where region in "
            "(select region from sales group by region "
            " having sum(amount) > (select avg(amount) from sales)) "
            "group by region order by region",
        )
        # mean amount = 155/7 ~ 22.1; totals: east=101, north=40,
        # south=12, west=2
        assert rows == [("east",), ("north",)]


class TestDistinctOverJoin:
    def test_distinct_join_output(self, catalog):
        cat = catalog
        regions = cat.schema().create_table(
            "regions", [("name", STR), ("zone", STR)]
        )
        regions.insert_many([
            ["north", "cold"], ["south", "hot"], ["east", "hot"],
            ["west", "cold"],
        ])
        rows = run(
            cat,
            "select distinct zone from sales, regions "
            "where region = name order by zone",
        )
        assert rows == [("cold",), ("hot",)]

    def test_order_by_expression_of_output(self, catalog):
        rows = run(
            catalog,
            "select region, sum(amount) as s from sales group by region "
            "order by sum(amount) * -1",
        )
        assert [r[0] for r in rows] == ["east", "north", "south", "west"]
