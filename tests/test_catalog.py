"""Unit tests for the relational catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage import Catalog, INT, STR


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.schema().create_table("emp", [("id", INT), ("name", STR)])
    return cat


class TestSchemas:
    def test_default_schema_exists(self):
        assert Catalog().schema().name == "sys"

    def test_create_duplicate_schema_raises(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.create_schema("SYS".lower())

    def test_unknown_schema_raises(self):
        with pytest.raises(CatalogError):
            Catalog().schema("nope")


class TestTables:
    def test_create_and_lookup_case_insensitive(self, catalog):
        assert catalog.table("EMP").name == "emp"

    def test_duplicate_table_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.schema().create_table("emp", [("x", INT)])

    def test_empty_columns_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.schema().create_table("t", [])

    def test_duplicate_column_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.schema().create_table("t", [("a", INT), ("A", INT)])

    def test_drop_table(self, catalog):
        catalog.schema().drop_table("emp")
        with pytest.raises(CatalogError):
            catalog.table("emp")

    def test_drop_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.schema().drop_table("ghost")


class TestRows:
    def test_insert_and_rows(self, catalog):
        t = catalog.table("emp")
        t.insert([1, "ann"])
        t.insert([2, "bob"])
        assert list(t.rows()) == [(1, "ann"), (2, "bob")]
        assert t.row_count() == 2

    def test_insert_casts(self, catalog):
        t = catalog.table("emp")
        t.insert(["3", 42])
        assert list(t.rows()) == [(3, "42")]

    def test_arity_mismatch_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("emp").insert([1])

    def test_insert_many_returns_count(self, catalog):
        n = catalog.table("emp").insert_many([[1, "a"], [2, "b"], [3, "c"]])
        assert n == 3

    def test_column_names_in_order(self, catalog):
        assert catalog.table("emp").column_names() == ["id", "name"]

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("emp").column("salary")


class TestBind:
    def test_bind_returns_backing_bat(self, catalog):
        catalog.table("emp").insert([1, "ann"])
        bat = catalog.bind("sys", "emp", "name")
        assert bat.tail == ["ann"]
        assert bat.is_void_head

    def test_bind_is_live(self, catalog):
        bat = catalog.bind("sys", "emp", "id")
        catalog.table("emp").insert([9, "zed"])
        assert bat.tail == [9]


class TestSqlTypes:
    def test_create_from_sql_types(self):
        cat = Catalog()
        t = cat.create_table_from_sql_types(
            "x", [("a", "INTEGER"), ("b", "VARCHAR(25)"), ("c", "DECIMAL(15,2)"),
                  ("d", "DATE"), ("e", "BIGINT")]
        )
        names = [c.mal_type.name for c in t.columns.values()]
        assert names == ["int", "str", "dbl", "date", "lng"]

    def test_unknown_sql_type_raises(self):
        with pytest.raises(CatalogError):
            Catalog().create_table_from_sql_types("x", [("a", "GEOMETRY")])
