"""Tests for the TPC-H substrate: schema, datagen determinism, and that
every query in the set compiles and executes under every pipeline."""

import pytest

from repro.mal import Interpreter
from repro.mal.dataflow import SimulatedScheduler
from repro.mal.optimizer import default_pipe, sequential_pipe
from repro.sqlfe import compile_sql
from repro.storage import Catalog
from repro.tpch import QUERIES, create_tpch_schema, populate, query_sql


@pytest.fixture(scope="module")
def tpch_catalog():
    cat = Catalog()
    populate(cat, scale_factor=0.05, seed=7)
    return cat


class TestSchema:
    def test_all_tables_created(self):
        cat = Catalog()
        create_tpch_schema(cat)
        for table in ("region", "nation", "supplier", "customer", "part",
                      "partsupp", "orders", "lineitem"):
            assert cat.table(table) is not None

    def test_lineitem_has_16_columns(self):
        cat = Catalog()
        create_tpch_schema(cat)
        assert len(cat.table("lineitem").column_names()) == 16


class TestDatagen:
    def test_counts_scale(self):
        cat = Catalog()
        counts = populate(cat, scale_factor=0.05, seed=7)
        assert counts["lineitem"] == pytest.approx(300, abs=5)
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_deterministic(self):
        a, b = Catalog(), Catalog()
        populate(a, scale_factor=0.02, seed=42)
        populate(b, scale_factor=0.02, seed=42)
        for table in ("orders", "lineitem", "customer"):
            assert list(a.table(table).rows()) == list(b.table(table).rows())

    def test_seed_changes_data(self):
        a, b = Catalog(), Catalog()
        populate(a, scale_factor=0.02, seed=1)
        populate(b, scale_factor=0.02, seed=2)
        assert list(a.table("lineitem").rows()) != list(b.table("lineitem").rows())

    def test_foreign_keys_resolve(self, tpch_catalog):
        customers = {
            r[0] for r in tpch_catalog.table("customer").rows()
        }
        for row in tpch_catalog.table("orders").rows():
            assert row[1] in customers

    def test_totalprice_patched_from_lineitems(self, tpch_catalog):
        totals = tpch_catalog.table("orders").column("o_totalprice").bat.tail
        assert any(t > 0 for t in totals)

    def test_returnflag_distribution(self, tpch_catalog):
        flags = set(
            tpch_catalog.table("lineitem").column("l_returnflag").bat.tail
        )
        assert flags <= {"R", "A", "N"}
        assert "N" in flags


class TestQueries:
    def test_query_sql_lookup(self):
        assert "l_tax" in query_sql("demo")
        with pytest.raises(Exception):
            query_sql("q99")

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_compiles_and_runs(self, tpch_catalog, name):
        program = compile_sql(tpch_catalog, query_sql(name))
        result = Interpreter(tpch_catalog).run(program)
        assert result.first is not None

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_pipelines_agree(self, tpch_catalog, name):
        sql = query_sql(name)
        base = Interpreter(tpch_catalog).run(
            compile_sql(tpch_catalog, sql)
        ).rows()
        seq = sequential_pipe().apply(compile_sql(tpch_catalog, sql))
        assert Interpreter(tpch_catalog).run(seq).rows() == base
        par = default_pipe(nparts=4, mitosis_threshold=50).apply(
            compile_sql(tpch_catalog, sql)
        )
        assert SimulatedScheduler(tpch_catalog, workers=4).run(par).rows() == base

    def test_q1_groups_by_flag_status(self, tpch_catalog):
        result = Interpreter(tpch_catalog).run(
            compile_sql(tpch_catalog, query_sql("q1"))
        )
        rows = result.rows()
        keys = [(r[0], r[1]) for r in rows]
        assert keys == sorted(keys)
        assert all(len(r) == 10 for r in rows)

    def test_q6_single_value(self, tpch_catalog):
        rows = Interpreter(tpch_catalog).run(
            compile_sql(tpch_catalog, query_sql("q6"))
        ).rows()
        assert len(rows) == 1

    def test_q3_limit_respected(self, tpch_catalog):
        rows = Interpreter(tpch_catalog).run(
            compile_sql(tpch_catalog, query_sql("q3"))
        ).rows()
        assert len(rows) <= 10
        revenues = [r[1] for r in rows]
        assert revenues == sorted(revenues, reverse=True)
