"""Query lifecycle supervision: ids, cancellation, deadlines, budgets,
admission control and graceful drain (ISSUE 3's tentpole)."""

import threading
import time

import pytest

from repro.errors import (
    QueryBudgetError,
    QueryCancelledError,
    QueryDeadlineError,
    ReproError,
    ServerError,
    ServerOverloadedError,
)
from repro.faults import FaultPlan, armed, disarm
from repro.server import Database, MClient, Mserver
from repro.tpch import populate

SQL = "select count(*) from lineitem where l_quantity > 10"

#: Heavy worker stalls: 8e8 * realtime_scale(1e-4) / 1e6 = 0.08s real
#: per fire, up to 40 fires — a threaded plan that runs for seconds.
SLOW_SPEC = "scheduler.worker:stall=800000000@0.9#40"


@pytest.fixture(scope="module")
def database():
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=0.02, seed=3)
    return db


@pytest.fixture()
def server(database):
    with Mserver(database) as srv:
        yield srv


@pytest.fixture(autouse=True)
def always_disarm():
    yield
    disarm()


def start_slow_query(server, outcome, seed=7, **query_kwargs):
    """A background client running one stalled threaded query.

    Appends ``("rows", rows)`` or ``("error", exc)`` to ``outcome``.
    Call inside an ``armed(slow_plan())`` block.
    """

    def runner():
        client = MClient(port=server.port, retries=0)
        try:
            client.set_scheduler("threaded")
            outcome.append(("rows", client.query(SQL, **query_kwargs).rows))
        except ReproError as exc:
            outcome.append(("error", exc))
        finally:
            try:
                client.close()
            except ReproError:
                pass

    thread = threading.Thread(target=runner)
    thread.start()
    return thread


def wait_for_running(client, timeout_s=5.0):
    """Poll the ``queries`` op until a query reports state=running."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        running = [q for q in client.queries()["queries"]
                   if q["state"] == "running"]
        if running:
            return running[0]["query_id"]
        time.sleep(0.01)
    raise AssertionError("no query reached the running state")


class TestQueryIds:
    def test_query_returns_server_assigned_id(self, server):
        with MClient(port=server.port) as client:
            first = client.query(SQL)
            second = client.query(SQL)
        assert first.query_id.startswith("q")
        assert second.query_id != first.query_id

    def test_queries_op_lists_recent(self, server):
        with MClient(port=server.port) as client:
            done = client.query(SQL).query_id
            listing = client.queries()
        assert listing["queries"] == []  # nothing running now
        recent_ids = [entry["query_id"] for entry in listing["recent"]]
        assert done in recent_ids
        entry = listing["recent"][recent_ids.index(done)]
        assert entry["state"] == "done"
        assert entry["sql"] == SQL

    def test_cancel_unknown_id_reports_not_running(self, server):
        with MClient(port=server.port) as client:
            assert client.cancel("q999999") is False


class TestCancellation:
    def test_cancel_mid_flight_from_second_client(self, server):
        """The acceptance criterion: a cancel issued from another
        connection terminates a running threaded plan within an
        instruction boundary, surfacing a typed error with the id."""
        outcome = []
        with armed(FaultPlan.from_spec(SLOW_SPEC, seed=7)):
            worker = start_slow_query(server, outcome)
            with MClient(port=server.port) as control:
                query_id = wait_for_running(control)
                assert control.cancel(query_id) is True
                worker.join(timeout=10.0)
                assert not worker.is_alive(), "cancel did not stop the plan"
                # the same server keeps answering on other connections
                assert control.query(SQL).rows
        kind, payload = outcome[0]
        assert kind == "error"
        assert isinstance(payload, QueryCancelledError)
        assert not isinstance(payload, QueryDeadlineError)
        assert payload.query_id == query_id

    def test_server_deadline_cancels_and_records(self, server):
        from repro.metrics.families import SERVER_QUERY_DEADLINE_EXCEEDED

        before = SERVER_QUERY_DEADLINE_EXCEEDED.value()
        with armed(FaultPlan.from_spec(SLOW_SPEC, seed=5)):
            with MClient(port=server.port, retries=0) as client:
                client.set_scheduler("threaded")
                with pytest.raises(QueryDeadlineError) as err:
                    client.query(SQL, server_deadline_s=0.2)
                assert err.value.query_id
                # the kill is on the operator's record
                recent = client.queries()["recent"]
                killed = [e for e in recent
                          if e["query_id"] == err.value.query_id]
                assert killed and killed[0]["state"] == "cancelled"
                assert "deadline" in killed[0]["cancel_reason"]
        assert SERVER_QUERY_DEADLINE_EXCEEDED.value() > before

    def test_rss_budget_cancels_with_typed_error(self, server):
        with MClient(port=server.port, retries=0) as client:
            with pytest.raises(QueryBudgetError) as err:
                client.query(SQL, max_rss_bytes=10)
            assert err.value.query_id

    def test_explain_and_stats_stay_responsive(self, server):
        """Metadata ops bypass admission: they answer while the only
        execution slot is held by a long-running query."""
        server.admission.configure(max_concurrent=1)
        outcome = []
        try:
            with armed(FaultPlan.from_spec(SLOW_SPEC, seed=9)):
                worker = start_slow_query(server, outcome)
                with MClient(port=server.port) as control:
                    query_id = wait_for_running(control)
                    began = time.monotonic()
                    assert "function user." in control.explain(SQL)
                    assert control.stats()
                    assert time.monotonic() - began < 2.0
                    control.cancel(query_id)
                worker.join(timeout=10.0)
        finally:
            server.admission.configure(max_concurrent=4)
        assert outcome and outcome[0][0] == "error"


class TestAdmissionControl:
    def test_queue_full_sheds_typed_error(self, server):
        from repro.metrics.families import SERVER_QUERIES_SHED

        shed = SERVER_QUERIES_SHED.labels(reason="queue-full")
        before = shed.value()
        server.admission.configure(max_concurrent=1, max_queue=0,
                                   queue_wait_s=0.2)
        outcome = []
        try:
            with armed(FaultPlan.from_spec(SLOW_SPEC, seed=11)):
                worker = start_slow_query(server, outcome)
                with MClient(port=server.port, retries=0) as client:
                    query_id = wait_for_running(client)
                    with pytest.raises(ServerOverloadedError):
                        client.query(SQL)
                    client.cancel(query_id)
                worker.join(timeout=10.0)
        finally:
            server.admission.configure(max_concurrent=4, max_queue=16,
                                       queue_wait_s=5.0)
        assert shed.value() > before

    def test_overload_retry_recovers(self, server):
        """A shed query never ran, so the client's overload-aware retry
        re-sends it after backoff and wins once the slot frees."""
        from repro.metrics.families import CLIENT_RETRIES

        retried = CLIENT_RETRIES.labels(op="query")
        before = retried.value()
        server.admission.configure(max_concurrent=1, max_queue=0,
                                   queue_wait_s=0.1)
        outcome = []
        try:
            # moderate stall: the slot frees in well under the retry
            # budget (4 attempts x up to 0.8s backoff)
            with armed(FaultPlan.from_spec(
                    "scheduler.worker:stall=400000000@0.9#10", seed=13)):
                worker = start_slow_query(server, outcome)
                with MClient(port=server.port, retries=4,
                             backoff_base_s=0.2, backoff_max_s=0.8,
                             retry_seed=1) as client:
                    wait_for_running(client)
                    assert client.query(SQL).rows  # succeeds via retry
                worker.join(timeout=10.0)
        finally:
            server.admission.configure(max_concurrent=4, max_queue=16,
                                       queue_wait_s=5.0)
        assert retried.value() > before
        assert outcome and outcome[0][0] == "rows"

    def test_writes_still_serialized(self, server):
        """DDL admits exclusively — concurrent create/drop pairs on the
        same table never interleave into an inconsistent catalog."""
        with MClient(port=server.port) as client:
            client.query("create table lifecycle_probe (x int)")
            client.query("insert into lifecycle_probe values (1)")
            rows = client.query("select x from lifecycle_probe").rows
            client.query("drop table lifecycle_probe")
        assert rows == [(1,)]


class TestGracefulDrain:
    def test_drain_cancels_slow_query_and_reaps_threads(self, database):
        from repro.metrics.families import SERVER_DRAINS

        forced_before = SERVER_DRAINS.labels(outcome="forced").value()
        server = Mserver(database, drain_seconds=0.3).start()
        outcome = []
        with armed(FaultPlan.from_spec(SLOW_SPEC, seed=15)):
            worker = start_slow_query(server, outcome)
            with MClient(port=server.port) as control:
                wait_for_running(control)
            began = time.monotonic()
            server.stop()
            stop_took = time.monotonic() - began
            worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert stop_took < 5.0
        # the straggler was cancelled, not abandoned: it surfaced a
        # typed error (or lost its connection to the closing server)
        kind, payload = outcome[0]
        assert kind == "error"
        assert isinstance(payload, ReproError)
        assert SERVER_DRAINS.labels(outcome="forced").value() > \
            forced_before
        # the leak-guard fixture asserts no threads/sockets remain

    def test_clean_drain_counts_clean(self, database):
        from repro.metrics.families import SERVER_DRAINS

        clean_before = SERVER_DRAINS.labels(outcome="clean").value()
        server = Mserver(database).start()
        with MClient(port=server.port) as client:
            assert client.query(SQL).rows
        server.stop()
        assert SERVER_DRAINS.labels(outcome="clean").value() > \
            clean_before

    def test_stopped_server_sheds_new_queries(self, database):
        server = Mserver(database).start()
        server.admission.begin_drain()
        try:
            with MClient(port=server.port, retries=0) as client:
                with pytest.raises(ServerOverloadedError):
                    client.query(SQL)
        finally:
            server.admission.end_drain()
            server.stop()


class TestPerSessionSettings:
    def test_set_does_not_mutate_shared_database(self, server, database):
        with MClient(port=server.port) as client:
            client.set_pipeline("sequential_pipe")
            client.set_workers(1)
            client.set_scheduler("threaded")
            assert client.query(SQL).rows
        assert database.pipeline_name == "default_pipe"
        assert database.workers == 2
        assert database.scheduler == "simulated"

    def test_sessions_are_isolated(self, server):
        with MClient(port=server.port) as one, \
                MClient(port=server.port) as two:
            one.set_pipeline("minimal_pipe")
            # the other session still optimizes with the default pipe:
            # its plan keeps the dataflow structure
            assert "language.dataflow" in two.explain(SQL)
            assert "language.dataflow" not in one.explain(SQL)

    def test_bad_settings_raise_typed_errors(self, server):
        with MClient(port=server.port) as client:
            with pytest.raises(ServerError):
                client.set_pipeline("no_such_pipe")
            with pytest.raises(ServerError):
                client.set_scheduler("quantum")
            with pytest.raises(ServerError):
                client.set_workers(0)
