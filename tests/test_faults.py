"""The deterministic fault-injection harness: plans, sites, hardened
client, and the protocol framing edge cases it exposed."""

import json
import socket
import threading
import time

import pytest

from repro.errors import (
    ConnectionFailedError,
    FaultSpecError,
    RequestTimeoutError,
    ServerError,
    WorkerCrashError,
)
from repro.faults import ACTIVE, FaultPlan, arm, armed, disarm
from repro.faults.plan import SITES
from repro.mal.dataflow import SimulatedScheduler, ThreadedScheduler
from repro.profiler.stream import (
    END_MARKER,
    LineFaultPipe,
    UdpEmitter,
    UdpReceiver,
    apply_line_faults,
)
from repro.server import Database, MClient, Mserver
from repro.tpch import populate


@pytest.fixture(scope="module")
def database():
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=0.02, seed=3)
    return db


@pytest.fixture()
def server(database):
    with Mserver(database) as srv:
        yield srv


@pytest.fixture(autouse=True)
def always_disarm():
    yield
    disarm()


class TestFaultPlanSpec:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "udp.emit:drop@0.1;server.loop:latency=25@0.3;"
            "scheduler.worker:crash#1", seed=9)
        assert plan.seed == 9
        assert "udp.emit:drop@0.1" in plan.signature()
        assert "server.loop:latency=25@0.3" in plan.signature()
        assert "scheduler.worker:crash#1" in plan.signature()

    def test_config_round_trip(self):
        plan = FaultPlan.from_config({
            "seed": 4,
            "sites": {"udp.emit": [{"action": "dup", "p": 0.5},
                                   {"action": "truncate", "value": 10}]},
        })
        assert plan.seed == 4
        assert "udp.emit:dup@0.5" in plan.signature()

    @pytest.mark.parametrize("spec", [
        "",
        "noclause",
        "bogus.site:drop",
        "udp.emit:reset",          # action of a different site
        "udp.emit:drop@1.5",       # probability out of range
        "udp.emit:drop@abc",
        "udp.emit:drop#x",
        "server.loop:latency=ms",
    ])
    def test_bad_specs_raise_typed(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(spec)

    def test_bad_config_raises_typed(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_config({"sites": {"udp.emit": [{}]}})
        with pytest.raises(FaultSpecError):
            FaultPlan.from_config({"nope": 1})

    def test_every_site_action_pair_accepted(self):
        for site, actions in SITES.items():
            for action in actions:
                FaultPlan.from_spec(f"{site}:{action}")


class TestFaultPlanDecisions:
    def test_same_seed_same_journal(self):
        def drive(plan):
            for i in range(200):
                plan.decide("udp.emit", detail=str(i))
                plan.decide("server.loop", detail="query")
            return list(plan.journal)

        spec = "udp.emit:drop@0.2;udp.emit:dup@0.2;server.loop:reset@0.1"
        a = drive(FaultPlan.from_spec(spec, seed=42))
        b = drive(FaultPlan.from_spec(spec, seed=42))
        assert a == b
        assert a  # something actually fired
        c = drive(FaultPlan.from_spec(spec, seed=43))
        assert c != a  # a different seed decides differently

    def test_sites_draw_independently(self):
        # consuming one site's PRNG must not shift another's decisions
        spec = "udp.emit:drop@0.5;server.loop:reset@0.5"
        lonely = FaultPlan.from_spec(spec, seed=5)
        crowded = FaultPlan.from_spec(spec, seed=5)
        for _ in range(50):
            crowded.decide("server.loop")
        udp = [bool(lonely.decide("udp.emit")) for _ in range(50)]
        udp2 = [bool(crowded.decide("udp.emit")) for _ in range(50)]
        assert udp == udp2

    def test_limit_caps_fires(self):
        plan = FaultPlan.from_spec("udp.emit:drop@1.0#3", seed=1)
        fired = sum(1 for _ in range(10) if plan.decide("udp.emit"))
        assert fired == 3
        assert plan.fires("udp.emit", "drop") == 3

    def test_unruled_site_returns_none(self):
        plan = FaultPlan.from_spec("udp.emit:drop@1.0", seed=1)
        assert plan.decide("server.loop") is None

    def test_metrics_counted(self):
        from repro.metrics.families import FAULT_INJECTIONS

        child = FAULT_INJECTIONS.labels(site="udp.emit", action="drop")
        before = child.value()
        plan = FaultPlan.from_spec("udp.emit:drop@1.0", seed=1)
        plan.decide("udp.emit")
        assert child.value() == before + 1

    def test_describe_mentions_fires(self):
        plan = FaultPlan.from_spec("udp.emit:drop@1.0", seed=1)
        plan.decide("udp.emit")
        assert "fired=1" in plan.describe()


class TestArming:
    def test_armed_context_restores(self):
        plan = FaultPlan(seed=1).on("udp.emit", "drop")
        assert ACTIVE.plan is None
        with armed(plan):
            assert ACTIVE.plan is plan
        assert ACTIVE.plan is None

    def test_arm_disarm(self):
        plan = arm(FaultPlan(seed=1))
        assert ACTIVE.plan is plan
        disarm()
        assert ACTIVE.plan is None


class TestLineFaultPipe:
    def test_drop(self):
        plan = FaultPlan(seed=1).on("udp.emit", "drop")
        assert apply_line_faults(plan, ["a", "b"]) == []

    def test_dup(self):
        plan = FaultPlan(seed=1).on("udp.emit", "dup")
        assert apply_line_faults(plan, ["a"]) == ["a", "a"]

    def test_truncate(self):
        plan = FaultPlan(seed=1).on("udp.emit", "truncate", value=3)
        assert apply_line_faults(plan, ["abcdef"]) == ["abc"]

    def test_reorder_swaps_neighbours(self):
        plan = FaultPlan(seed=1).on("udp.emit", "reorder",
                                    probability=1.0, limit=1)
        assert apply_line_faults(plan, ["a", "b", "c"]) == ["b", "a", "c"]

    def test_reorder_tail_flushed(self):
        plan = FaultPlan(seed=1).on("udp.emit", "reorder")
        pipe = LineFaultPipe()
        assert pipe.feed(plan, "only") == []
        assert pipe.flush() == [("only", "event")]
        assert pipe.flush() == []

    def test_replay_is_byte_identical(self):
        lines = [f"line-{i}" for i in range(300)]
        spec = ("udp.emit:drop@0.15;udp.emit:dup@0.15;"
                "udp.emit:reorder@0.15;udp.emit:truncate=5@0.15")
        one = apply_line_faults(FaultPlan.from_spec(spec, seed=7), lines)
        two = apply_line_faults(FaultPlan.from_spec(spec, seed=7), lines)
        assert one == two
        assert one != lines

    def test_kind_classified_before_truncation(self):
        # a truncated #dot line must still count as a dot line
        plan = FaultPlan(seed=1).on("udp.emit", "truncate", value=2)
        pipe = LineFaultPipe()
        sent = pipe.feed(plan, "#dot\tnode [shape=box];")
        assert sent == [("#d", "dot")]


class TestArmedEmitter:
    def test_drop_all_means_silence(self):
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            with armed(FaultPlan(seed=1).on("udp.emit", "drop")):
                for i in range(5):
                    emitter.send_line(f"x{i}")
            emitter.close()
            time.sleep(0.2)
            assert receiver.try_line(timeout=0.1) is None

    def test_disarmed_emitter_passes_through(self):
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            emitter.send_line("hello")
            emitter.send_end()
            emitter.close()
            got = list(receiver.lines(timeout=1.0))
            assert got == ["hello"]

    def test_send_end_flushes_reordered_tail(self):
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            with armed(FaultPlan(seed=1).on("udp.emit", "reorder",
                                            limit=1)):
                emitter.send_line("held")
                emitter.send_end()
            emitter.close()
            got = list(receiver.lines(timeout=1.0))
            assert got == ["held"]


class TestReceiverWallClockCap:
    def test_steady_stream_without_end_terminates(self):
        # satellite: a lost END must not keep iteration alive forever
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            stop = threading.Event()

            def pump():
                while not stop.is_set():
                    emitter.send_line("steady")
                    time.sleep(0.01)

            thread = threading.Thread(target=pump, daemon=True)
            thread.start()
            began = time.monotonic()
            drained = sum(1 for _ in receiver.lines(timeout=5.0,
                                                    max_seconds=0.4))
            elapsed = time.monotonic() - began
            stop.set()
            thread.join(timeout=1.0)
            emitter.close()
            assert drained > 0
            assert elapsed < 2.0  # far below the 5 s gap timeout

    def test_end_marker_still_terminates_early(self):
        with UdpReceiver() as receiver:
            emitter = UdpEmitter(port=receiver.port)
            emitter.send_line("a")
            emitter.send_end()
            emitter.close()
            assert list(receiver.lines(timeout=1.0,
                                       max_seconds=10.0)) == ["a"]


class TestHardenedClient:
    def test_dead_port_raises_typed_with_address(self):
        # grab a port that is definitely closed
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionFailedError) as info:
            MClient(port=port, timeout=0.5)
        assert f"127.0.0.1:{port}" in str(info.value)

    def test_handshake_failure_closes_socket(self):
        # a server that accepts and immediately closes fails the
        # handshake; the client must tear its socket down and raise
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def slam():
            conn, _ = listener.accept()
            conn.close()

        thread = threading.Thread(target=slam, daemon=True)
        thread.start()
        with pytest.raises(ConnectionFailedError):
            MClient(port=port, timeout=1.0, retries=0, handshake=True)
        thread.join(timeout=2.0)
        listener.close()

    def test_retry_through_reset(self, server):
        from repro.metrics.families import CLIENT_RETRIES

        child = CLIENT_RETRIES.labels(op="query")
        before = child.value()
        with armed(FaultPlan(seed=3).on("server.loop", "reset",
                                        probability=1.0, limit=1)):
            with MClient(port=server.port, retries=2,
                         backoff_base_s=0.01, retry_seed=0) as client:
                rows = client.query("select count(*) from region").rows
        assert rows[0][0] > 0
        assert child.value() > before

    def test_reset_exhausts_into_typed_error(self, server):
        with armed(FaultPlan(seed=3).on("server.loop", "reset")):
            client = MClient(port=server.port, retries=1,
                             backoff_base_s=0.01, retry_seed=0)
            with pytest.raises(ServerError):
                client.query("select count(*) from region")
            disarm()
            client.close()

    def test_latency_fault_trips_deadline(self, server):
        with armed(FaultPlan(seed=3).on("server.loop", "latency",
                                        value=500.0)):
            client = MClient(port=server.port, retries=0,
                             timeout=5.0, retry_seed=0)
            with pytest.raises(RequestTimeoutError):
                client.query("select count(*) from region",
                             deadline_s=0.15)
            disarm()
            client.close()

    def test_non_select_not_retried(self, server):
        with armed(FaultPlan(seed=3).on("server.loop", "reset",
                                        probability=1.0, limit=1)):
            client = MClient(port=server.port, retries=3,
                             backoff_base_s=0.01, retry_seed=0)
            with pytest.raises(ServerError):
                client.query("create table chaos_t (x integer)")
            disarm()
            client.close()

    def test_session_state_replayed_after_reset(self, server):
        with UdpReceiver() as receiver:
            plan = FaultPlan(seed=3).on("server.loop", "reset",
                                        probability=1.0, limit=1)
            with armed(plan):
                with MClient(port=server.port, retries=2,
                             backoff_base_s=0.01, retry_seed=0) as client:
                    client.set_profiler(port=receiver.port)
                    # the reset kills this query's connection; the
                    # retry must re-establish the profiler target
                    client.query("select count(*) from region")
            lines = list(receiver.lines(timeout=1.0))
            assert lines  # the re-established stream reached us


class TestSchedulerFaults:
    def _program(self, database):
        return database.compile("select count(*) from lineitem "
                                "where l_quantity > 10")

    def test_simulated_crash_raises_typed(self, database):
        program = self._program(database)
        with armed(FaultPlan(seed=1).on("scheduler.worker", "crash",
                                        limit=1)):
            with pytest.raises(WorkerCrashError):
                SimulatedScheduler(database.catalog, workers=2).run(
                    program)

    def test_simulated_stall_shifts_schedule_deterministically(
            self, database):
        program = self._program(database)
        baseline = SimulatedScheduler(database.catalog, workers=2).run(
            program)
        spec = "scheduler.worker:stall=700@0.3"
        with armed(FaultPlan.from_spec(spec, seed=5)):
            stalled_a = SimulatedScheduler(database.catalog,
                                           workers=2).run(program)
        with armed(FaultPlan.from_spec(spec, seed=5)):
            stalled_b = SimulatedScheduler(database.catalog,
                                           workers=2).run(program)
        assert stalled_a.total_usec > baseline.total_usec
        assert [(r.pc, r.start_usec, r.thread) for r in stalled_a.runs] \
            == [(r.pc, r.start_usec, r.thread) for r in stalled_b.runs]

    def test_threaded_crash_raises_typed(self, database):
        program = self._program(database)
        with armed(FaultPlan(seed=1).on("scheduler.worker", "crash",
                                        limit=1)):
            with pytest.raises(WorkerCrashError):
                ThreadedScheduler(database.catalog, workers=2,
                                  realtime_scale=1e-4).run(program)

    def test_crash_through_server_is_typed_not_fatal(self, server):
        with armed(FaultPlan(seed=1).on("scheduler.worker", "crash",
                                        limit=1)):
            client = MClient(port=server.port, retries=0)
            # the worker-crash wire code reconstructs the precise type
            with pytest.raises(WorkerCrashError) as info:
                client.query("select count(*) from lineitem "
                             "where l_quantity > 10")
            assert "injected crash" in str(info.value)
            disarm()
            # the server survives the crashed query
            assert client.ping()
            client.close()


class TestProtocolFraming:
    def _raw(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=5.0)
        return sock

    def _response(self, sock):
        buffered = b""
        while b"\n" not in buffered:
            chunk = sock.recv(65536)
            if not chunk:
                return None
            buffered += chunk
        return json.loads(buffered.split(b"\n", 1)[0])

    def test_zero_length_lines_skipped(self, server):
        sock = self._raw(server)
        sock.sendall(b"\n\n  \n" + b'{"op":"ping"}\n')
        response = self._response(sock)
        assert response["ok"] and response["pong"]
        sock.close()

    def test_truncated_json_line_survivable(self, server):
        sock = self._raw(server)
        sock.sendall(b'{"op":"pi\n')  # header cut mid-token
        response = self._response(sock)
        assert response["ok"] is False
        assert "bad protocol line" in response["error"]
        sock.sendall(b'{"op":"ping"}\n')
        assert self._response(sock)["ok"]
        sock.close()

    def test_oversized_request_rejected(self, server):
        from repro.server.protocol import MAX_MESSAGE_BYTES

        sock = self._raw(server)
        blob = b"x" * (MAX_MESSAGE_BYTES + 65536)
        sock.sendall(blob)  # never a newline
        response = self._response(sock)
        assert response["ok"] is False
        assert "exceeds" in response["error"]
        # the server hangs up after the refusal (FIN, or RST when its
        # receive buffer still held unread bytes)
        try:
            assert sock.recv(1) == b""
        except ConnectionResetError:
            pass
        sock.close()

    def test_non_object_payload_rejected(self, server):
        sock = self._raw(server)
        sock.sendall(b'[1,2,3]\n')
        response = self._response(sock)
        assert response["ok"] is False
        sock.sendall(b'{"op":"ping"}\n')
        assert self._response(sock)["ok"]
        sock.close()


class TestChaosSmoke:
    def test_three_seed_sweep_passes(self, tmp_path):
        from repro.faults.chaos import run_sweep

        report = run_sweep(seeds=[0, 1, 2], mixes=["drop10", "reset"],
                           scale=0.01, workdir=str(tmp_path),
                           replay_sample=1)
        assert report.ok, report.render()
        assert report.replay_checked == 2
        rendered = report.render()
        assert "RESULT: PASS" in rendered

    def test_unknown_mix_rejected(self):
        from repro.errors import ReproError
        from repro.faults.chaos import run_sweep

        with pytest.raises(ReproError):
            run_sweep(seeds=[0], mixes=["nope"])

    def test_cli_chaos_single_seed(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--seed", "0", "--mix", "drop10",
                     "--scale", "0.01"])
        captured = capsys.readouterr()
        assert code == 0, captured.out + captured.err
        assert "RESULT: PASS" in captured.out
