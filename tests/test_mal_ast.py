"""Unit tests for MAL AST construction and dataflow analysis."""

import pytest

from repro.errors import MalError
from repro.mal import Const, MalProgram, Var, bat_of, scalar_of
from repro.mal.ast import ANY, TypeSpec


class TestTypeSpec:
    def test_scalar_str(self):
        assert str(scalar_of("int")) == ":int"

    def test_bat_str(self):
        assert str(bat_of("dbl")) == ":bat[:oid,:dbl]"

    def test_any_str(self):
        assert str(ANY) == ":any"

    def test_is_bat(self):
        assert bat_of("int").is_bat
        assert not scalar_of("int").is_bat


class TestProgramConstruction:
    def test_new_var_names_unique(self):
        p = MalProgram()
        names = {p.new_var() for _ in range(10)}
        assert len(names) == 10

    def test_declare_duplicate_raises(self):
        p = MalProgram()
        p.declare("X_1")
        with pytest.raises(MalError):
            p.declare("X_1")

    def test_add_assigns_pc_in_order(self):
        p = MalProgram()
        a = p.add("sql", "mvc", [], [p.new_var()])
        b = p.add("language", "pass", [Var(a.results[0])])
        assert (a.pc, b.pc) == (0, 1)

    def test_call_returns_var(self):
        p = MalProgram()
        v = p.call("sql", "mvc")
        assert isinstance(v, Var)
        assert p.instructions[0].results == [v.name]

    def test_renumber_after_delete(self):
        p = MalProgram()
        p.call("sql", "mvc")
        p.call("sql", "mvc")
        del p.instructions[0]
        p.renumber()
        assert p.instructions[0].pc == 0


class TestAnalysis:
    def make_chain(self):
        p = MalProgram()
        a = p.call("sql", "mvc")
        b = p.call("language", "pass", [a])
        c = p.call("calc", "add", [Const(1), Const(2)])
        d = p.call("calc", "add", [b, c])
        return p, a, b, c, d

    def test_dependencies(self):
        p, _a, _b, _c, _d = self.make_chain()
        deps = p.dependencies()
        assert deps[0] == set()
        assert deps[1] == {0}
        assert deps[2] == set()
        assert deps[3] == {1, 2}

    def test_def_sites_and_users(self):
        p, a, _b, _c, _d = self.make_chain()
        assert p.def_sites()[a.name] == 0
        assert p.users()[a.name] == [1]

    def test_defining_instruction(self):
        p, a, *_ = self.make_chain()
        assert p.defining_instruction(a.name).pc == 0
        assert p.defining_instruction("nope") is None

    def test_validate_ok(self):
        p, *_ = self.make_chain()
        p.validate()

    def test_validate_use_before_def(self):
        p = MalProgram()
        p.declare("X_9")
        p.add("language", "pass", [Var("X_9")])
        with pytest.raises(MalError):
            p.validate()

    def test_validate_double_assignment(self):
        p = MalProgram()
        v = p.new_var()
        p.add("sql", "mvc", [], [v])
        p.add("sql", "mvc", [], [v])
        with pytest.raises(MalError):
            p.validate()

    def test_uses_and_defines(self):
        p = MalProgram()
        a = p.call("sql", "mvc")
        instr = p.add("language", "pass", [a, Const(1)])
        assert list(instr.uses()) == [a.name]
        assert list(instr.defines()) == []
        assert instr.qualified_name == "language.pass"
