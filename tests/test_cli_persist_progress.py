"""Tests for the CLI, catalog persistence, and the progress/pop-up
models."""

import io
import threading

import pytest

from repro.cli import main
from repro.core.progress import Popup, PopupManager, ProgressWindow
from repro.errors import StorageError
from repro.profiler.events import TraceEvent
from repro.storage import Catalog, INT, STR, DATE
from repro.storage.persist import load_catalog, save_catalog


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestPersistence:
    def make_catalog(self):
        import datetime

        cat = Catalog()
        t = cat.schema().create_table(
            "events", [("id", INT), ("name", STR), ("day", DATE)]
        )
        t.insert_many([
            [1, "alpha", datetime.date(2020, 1, 1)],
            [2, None, datetime.date(2021, 6, 15)],
        ])
        return cat

    def test_roundtrip(self, tmp_path):
        cat = self.make_catalog()
        path = str(tmp_path / "db.json")
        rows = save_catalog(cat, path)
        assert rows == 2
        loaded = load_catalog(path)
        assert list(loaded.table("events").rows()) == \
            list(cat.table("events").rows())

    def test_types_preserved(self, tmp_path):
        path = str(tmp_path / "db.json")
        save_catalog(self.make_catalog(), path)
        loaded = load_catalog(path)
        types = [c.mal_type.name
                 for c in loaded.table("events").columns.values()]
        assert types == ["int", "str", "date"]

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_catalog(str(path))

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99, "schemas": []}')
        with pytest.raises(StorageError):
            load_catalog(str(path))

    def test_loaded_catalog_queryable(self, tmp_path):
        from repro.server import Database

        path = str(tmp_path / "db.json")
        save_catalog(self.make_catalog(), path)
        db = Database(catalog=load_catalog(path))
        rows = db.execute("select name from events where id = 1").rows
        assert rows == [("alpha",)]

    def test_save_is_atomic_on_crash(self, tmp_path, monkeypatch):
        """A crash mid-save must leave the previous catalog readable
        and no temp file behind — the save goes through a same-dir
        temp file plus ``os.replace``."""
        import json as json_module

        path = str(tmp_path / "db.json")
        save_catalog(self.make_catalog(), path)
        good = load_catalog(path)

        def explode(fd):
            # the temp file holds a complete document by now; dying on
            # its fsync models a crash after a (possibly torn) write
            raise OSError("disk full")

        monkeypatch.setattr("repro.storage.persist.os.fsync", explode)
        with pytest.raises(OSError):
            save_catalog(self.make_catalog(), path)
        monkeypatch.undo()
        # the original survives intact ...
        reloaded = load_catalog(path)
        assert list(reloaded.table("events").rows()) == \
            list(good.table("events").rows())
        # ... and the temp file was cleaned up
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "db.json"]
        assert leftovers == []
        document, _crc = open(path).read().rsplit("#crc32=", 1)
        assert json_module.loads(document)["version"] == 1

    def test_save_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "db.json")
        save_catalog(self.make_catalog(), path)
        cat = self.make_catalog()
        cat.table("events").insert([3, "gamma", None])
        assert save_catalog(cat, path) == 3
        assert len(list(load_catalog(path).table("events").rows())) == 3


class TestProgressWindow:
    def event(self, seq, status, pc, clock):
        return TraceEvent(seq, clock, status, pc, 0,
                          10 if status == "done" else 0, 0, "x := a.b();")

    def test_fraction_and_completion(self):
        window = ProgressWindow(plan_size=2)
        window.observe(self.event(0, "start", 0, 0))
        assert window.fraction_done == 0
        window.observe(self.event(1, "done", 0, 100))
        assert window.fraction_done == 0.5
        window.observe(self.event(2, "start", 1, 100))
        window.observe(self.event(3, "done", 1, 200))
        assert window.complete

    def test_eta_estimates_from_rate(self):
        window = ProgressWindow(plan_size=4)
        window.observe(self.event(0, "done", 0, 100))
        assert window.eta_usec() == 300  # 100 usec each, 3 remaining

    def test_eta_none_before_first_done(self):
        window = ProgressWindow(plan_size=2)
        assert window.eta_usec() is None

    def test_render_shows_bar_and_running(self):
        window = ProgressWindow(plan_size=4)
        window.observe(self.event(0, "done", 0, 50))
        window.observe(self.event(1, "start", 1, 50))
        text = window.render(width=8)
        assert "[##------]" in text
        assert "running: pc 1" in text

    def test_plan_size_positive(self):
        with pytest.raises(ValueError):
            ProgressWindow(0)


class TestPopups:
    def event(self, seq, status, pc, clock):
        return TraceEvent(seq, clock, status, pc, 0, 0, 0, "x := a.b();")

    def test_popup_raised_after_threshold(self):
        manager = PopupManager(threshold_usec=100)
        manager.observe(self.event(0, "start", 5, 0))
        assert manager.tick(50) == []
        raised = manager.tick(150)
        assert len(raised) == 1 and raised[0].pc == 5
        assert "still running" in raised[0].message()

    def test_popup_not_duplicated(self):
        manager = PopupManager(threshold_usec=100)
        manager.observe(self.event(0, "start", 5, 0))
        manager.tick(150)
        assert manager.tick(300) == []
        assert len(manager.popups) == 1

    def test_popup_dismissed_on_done(self):
        manager = PopupManager(threshold_usec=100)
        manager.observe(self.event(0, "start", 5, 0))
        manager.tick(150)
        manager.observe(self.event(1, "done", 5, 400))
        assert manager.active() == []
        assert manager.popups[0].dismissed_at_usec == 400

    def test_fast_instruction_never_popped(self):
        manager = PopupManager(threshold_usec=100)
        manager.observe(self.event(0, "start", 5, 0))
        manager.observe(self.event(1, "done", 5, 50))
        assert manager.tick(1000) == []

    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            PopupManager(0)


class TestCli:
    def test_datagen_and_offline_flow(self, tmp_path):
        db_path = str(tmp_path / "tpch.json")
        code, out = run_cli("datagen", db_path, "--scale", "0.02")
        assert code == 0 and "wrote" in out

        # produce dot + trace files via the library, then analyse by CLI
        from repro.dot import plan_to_dot
        from repro.profiler import Profiler, write_trace
        from repro.server import Database
        from repro.storage.persist import load_catalog

        db = Database(catalog=load_catalog(db_path))
        profiler = Profiler()
        outcome = db.execute(
            "select l_tax from lineitem where l_partkey = 1",
            listener=profiler,
        )
        dot_path = str(tmp_path / "plan.dot")
        trace_path = str(tmp_path / "q.trace")
        with open(dot_path, "w") as f:
            f.write(plan_to_dot(outcome.program))
        write_trace(profiler.events, trace_path)

        code, out = run_cli("offline", dot_path, trace_path,
                            "--svg", str(tmp_path / "d.svg"))
        assert code == 0
        assert "plan:" in out and "coverage 100%" in out
        assert (tmp_path / "d.svg").exists()

        code, out = run_cli("analyze", trace_path, "--top", "3")
        assert code == 0 and "makespan" in out

        code, out = run_cli("analyze", trace_path, "--csv")
        assert code == 0 and out.startswith("pc,")

    def test_offline_threshold_mode(self, tmp_path):
        from repro.dot import plan_to_dot
        from repro.profiler import Profiler, write_trace
        from repro.server import Database
        from repro.tpch import populate

        db = Database()
        populate(db.catalog, scale_factor=0.02)
        profiler = Profiler()
        outcome = db.execute("select count(*) from lineitem",
                             listener=profiler)
        dot_path = str(tmp_path / "p.dot")
        trace_path = str(tmp_path / "t.trace")
        with open(dot_path, "w") as f:
            f.write(plan_to_dot(outcome.program))
        write_trace(profiler.events, trace_path)
        code, out = run_cli("offline", dot_path, trace_path,
                            "--threshold", "1", "--ascii")
        assert code == 0
        assert "coloured nodes:" in out

    def test_serve_and_query(self, tmp_path):
        import socket

        # find a free TCP port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        server_out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(["serve", "--port", str(port), "--scale", "0.02",
                   "--max-seconds", "6"],),
            kwargs={"out": server_out},
            daemon=True,
        )
        thread.start()
        import time

        deadline = time.monotonic() + 5
        code, out = 1, ""
        while time.monotonic() < deadline:
            code, out = run_cli("query", "select count(*) from region",
                                "--port", str(port))
            if code == 0:
                break
            time.sleep(0.1)
        assert code == 0 and "5" in out

        code, out = run_cli("query", "select count(*) from region",
                            "--port", str(port), "--explain")
        assert code == 0 and "function user." in out
        thread.join(timeout=10)

    def test_serve_with_parallel_workers(self):
        import socket
        import time

        from repro.metrics.families import MPOOL_TASKS, MPOOL_WORKERS

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        server_out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(["serve", "--port", str(port), "--scale", "0.2",
                   "--parallel-workers", "2", "--parallel-min-rows", "0",
                   "--max-seconds", "6"],),
            kwargs={"out": server_out},
            daemon=True,
        )
        tasks_before = MPOOL_TASKS.labels(outcome="ok").value()
        thread.start()
        sql = ("select sum(l_extendedprice * l_discount) from lineitem "
               "where l_quantity > 10")
        deadline = time.monotonic() + 5
        code, out = 1, ""
        while time.monotonic() < deadline:
            code, out = run_cli("query", sql, "--port", str(port),
                                "--scheduler", "simulated")
            if code == 0:
                break
            time.sleep(0.1)
        assert code == 0 and "1 row(s)" in out
        # the query's partition fragments really ran on the pool
        # (scale 0.2 crosses the default mitosis threshold: 4 fragments)
        assert MPOOL_TASKS.labels(outcome="ok").value() >= tasks_before + 4
        thread.join(timeout=10)
        assert MPOOL_WORKERS.value() == 0  # server stop closed the pool

    def test_query_connection_error(self):
        code, _out = run_cli("query", "select 1 from t", "--port", "1")
        assert code == 1

    def test_listen_times_out_empty(self, tmp_path):
        code, out = run_cli(
            "listen", "--port", "0", "--timeout", "0.3",
            "--trace-file", str(tmp_path / "t.trace"),
            "--dot-file", str(tmp_path / "p.dot"),
        )
        assert code == 1  # nothing received

    def test_listen_receives_stream(self, tmp_path):
        import socket as socket_module

        from repro.profiler import UdpEmitter

        # run listen in a thread on an OS-assigned port is racy; instead
        # pick a free UDP port up front
        probe = socket_module.socket(socket_module.AF_INET,
                                     socket_module.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        result = {}

        def listen():
            result["code"], result["out"] = run_cli(
                "listen", "--port", str(port), "--timeout", "5",
                "--trace-file", str(tmp_path / "t.trace"),
                "--dot-file", str(tmp_path / "p.dot"),
            )

        thread = threading.Thread(target=listen, daemon=True)
        thread.start()
        import time

        time.sleep(0.3)
        emitter = UdpEmitter(port=port)
        emitter.send_dot("digraph G { n0; }")
        emitter.send_line('[ 0,\t0,\t"start",\t0,\t0,\t0,\t0,\t"a.b();"\t]')
        emitter.send_end()
        emitter.close()
        thread.join(timeout=10)
        assert result["code"] == 0
        assert (tmp_path / "p.dot").read_text().startswith("digraph")
