"""Tests for concurrent-load interference analysis (paper intro: the
online mode shows the "influence of concurrent processes competing with
the resources")."""

import pytest

from repro.core.analysis import compare_traces
from repro.mal.dataflow import SimulatedScheduler
from repro.mal.optimizer import default_pipe
from repro.profiler import Profiler
from repro.sqlfe import compile_sql
from repro.storage import Catalog
from repro.tpch import populate, query_sql


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    populate(cat, scale_factor=0.1, seed=5)
    return cat


def trace_with_workers(catalog, sql, workers):
    """The same plan executed with the full machine vs. a machine where
    a competing process occupies some of the cores."""
    pipeline = default_pipe(nparts=4, mitosis_threshold=200)
    for opt_pass in pipeline.passes:
        if hasattr(opt_pass, "catalog"):
            opt_pass.catalog = catalog
    program = pipeline.apply(compile_sql(catalog, sql))
    profiler = Profiler()
    SimulatedScheduler(catalog, workers=workers, listener=profiler).run(
        program
    )
    return profiler.events


class TestInterference:
    def test_losing_cores_inflates_makespan(self, catalog):
        sql = query_sql("q6")
        idle = trace_with_workers(catalog, sql, workers=4)
        loaded = trace_with_workers(catalog, sql, workers=1)
        report = compare_traces(idle, loaded)
        assert report.makespan_inflation > 1.5

    def test_same_conditions_no_inflation(self, catalog):
        sql = query_sql("q6")
        a = trace_with_workers(catalog, sql, workers=4)
        b = trace_with_workers(catalog, sql, workers=4)
        report = compare_traces(a, b)
        assert report.makespan_inflation == pytest.approx(1.0)

    def test_per_operator_slowdowns_sorted(self, catalog):
        sql = query_sql("q1")
        idle = trace_with_workers(catalog, sql, workers=4)
        loaded = trace_with_workers(catalog, sql, workers=2)
        report = compare_traces(idle, loaded)
        slowdowns = [o.slowdown for o in report.operators]
        assert slowdowns == sorted(slowdowns, reverse=True)
        assert report.worst(3)[0].slowdown >= slowdowns[-1]

    def test_empty_traces(self):
        report = compare_traces([], [])
        assert report.makespan_inflation == 1.0
        assert report.operators == []

    def test_operator_busy_time_stable_under_scheduling(self, catalog):
        """Per-operator busy time is scheduling-independent in the
        virtual-cost model — only the makespan moves."""
        sql = query_sql("q6")
        idle = trace_with_workers(catalog, sql, workers=4)
        loaded = trace_with_workers(catalog, sql, workers=1)
        report = compare_traces(idle, loaded)
        for op in report.operators:
            assert op.slowdown == pytest.approx(1.0)
