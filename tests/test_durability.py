"""The durable storage engine: WAL framing and group commit, binary
columnar checkpoints, crash recovery, the fault sites that attack each
of them, and the typed write-path/persistence errors that ride along.

The centrepiece is a crash-recovery property test that SIGKILLs a real
forked process mid-workload across many seeds and asserts the durability
contract: no acknowledged statement is ever lost, no unacknowledged
statement is ever half-applied, and recovery is deterministic.
"""

import datetime
import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import (
    CatalogError,
    CheckpointError,
    SqlError,
    StorageError,
    WalError,
)
from repro.faults import FaultPlan, armed, disarm
from repro.server.database import Database
from repro.storage import Catalog
from repro.storage.durable import (
    MANIFEST_FILENAME,
    DurableEngine,
    WriteAheadLog,
    catalog_canonical_bytes,
    list_checkpoints,
    load_checkpoint,
    recover,
    scan_wal,
)
from repro.storage.persist import load_catalog, save_catalog
from repro.storage.types import type_by_name

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@pytest.fixture(autouse=True)
def always_disarm():
    yield
    disarm()


def _durable(tmp_path, **kwargs) -> Database:
    kwargs.setdefault("commit_window_ms", 0.0)
    return Database(wal_dir=str(tmp_path), **kwargs)


def _bytes(db_or_catalog) -> bytes:
    catalog = getattr(db_or_catalog, "catalog", db_or_catalog)
    return catalog_canonical_bytes(catalog)


class TestWriteAheadLog:
    def test_append_commit_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, commit_window_ms=0.0)
        for i in range(3):
            lsn = wal.append("insert", {"i": i})
            wal.commit(lsn)
        assert wal.durable_lsn == 3
        wal.close()
        scan = scan_wal(path)
        assert not scan.torn
        assert [(lsn, data["i"]) for lsn, _kind, data in scan.records] \
            == [(1, 0), (2, 1), (3, 2)]
        assert scan.valid_bytes == scan.total_bytes

    def test_scan_stops_at_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, commit_window_ms=0.0)
        for i in range(2):
            wal.commit(wal.append("insert", {"i": i}))
        durable = wal.durable_bytes
        wal.append("insert", {"i": 2})
        kept = wal.simulate_crash(durable + 7)  # half a header survives
        assert kept == durable + 7
        scan = scan_wal(path)
        assert scan.torn
        assert len(scan.records) == 2
        assert scan.valid_bytes == durable

    def test_scan_stops_at_corrupt_crc(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, commit_window_ms=0.0)
        for i in range(3):
            wal.commit(wal.append("insert", {"i": i}))
        wal.close()
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        scan = scan_wal(path)
        assert scan.torn
        assert len(scan.records) == 2

    def test_group_commit_batches_concurrent_writers(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"),
                            commit_window_ms=25.0)
        writers = 8
        barrier = threading.Barrier(writers)
        failures = []

        def write(i):
            try:
                barrier.wait(timeout=5.0)
                wal.commit(wal.append("insert", {"i": i}))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=write, args=(i,))
                   for i in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not failures
        assert wal.durable_lsn == writers
        # one fsync covered several records: that is the whole point
        assert wal.fsyncs < writers
        wal.close()

    def test_truncate_keeps_counting_lsns(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, commit_window_ms=0.0)
        wal.commit(wal.append("ddl", {"op": "noop"}))
        wal.truncate()
        assert os.path.getsize(path) == 0
        lsn = wal.append("insert", {"i": 1})
        assert lsn == 2  # never reused, even across truncation
        wal.commit(lsn)
        wal.close()
        scan = scan_wal(path)
        assert [r[0] for r in scan.records] == [2]


class TestRecovery:
    def test_clean_reopen_is_byte_identical(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer, b varchar(8))")
        db.execute("insert into t values (1, 'one')")
        db.execute("insert into t values (2, 'two')")
        expected = _bytes(db)
        db.close()
        again = _durable(tmp_path)
        assert again.recovery.recovered_anything
        assert again.recovery.outcome == "clean"
        assert again.recovery.replayed_records == 3
        assert _bytes(again) == expected
        again.close()

    def test_checkpoint_plus_wal_tail(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        db.checkpoint()
        db.execute("insert into t values (2)")
        expected = _bytes(db)
        db.durability.simulate_crash()
        db.close()
        again = _durable(tmp_path)
        report = again.recovery
        assert report.checkpoint_path is not None
        assert report.checkpoint_lsn == 2
        assert report.replayed_records == 1
        assert _bytes(again) == expected
        again.close()

    def test_interval_checkpoints_fire(self, tmp_path):
        db = _durable(tmp_path, checkpoint_interval=2)
        db.execute("create table t (a integer)")
        for i in range(5):
            db.execute(f"insert into t values ({i})")
        assert list_checkpoints(str(tmp_path))
        db.close()

    def test_reopening_with_a_catalog_is_refused(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.close()
        with pytest.raises(StorageError, match="already holds"):
            Database(wal_dir=str(tmp_path), catalog=Catalog())
        # the refused open must not have clobbered anything
        again = _durable(tmp_path)
        assert "t" in again.catalog.schema().tables
        again.close()

    def test_torn_tail_is_dropped_and_repaired(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        expected = _bytes(db)
        wal = db.durability.wal
        durable = wal.durable_bytes
        # an append whose commit never happened: the in-flight record a
        # SIGKILL can leave half-written past the durable watermark
        wal.append("insert", {"schema": "sys", "table": "t",
                              "rows": [[2]]})
        wal.simulate_crash(durable + 9)
        db.close()
        again = _durable(tmp_path)
        report = again.recovery
        assert report.outcome == "torn"
        assert report.torn_bytes_dropped == 9
        assert _bytes(again) == expected
        again.close()
        # the torn bytes were truncated away: the next open is clean
        final = _durable(tmp_path)
        assert final.recovery.outcome == "clean"
        assert _bytes(final) == expected
        final.close()

    def test_checkpoint_requires_wal_dir(self):
        db = Database()
        with pytest.raises(StorageError, match="wal_dir"):
            db.checkpoint()
        db.close()


class TestWalFaults:
    def test_torn_write_poisons_until_recovery(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        expected = _bytes(db)
        plan = FaultPlan.from_spec("persist.wal:torn-write@1.0#1", seed=1)
        with armed(plan):
            with pytest.raises(WalError, match="torn write"):
                db.execute("insert into t values (2)")
        # nothing half-applied, and the log refuses writes until reopened
        assert _bytes(db) == expected
        with pytest.raises(WalError, match="poisoned"):
            db.execute("insert into t values (3)")
        db.durability.simulate_crash(db.durability.wal.written_bytes)
        db.close()
        again = _durable(tmp_path)
        assert again.recovery.outcome == "torn"
        assert _bytes(again) == expected
        again.execute("insert into t values (4)")  # log is usable again
        again.close()

    def test_fsync_loss_rolls_back_and_leaves_a_gap(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        plan = FaultPlan.from_spec("persist.wal:fsync-loss@1.0#1", seed=1)
        with armed(plan):
            with pytest.raises(WalError, match="fsync"):
                db.execute("insert into t values (1)")
        assert db.catalog.table("t").row_count() == 0
        db.execute("insert into t values (2)")
        expected = _bytes(db)
        db.close()
        # the failed statement's lsn was burned, never reused
        scan = scan_wal(str(tmp_path / "wal.log"))
        assert [r[0] for r in scan.records] == [1, 3]
        again = _durable(tmp_path)
        assert _bytes(again) == expected
        again.close()

    def test_latency_fault_only_slows(self, tmp_path):
        db = _durable(tmp_path)
        plan = FaultPlan.from_spec("persist.wal:latency=1@1.0", seed=1)
        with armed(plan):
            db.execute("create table t (a integer)")
            db.execute("insert into t values (1)")
        assert db.catalog.table("t").row_count() == 1
        db.close()


class TestCheckpointFaults:
    def _seed_db(self, tmp_path) -> Database:
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        return db

    def test_partial_manifest_falls_back_to_the_wal(self, tmp_path):
        db = self._seed_db(tmp_path)
        expected = _bytes(db)
        plan = FaultPlan.from_spec(
            "persist.checkpoint:partial-manifest@1.0#1", seed=1)
        with armed(plan):
            with pytest.raises(CheckpointError):
                db.checkpoint()
        db.durability.simulate_crash()
        db.close()
        again = _durable(tmp_path)
        # the invalid checkpoint was detected and skipped; the full WAL
        # (never truncated on a failed checkpoint) rebuilt everything
        assert again.recovery.invalid_checkpoints >= 1
        assert again.recovery.replayed_records == 2
        assert _bytes(again) == expected
        again.close()

    def test_crash_before_rename_leaves_no_trace(self, tmp_path):
        db = self._seed_db(tmp_path)
        expected = _bytes(db)
        plan = FaultPlan.from_spec(
            "persist.checkpoint:crash-before-rename@1.0#1", seed=1)
        with armed(plan):
            with pytest.raises(CheckpointError):
                db.checkpoint()
        assert list_checkpoints(str(tmp_path)) == []
        # with the fault spent, checkpointing works and prunes the tmp
        report = db.checkpoint()
        assert report.rows == 1
        leftovers = [n for n in os.listdir(str(tmp_path))
                     if n.endswith(".tmp")]
        assert leftovers == []
        db.close()
        again = _durable(tmp_path)
        assert _bytes(again) == expected
        again.close()

    def test_corrupt_record_recovers_an_acked_prefix(self, tmp_path):
        db = self._seed_db(tmp_path)
        db.execute("insert into t values (2)")
        db.close()
        plan = FaultPlan.from_spec(
            "persist.recover:corrupt-record@1.0#1", seed=1)
        with armed(plan):
            catalog, report = recover(str(tmp_path))
        # media corruption legitimately loses acked records — but only
        # ever a suffix: what survives is a strict prefix of history
        assert report.torn
        assert report.replayed_records == 0
        assert "t" not in catalog.schema().tables


class TestWritePathRegressions:
    """Reviewed durability edge cases, pinned so they stay fixed."""

    def test_insert_rollback_spares_concurrently_committed_rows(
            self, tmp_path):
        """Rollback snapshots are captured at apply() time — under the
        engine's order lock — not at statement-construction time.  A
        concurrent INSERT that commits in between must survive this
        statement's rollback; truncating it away would leave memory
        *behind* the durable WAL, and the next checkpoint would persist
        the loss."""
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        table = db.catalog.table("t")
        real_log = db.durability.log
        hooks = {}

        def interleaving_log(kind, data, apply, undo):
            # Between this statement's closure construction and its
            # apply(), another thread's INSERT commits — the exact
            # interleaving the server's executor threads allow.
            real_log("insert",
                     {"schema": "sys", "table": "t", "rows": [[1]]},
                     lambda: table.insert_many([[1]]), lambda: None)
            hooks["undo"] = undo
            return real_log(kind, data, apply, undo)

        db.durability.log = interleaving_log
        db.execute("insert into t values (2)")
        db.durability.log = real_log
        assert table.row_count() == 2
        # roll the second statement back, as its failed fsync would
        hooks["undo"]()
        assert table.row_count() == 1
        assert table.columns["a"].bat.tail[0] == 1
        db.close()

    def test_repeated_checkpoint_reuses_the_same_lsn_directory(
            self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        first = db.checkpoint()
        # A second checkpoint with no intervening statements lands on
        # the same LSN.  The existing directory must be reused — never
        # deleted first: a crash in between would leave no checkpoint
        # at the LSN while the WAL it covered is already truncated.
        sentinel = os.path.join(first.path, "sentinel")
        with open(sentinel, "w"):
            pass
        second = db.checkpoint()
        assert (second.path, second.lsn, second.rows, second.files,
                second.bytes) == (first.path, first.lsn, first.rows,
                                  first.files, first.bytes)
        assert os.path.exists(sentinel)  # reused in place, not rewritten
        db.close()
        again = _durable(tmp_path)
        assert again.recovery.checkpoint_lsn == first.lsn
        assert again.catalog.table("t").row_count() == 1
        again.close()

    def test_damaged_same_lsn_checkpoint_is_replaced(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        first = db.checkpoint()
        with open(os.path.join(first.path, MANIFEST_FILENAME),
                  "w") as handle:
            handle.write("{")  # bit-rot: the directory no longer validates
        second = db.checkpoint()
        assert second.path == first.path
        _catalog, lsn, rows = load_checkpoint(second.path)
        assert (lsn, rows) == (first.lsn, 1)
        # the damaged copy was moved aside and cleaned up after the
        # replacement landed
        assert not [n for n in os.listdir(str(tmp_path))
                    if n.endswith(".stale")]
        db.close()

    def test_failed_adopt_closes_the_wal(self, tmp_path):
        catalog = Catalog()
        catalog.schema().create_table("t", [("a", type_by_name("int"))])
        plan = FaultPlan.from_spec(
            "persist.checkpoint:crash-before-rename@1.0#1", seed=1)
        with armed(plan):
            with pytest.raises(CheckpointError):
                Database(wal_dir=str(tmp_path), catalog=catalog,
                         commit_window_ms=0.0)
        fd_dir = "/proc/self/fd"
        if os.path.isdir(fd_dir):  # no leaked fd into the wal dir
            for name in os.listdir(fd_dir):
                try:
                    target = os.readlink(os.path.join(fd_dir, name))
                except OSError:
                    continue
                assert not target.startswith(str(tmp_path)), target
        # and the directory is reopenable
        again = _durable(tmp_path)
        again.close()


class TestInsertBindTyping:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.execute(
            "create table typed (i integer, s varchar(8), d double, "
            "f boolean, dt date)")
        yield database
        database.close()

    def _insert(self, db, values: str):
        return db.execute(f"insert into typed values ({values})")

    def test_good_row_inserts(self, db):
        outcome = self._insert(db, "1, 'x', 2.5, true, '2026-08-08'")
        assert outcome.affected == 1
        row_day = db.catalog.table("typed").columns["dt"].bat.tail[0]
        assert row_day == datetime.date(2026, 8, 8)

    def test_int_upcasts_into_double(self, db):
        self._insert(db, "1, 'x', 3, false, date '2026-01-01'")
        assert db.catalog.table("typed").columns["d"].bat.tail[0] == 3.0

    def test_nulls_pass_every_column(self, db):
        outcome = self._insert(db, "null, null, null, null, null")
        assert outcome.affected == 1

    def test_negative_numbers_bind(self, db):
        self._insert(db, "-5, 'x', -2.5, true, null")
        assert db.catalog.table("typed").columns["i"].bat.tail[0] == -5

    @pytest.mark.parametrize("values, fragment", [
        ("'oops', 'x', 1.0, true, null", "cannot insert string"),
        ("1.5, 'x', 1.0, true, null", "cannot insert float"),
        ("1, 2, 1.0, true, null", "cannot insert integer"),
        ("1, 'x', 1.0, 7, null", "cannot insert integer"),
        ("true, 'x', 1.0, true, null", "cannot insert boolean"),
        ("1, 'x', 1.0, true, 'not-a-date'", "bad date literal"),
        ("1, 'x', 1.0, true, 5", "cannot insert integer"),
        ("1, 'x'", "has 2 value"),
    ])
    def test_mistyped_literals_are_rejected(self, db, values, fragment):
        before = db.catalog.table("typed").row_count()
        with pytest.raises(SqlError, match=fragment):
            self._insert(db, values)
        # bind-time rejection: no column was touched
        assert db.catalog.table("typed").row_count() == before

    def test_durable_rejection_logs_nothing(self, tmp_path):
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        with pytest.raises(SqlError):
            db.execute("insert into t values ('nope')")
        db.close()
        scan = scan_wal(str(tmp_path / "wal.log"))
        assert len(scan.records) == 1  # just the CREATE


class TestCatalogFilePersistence:
    def _catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.create_table_from_sql_types(
            "t", [("a", "integer"), ("b", "varchar")])
        catalog.table("t").insert_many([[1, "one"], [2, "two"]])
        return catalog

    def test_round_trip_carries_a_checksum(self, tmp_path):
        path = str(tmp_path / "cat.json")
        save_catalog(self._catalog(), path)
        with open(path) as handle:
            assert "#crc32=" in handle.read()
        loaded = load_catalog(path)
        assert loaded.table("t").row_count() == 2

    def test_bit_rot_is_detected(self, tmp_path):
        path = str(tmp_path / "cat.json")
        save_catalog(self._catalog(), path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"one"', '"eno"', 1))
        with pytest.raises(StorageError, match="checksum mismatch"):
            load_catalog(path)

    def test_legacy_files_without_trailer_load(self, tmp_path):
        path = str(tmp_path / "cat.json")
        save_catalog(self._catalog(), path)
        with open(path) as handle:
            text = handle.read()
        body = text[:text.rfind("\n#crc32=")]
        with open(path, "w") as handle:
            handle.write(body)
        assert load_catalog(path).table("t").row_count() == 2

    @pytest.mark.parametrize("payload", [
        "[]",
        '{"version": 99, "schemas": []}',
        '{"version": 1, "schemas": [{"nom": "sys"}]}',
        '{"version": 1, "schemas": [{"name": "sys", "tables": '
        '[{"name": "t", "columns": [{"name": "a", "type": "int"}]}]}]}',
        '{"version": 1, "schemas": 7}',
    ])
    def test_malformed_documents_raise_typed_errors(self, tmp_path,
                                                    payload):
        path = str(tmp_path / "cat.json")
        with open(path, "w") as handle:
            handle.write(payload)
        with pytest.raises(StorageError):
            load_catalog(path)


_CHILD = """
import os, sys
from repro.server.database import Database

wal_dir, ack_path, script_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(script_path) as handle:
    statements = [line.rstrip("\\n") for line in handle if line.strip()]
db = Database(wal_dir=wal_dir, commit_window_ms=0.0, checkpoint_interval=4)
ack = open(ack_path, "a")
print("READY", flush=True)
for index, sql in enumerate(statements):
    db.execute(sql)
    ack.write(f"{index}\\n")
    ack.flush()
    os.fsync(ack.fileno())
print("DONE", flush=True)
db.close()
"""


def _workload(seed: int):
    rng = random.Random(seed * 104729 + 7)
    statements = ["create table w0 (a integer, b varchar(12))"]
    for i in range(30):
        if i == 12:
            statements.append("create table w1 (x double)")
        elif rng.random() < 0.5 and i > 12:
            statements.append(
                f"insert into w1 values ({rng.randrange(100)}.25)")
        else:
            statements.append(
                f"insert into w0 values ({rng.randrange(1000)}, "
                f"'v{rng.randrange(100)}')")
    return statements


class TestCrashRecoveryProperty:
    """SIGKILL a real process mid-workload; the durability contract
    must hold for every seed: recovery yields exactly a prefix of the
    workload covering at least every acknowledged statement (at most
    one in-flight statement beyond), deterministically."""

    @pytest.mark.parametrize("seed", range(20))
    def test_sigkilled_process_loses_nothing_acked(self, tmp_path, seed):
        wal_dir = str(tmp_path / "wal")
        ack_path = str(tmp_path / "acks")
        script_path = str(tmp_path / "workload.sql")
        statements = _workload(seed)
        with open(script_path, "w") as handle:
            handle.write("\n".join(statements) + "\n")
        open(ack_path, "w").close()
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD, wal_dir, ack_path, script_path],
            stdout=subprocess.PIPE, env=env)
        try:
            assert child.stdout.readline().strip() == b"READY"
            rng = random.Random(seed)
            time.sleep(rng.uniform(0.005, 0.12))
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10.0)
        finally:
            child.stdout.close()
            if child.poll() is None:  # pragma: no cover - safety net
                child.kill()
                child.wait()
        with open(ack_path) as handle:
            acked = sum(1 for line in handle
                        if line.endswith("\n") and line.strip().isdigit())

        recovered, report = recover(wal_dir)
        recovered_bytes = catalog_canonical_bytes(recovered)
        shadow = Database()
        try:
            prefix = None
            if catalog_canonical_bytes(shadow.catalog) == recovered_bytes:
                prefix = 0
            for applied, sql in enumerate(statements, start=1):
                shadow.execute(sql)
                if catalog_canonical_bytes(shadow.catalog) \
                        == recovered_bytes:
                    prefix = applied
        finally:
            shadow.close()
        assert prefix is not None, (
            f"seed {seed}: recovered state matches no workload prefix "
            f"({report.describe()})")
        assert prefix >= acked, (
            f"seed {seed}: {acked} statements acked but recovery "
            f"rebuilt only {prefix}")
        assert prefix - acked <= 1, (
            f"seed {seed}: recovery rebuilt {prefix} statements with "
            f"only {acked} acked — a statement was applied before its "
            f"acknowledgement")

        # recovery is deterministic: running it again changes nothing
        again, _ = recover(wal_dir)
        assert catalog_canonical_bytes(again) == recovered_bytes


class TestDurabilityMetricsAndCli:
    def test_metric_families_advance(self, tmp_path):
        from repro.metrics.families import (
            PERSIST_CHECKPOINTS,
            PERSIST_RECOVERIES,
            PERSIST_WAL_APPENDS,
        )

        appends = PERSIST_WAL_APPENDS.labels(kind="insert")
        checkpoints = PERSIST_CHECKPOINTS.labels(outcome="ok")
        recoveries = PERSIST_RECOVERIES.labels(outcome="clean")
        a0, c0, r0 = appends.value(), checkpoints.value(), \
            recoveries.value()
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        db.checkpoint()
        db.close()
        again = _durable(tmp_path)
        again.close()
        assert appends.value() == a0 + 1
        assert checkpoints.value() >= c0 + 1
        assert recoveries.value() >= r0 + 1

    def test_checkpoint_and_recover_commands(self, tmp_path):
        from repro.cli import main

        class Out:
            def __init__(self):
                self.text = ""

            def write(self, chunk):
                self.text += chunk

            def flush(self):
                pass

        wal_dir = str(tmp_path)
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        db.close()
        out = Out()
        assert main(["recover", wal_dir], out=out) == 0
        assert "recovery of" in out.text
        assert "sys.t: 1 rows" in out.text
        out = Out()
        assert main(["checkpoint", wal_dir], out=out) == 0
        assert "wal truncated" in out.text
        assert os.path.getsize(os.path.join(wal_dir, "wal.log")) == 0
        out = Out()
        assert main(["recover", wal_dir], out=out) == 0
        assert "sys.t: 1 rows" in out.text

    def test_recover_command_exits_nonzero_when_lossy(self, tmp_path):
        from repro.cli import main
        from repro.storage.durable import _HEADER

        class Out:
            text = ""

            def write(self, chunk):
                self.text += chunk

            def flush(self):
                pass

        wal_dir = str(tmp_path)
        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        db.close()
        # a torn tail: a well-formed header whose payload never landed
        with open(os.path.join(wal_dir, "wal.log"), "ab") as handle:
            handle.write(_HEADER.pack(99, 4096, 0) + b"xx")
        out = Out()
        # lossy recovery: the data that survived is intact, but scripts
        # must see a distinct exit code, not a buried report line
        assert main(["recover", wal_dir], out=out) == 3
        assert "torn" in out.text
        assert "sys.t: 1 rows" in out.text


class _Evil:
    """Pickles into a payload whose reduce would invoke ``os.system``."""

    marker = ""

    def __reduce__(self):
        return (os.system, (f"touch {self.marker}",))


class TestRestrictedUnpickle:
    def _evil_payload(self, tmp_path):
        import pickle as _pickle

        _Evil.marker = str(tmp_path / "pwned")
        return _pickle.dumps(_Evil(), protocol=_pickle.HIGHEST_PROTOCOL)

    def test_hostile_wal_payload_raises_typed(self, tmp_path):
        from repro.storage.durable import decode_payload

        payload = self._evil_payload(tmp_path)
        with pytest.raises(WalError):
            decode_payload(payload)
        assert not os.path.exists(str(tmp_path / "pwned"))

    def test_hostile_wal_record_scans_as_torn(self, tmp_path):
        import struct
        import zlib

        from repro.storage.durable import _HEADER

        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, commit_window_ms=0.0)
        wal.commit(wal.append("insert", {"i": 1}))
        wal.close()
        # a record with valid framing and CRC around hostile bytes: the
        # restricted unpickler is the only thing standing between the
        # scan and an attacker-controlled reduce
        payload = self._evil_payload(tmp_path)
        with open(path, "ab") as handle:
            handle.write(_HEADER.pack(2, len(payload),
                                      zlib.crc32(payload)) + payload)
        scan = scan_wal(path)
        assert scan.torn
        assert [lsn for lsn, _k, _d in scan.records] == [1]
        assert not os.path.exists(str(tmp_path / "pwned"))

    def test_hostile_checkpoint_column_raises_typed(self, tmp_path):
        import json
        import zlib

        db = _durable(tmp_path)
        db.execute("create table t (a integer)")
        db.execute("insert into t values (1)")
        report = db.checkpoint()
        db.close()
        payload = self._evil_payload(tmp_path)
        manifest_path = os.path.join(report.path, MANIFEST_FILENAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        column = manifest["schemas"][0]["tables"][0]["columns"][0]
        # the attacker controls the whole directory, so the manifest
        # CRC matches the hostile bytes — only the unpickler is left
        column["crc32"] = zlib.crc32(payload)
        with open(os.path.join(report.path, column["file"]), "wb") as handle:
            handle.write(payload)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CheckpointError):
            load_checkpoint(report.path)
        assert not os.path.exists(str(tmp_path / "pwned"))


class TestCheckpointWhileWriting:
    def test_concurrent_checkpoints_lose_no_acked_row(self, tmp_path):
        db = _durable(tmp_path, checkpoint_interval=10 ** 9)
        db.execute("create table t (a integer)")
        acked = []
        lock = threading.Lock()
        stop = threading.Event()
        errors = []

        def writer(base):
            i = 0
            while not stop.is_set() and i < 150:
                value = base * 100000 + i
                try:
                    db.execute(f"insert into t values ({value})")
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                with lock:
                    acked.append(value)
                i += 1

        threads = [threading.Thread(target=writer, args=(base,))
                   for base in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                db.checkpoint()
                time.sleep(0.002)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not errors, errors
        with lock:
            acked_set = set(acked)
        db.durability.simulate_crash()
        db.close()
        catalog, report = recover(str(tmp_path))
        survived = set(
            catalog.schema("sys").table("t").columns["a"].bat.tail)
        assert acked_set <= survived, \
            f"lost {sorted(acked_set - survived)[:5]}..."
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.endswith(".tmp") or name.endswith(".stale")]
        assert not leftovers, leftovers
