"""Tests for the Stethoscope facade: offline sessions, pruning,
micro-analysis, tooltips, gradient colouring."""

import pytest

from repro.core.microanalysis import TraceAnalyzer
from repro.core.pruning import (
    ADMINISTRATIVE_FUNCTIONS,
    prune_administrative,
    pruning_report,
)
from repro.core.session import OfflineSession, Stethoscope
from repro.dot import plan_to_dot, plan_to_graph
from repro.errors import StethoscopeError
from repro.mal import Interpreter
from repro.mal.parser import parse_instruction_text
from repro.profiler import Profiler, write_trace
from repro.storage import Catalog, INT
from repro.viz.color import GREEN, RED, WHITE


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT)])
    t.insert_many([[i % 10] for i in range(200)])
    return cat


PLAN_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","x",0);
    X_3 := algebra.select(X_2,1);
    X_4 := bat.mirror(X_3);
    X_5 := algebra.leftjoin(X_4,X_2);
    X_9 := sql.resultSet(1,1);
    X_10 := sql.rsColumn(X_9,"sys.t","x","int",X_5);
    sql.exportResult(X_10);
"""


def run_and_capture(catalog):
    program = parse_instruction_text(PLAN_TEXT)
    profiler = Profiler()
    Interpreter(catalog, listener=profiler).run(program)
    return program, profiler.events


@pytest.fixture
def session(catalog):
    program, events = run_and_capture(catalog)
    return Stethoscope.offline_from_memory(plan_to_dot(program), events)


class TestOfflineSession:
    def test_workflow_builds_graph_from_svg(self, session):
        # the graph came out of the dot -> layout -> svg -> parse chain
        assert set(session.graph.nodes) == {f"n{i}" for i in range(8)}
        assert session.svg_text.startswith('<?xml')

    def test_trace_mapped(self, session):
        assert session.trace_map.coverage() == 1.0

    def test_replay_end_to_end(self, session):
        ran = session.replay.run_to_end()
        assert ran == 16  # 8 instructions x start/done

    def test_tooltip_contains_timing(self, session):
        session.replay.run_to_end()
        text = session.tooltip("n2")
        assert "algebra.select" in text
        assert "elapsed:" in text and "usec" in text

    def test_tooltip_unexecuted(self, catalog):
        program, events = run_and_capture(catalog)
        session = Stethoscope.offline_from_memory(
            plan_to_dot(program), events[:2]
        )
        assert "not executed" in session.tooltip("n5")

    def test_debug_window_prefed(self, session):
        session.replay.fast_forward(6)
        window = session.debug_window("w", {0, 1, 2})
        states = {r.pc: r.state for r in window.rows()}
        assert states[0] == "done"

    def test_birdseye_text(self, session):
        text = session.birdseye()
        assert "sql" in text and "algebra" in text

    def test_analyzer_summary(self, session):
        summary = session.analyzer().summary()
        assert summary["instructions"] == 8
        assert summary["events"] == 16
        assert summary["p95_usec"] >= summary["p50_usec"]

    def test_render_ascii(self, session):
        session.replay.run_to_end()
        text = session.render_ascii()
        assert "#" in text

    def test_save_svg(self, session, tmp_path):
        path = str(tmp_path / "display.svg")
        session.save_svg(path)
        with open(path) as f:
            assert "<svg" in f.read()

    def test_save_screenshot(self, session, tmp_path):
        from repro.viz.raster import load_ppm

        path = str(tmp_path / "display.ppm")
        session.replay.run_to_end()
        session.save_screenshot(path, width=320, height=240)
        image = load_ppm(path)
        assert (image.width, image.height) == (320, 240)

    def test_minimap_with_viewport(self, session):
        session.view.camera.zoom_in(3)
        text = session.minimap()
        assert "." in text and "+" in text

    def test_memory_sparkline(self, session):
        text = session.memory_sparkline(width=30)
        assert "peak" in text

    def test_gradient_coloring(self, session):
        painted = session.apply_gradient_coloring()
        assert painted == 8
        fills = {session.space.shape_of(f"n{i}").fill for i in range(8)}
        assert len(fills) > 1  # a range of colours, not binary
        assert WHITE not in fills

    def test_threshold_session(self, catalog):
        program, events = run_and_capture(catalog)
        session = Stethoscope.offline_from_memory(
            plan_to_dot(program), events, threshold_usec=5
        )
        session.replay.run_to_end()
        colored = {n: c for n, c in session.painter.rendered.items()}
        assert colored  # every done event colours under threshold mode


class TestOfflineFiles:
    def test_offline_from_files(self, catalog, tmp_path):
        program, events = run_and_capture(catalog)
        dot_path = str(tmp_path / "plan.dot")
        trace_path = str(tmp_path / "query.trace")
        with open(dot_path, "w") as f:
            f.write(plan_to_dot(program))
        write_trace(events, trace_path)
        session = Stethoscope.offline(dot_path, trace_path)
        assert session.trace_map.coverage() == 1.0

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(StethoscopeError):
            Stethoscope.offline(str(tmp_path / "no.dot"),
                                str(tmp_path / "no.trace"))


class TestPruning:
    def test_removes_administrative_nodes(self, session):
        pruned = session.pruned_view()
        labels = [pruned.node(n).label for n in pruned.nodes]
        assert all("sql.mvc" not in label for label in labels)
        assert pruned.node_count() < session.graph.node_count()

    def test_relinks_edges_transitively(self):
        graph = plan_to_graph(parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := language.pass(X_2);
        """))
        # n0 (mvc) pruned; n1 keeps no predecessor; n2 (pass) pruned
        pruned = prune_administrative(graph)
        assert set(pruned.nodes) == {"n1"}

    def test_relink_through_chain(self):
        graph = plan_to_graph(parse_instruction_text("""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := language.pass(X_2);
        """))
        # keep mvc out of vocabulary: n0->n1 stays; pass pruned
        pruned = prune_administrative(graph, vocabulary={"language.pass"})
        assert set(pruned.nodes) == {"n0", "n1"}
        assert pruned.successors("n0") == ["n1"]

    def test_bridge_edge_created(self):
        graph = plan_to_graph(parse_instruction_text("""
            X_1 := sql.bind(X_0,"sys","t","x",0);
            X_2 := language.pass(X_1);
            X_3 := aggr.count(X_2);
        """.replace("X_0", "X_1")))  # placeholder; rebuilt below
        # build manually instead: a -> pass -> b
        from repro.dot import Digraph

        g = Digraph()
        g.add_node("n0", {"label": "X_1 := sql.bind();"})
        g.add_node("n1", {"label": "X_2 := language.pass(X_1);"})
        g.add_node("n2", {"label": "X_3 := aggr.count(X_2);"})
        g.add_edge("n0", "n1")
        g.add_edge("n1", "n2")
        pruned = prune_administrative(g, vocabulary={"language.pass"})
        assert pruned.successors("n0") == ["n2"]

    def test_result_plumbing_option(self, session):
        kept = session.pruned_view(prune_result_plumbing=True)
        labels = [kept.node(n).label for n in kept.nodes]
        assert all("exportResult" not in label for label in labels)

    def test_report(self, session):
        pruned = session.pruned_view()
        report = pruning_report(session.graph, pruned)
        assert "pruned" in report

    def test_trace_mapping_still_works_on_pruned(self, session):
        from repro.core.mapping import PlanTraceMap

        pruned = session.pruned_view()
        events = [e for e in session.events
                  if f"n{e.pc}" in pruned.nodes]
        trace_map = PlanTraceMap(pruned, events)
        assert trace_map.coverage() == 1.0


class TestMicroAnalysis:
    def test_per_instruction_sorted(self, session):
        stats = session.analyzer().per_instruction()
        totals = [s.total_usec for s in stats]
        assert totals == sorted(totals, reverse=True)

    def test_per_operator_shares_sum_to_one(self, session):
        operators = session.analyzer().per_operator()
        assert sum(o.share for o in operators) == pytest.approx(1.0)

    def test_percentiles_ordered(self, session):
        analyzer = session.analyzer()
        assert analyzer.percentile(0) <= analyzer.percentile(50) <= \
            analyzer.percentile(100)

    def test_percentile_range_check(self, session):
        with pytest.raises(ValueError):
            session.analyzer().percentile(150)

    def test_window_slicing(self, session):
        analyzer = session.analyzer()
        full = analyzer.summary()["events"]
        half = analyzer.window(0, analyzer.summary()["makespan_usec"] // 2)
        assert half.summary()["events"] < full

    def test_csv_export(self, session):
        csv = session.analyzer().to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("pc,")
        assert len(lines) == 9  # header + 8 instructions

    def test_empty_trace(self):
        analyzer = TraceAnalyzer([])
        assert analyzer.summary()["events"] == 0
        assert analyzer.percentile(50) == 0
