"""Property-based tests (hypothesis) over the core data structures and
invariants: BAT algebra laws, parser round-trips, layout invariants,
colouring-algorithm safety, and optimizer answer preservation."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.coloring import PairSequenceColorizer
from repro.dot import Digraph, graph_to_dot, parse_dot
from repro.layout import layout_graph
from repro.mal import Interpreter, format_program, parse_program
from repro.mal.optimizer import sequential_pipe
from repro.profiler.events import TraceEvent, format_event, parse_event
from repro.storage import BAT, INT, STR, Catalog, nil
from repro.storage.types import format_value, parse_value
from repro.viz.color import GREEN, RED, Color


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

ints_or_nil = st.one_of(st.integers(-1000, 1000), st.none())
int_lists = st.lists(st.integers(-1000, 1000), max_size=60)
nilable_lists = st.lists(ints_or_nil, max_size=60)


def bats(values=int_lists):
    return values.map(lambda vs: BAT(INT, vs))


# ---------------------------------------------------------------------------
# BAT invariants
# ---------------------------------------------------------------------------


class TestBatProperties:
    @given(nilable_lists, st.integers(-500, 500), st.integers(-500, 500))
    def test_select_returns_subset_within_bounds(self, values, a, b):
        low, high = min(a, b), max(a, b)
        bat = BAT(INT, values)
        out = bat.select(low, high)
        assert all(low <= v <= high for v in out.tail)
        assert out.count() <= bat.count()

    @given(nilable_lists)
    def test_select_unbounded_drops_only_nils(self, values):
        bat = BAT(INT, values)
        out = bat.select(nil, nil)
        assert out.count() == sum(1 for v in values if v is not None)

    @given(int_lists)
    def test_sort_is_permutation_and_ordered(self, values):
        bat = BAT(INT, values)
        out = bat.sort()
        assert sorted(values) == out.tail
        assert sorted(out.heads()) == list(range(len(values)))

    @given(int_lists)
    def test_reverse_is_involution_on_heads(self, values):
        bat = BAT(INT, [abs(v) for v in values])
        back = bat.reverse().reverse()
        assert list(back.heads()) == list(bat.heads())
        assert back.tail == bat.tail

    @given(int_lists)
    def test_group_histogram_sums_to_count(self, values):
        bat = BAT(INT, values)
        groups, extents, hist = bat.group()
        assert sum(hist.tail) == bat.count()
        assert len(extents) == len(hist)
        assert all(0 <= g < len(extents) for g in groups.tail)

    @given(int_lists)
    def test_grouped_sum_equals_scalar_sum(self, values):
        bat = BAT(INT, values)
        groups, extents, _hist = bat.group()
        sums = bat.grouped_aggregate(groups, len(extents), "sum")
        if values:
            assert sum(sums.tail) == sum(values)

    @given(nilable_lists)
    def test_mirror_heads_equal_tails(self, values):
        bat = BAT(INT, values)
        mirror = bat.mirror()
        assert list(mirror.heads()) == list(mirror.tail)

    @given(int_lists, st.integers(0, 50), st.integers(0, 50))
    def test_slice_matches_python_slice(self, values, first, length):
        bat = BAT(INT, values)
        out = bat.slice_(first, first + length - 1)
        assert out.tail == values[first:first + length]

    @given(int_lists)
    def test_calc_add_zero_is_identity(self, values):
        bat = BAT(INT, values)
        assert bat.calc_const(0, "+").tail == values

    @given(nilable_lists)
    def test_calc_preserves_length_and_nils(self, values):
        bat = BAT(INT, values)
        out = bat.calc_const(3, "*")
        assert len(out) == len(bat)
        for original, result in zip(values, out.tail):
            assert (original is None) == (result is None)


# ---------------------------------------------------------------------------
# literal / event / dot round-trips
# ---------------------------------------------------------------------------


class TestRoundTripProperties:
    @given(st.one_of(
        st.integers(-10**9, 10**9),
        st.text(max_size=40),
        st.booleans(),
        st.none(),
    ))
    def test_mal_literal_roundtrip(self, value):
        assert parse_value(format_value(value)) == value

    @given(
        st.integers(0, 10**6), st.integers(0, 10**9),
        st.sampled_from(["start", "done"]), st.integers(0, 10**4),
        st.integers(0, 64), st.integers(0, 10**7), st.integers(0, 10**9),
        st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                max_size=60),
    )
    def test_trace_event_roundtrip(self, seq, clock, status, pc, thread,
                                   usec, rss, stmt):
        event = TraceEvent(seq, clock, status, pc, thread, usec, rss, stmt)
        assert parse_event(format_event(event)) == event

    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40,
    ))
    def test_dot_roundtrip_arbitrary_graph(self, edge_list):
        graph = Digraph("p")
        for src, dst in edge_list:
            graph.add_edge(f"n{src}", f"n{dst}")
        parsed = parse_dot(graph_to_dot(graph))
        assert set(parsed.nodes) == set(graph.nodes)
        assert parsed.edge_count() == graph.edge_count()

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_color_hex_roundtrip(self, r, g, b):
        color = Color(r, g, b)
        assert Color.from_hex(color.to_hex()) == color


# ---------------------------------------------------------------------------
# layout invariants
# ---------------------------------------------------------------------------


class TestLayoutProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        min_size=1, max_size=30,
    ))
    def test_layout_total_and_nonoverlapping(self, edge_list):
        graph = Digraph()
        for src, dst in edge_list:
            if src != dst:
                graph.add_edge(f"n{src}", f"n{dst}")
        if not graph.nodes:
            return
        layout = layout_graph(graph)
        # every node placed
        assert set(layout.nodes) == set(graph.nodes)
        # no same-rank overlap
        by_rank = {}
        for node in layout.nodes.values():
            by_rank.setdefault(node.rank, []).append(node)
        for nodes in by_rank.values():
            nodes.sort(key=lambda n: n.x)
            for left, right in zip(nodes, nodes[1:]):
                assert left.right <= right.left + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        min_size=1, max_size=25,
    ))
    def test_layout_every_edge_drawn(self, edge_list):
        graph = Digraph()
        for src, dst in edge_list:
            graph.add_edge(f"a{src}", f"b{dst}")
        layout = layout_graph(graph)
        assert len(layout.edges) == graph.edge_count()
        assert all(len(e.points) >= 2 for e in layout.edges)


# ---------------------------------------------------------------------------
# colouring algorithm safety
# ---------------------------------------------------------------------------


def event_stream(pairs):
    return [
        TraceEvent(event=i, clock_usec=i * 10, status=status, pc=pc,
                   thread=0, usec=5 if status == "done" else 0,
                   rss_bytes=0, stmt="x := a.b();")
        for i, (status, pc) in enumerate(pairs)
    ]


class TestColoringProperties:
    @given(st.lists(st.integers(0, 30), max_size=60))
    def test_well_nested_trace_invariants(self, pcs):
        """For any sequence built of adjacent (start,done) pairs, nothing
        is ever coloured."""
        pairs = [p for pc in pcs for p in (("start", pc), ("done", pc))]
        colorizer = PairSequenceColorizer()
        actions = []
        for event in event_stream(pairs):
            actions.extend(colorizer.push(event))
        assert actions == []

    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(st.sampled_from(["start", "done"]), st.integers(0, 8)),
        max_size=60,
    ))
    def test_arbitrary_stream_safety(self, pairs):
        """On any stream: RED precedes GREEN per pc, no double-RED
        without an intervening GREEN, and actions reference seen pcs."""
        colorizer = PairSequenceColorizer()
        actions = []
        for event in event_stream(pairs):
            actions.extend(colorizer.push(event))
        actions.extend(colorizer.finish())
        seen_pcs = {pc for _s, pc in pairs}
        state = {}
        for action in actions:
            assert action.pc in seen_pcs
            if action.color == RED:
                assert state.get(action.pc) != "red"
                state[action.pc] = "red"
            elif action.color == GREEN:
                assert state.get(action.pc) == "red"
                state[action.pc] = "green"


# ---------------------------------------------------------------------------
# MAL parser / optimizer properties
# ---------------------------------------------------------------------------


class TestMalProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30),
           st.integers(-100, 100))
    def test_optimized_plan_preserves_answer(self, values, threshold):
        catalog = Catalog()
        table = catalog.schema().create_table("t", [("x", INT)])
        table.insert_many([[v] for v in values])
        text = f"""
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := algebra.thetaselect(X_2,{threshold},">");
            X_4 := aggr.count(X_3);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_4);
            sql.exportResult(X_10);
        """
        from repro.mal.parser import parse_instruction_text

        program = parse_instruction_text(text)
        plain = Interpreter(catalog).run(program).rows()
        optimized = sequential_pipe().apply(
            parse_instruction_text(text)
        )
        assert Interpreter(catalog).run(optimized).rows() == plain
        assert plain == [(sum(1 for v in values if v > threshold),)]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-50, 50), min_size=2, max_size=40),
        st.integers(-50, 50),
        st.sampled_from(["sum", "count", "min", "max"]),
        st.integers(2, 5),
    )
    def test_mitosis_preserves_random_aggregates(self, values, threshold,
                                                 aggregate, nparts):
        """For any data, filter threshold, aggregate and partition count,
        the mitosis-partitioned parallel plan computes the same answer as
        the sequential interpreter."""
        from repro.mal.dataflow import SimulatedScheduler
        from repro.mal.optimizer import default_pipe
        from repro.mal.parser import parse_instruction_text

        catalog = Catalog()
        table = catalog.schema().create_table("t", [("x", INT)])
        table.insert_many([[v] for v in values])
        text = f"""
            X_1 := sql.mvc();
            X_2:bat[:oid,:int] := sql.bind(X_1,"sys","t","x",0);
            X_3:bat[:oid,:int] := algebra.thetaselect(X_2,{threshold},">");
            X_4 := aggr.{aggregate}(X_3);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.t","v","lng",X_4);
            sql.exportResult(X_10);
        """
        plain = Interpreter(catalog).run(
            parse_instruction_text(text)
        ).rows()
        pipeline = default_pipe(nparts=nparts, mitosis_threshold=1)
        parallel = pipeline.apply(parse_instruction_text(text))
        result = SimulatedScheduler(catalog, workers=nparts).run(parallel)
        assert result.rows() == plain

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(
        ["sql.mvc", "language.pass", "calc.add"]
    ), min_size=1, max_size=20))
    def test_format_parse_roundtrip_random_programs(self, ops):
        from repro.mal.ast import Const, MalProgram, Var

        program = MalProgram("user.rand")
        last = None
        for op in ops:
            module, function = op.split(".")
            if op == "sql.mvc":
                last = program.call(module, function)
            elif op == "language.pass":
                args = [last] if last is not None else [Const(1)]
                program.add(module, function, args)
            else:
                args = [last or Const(1), Const(2)]
                last = program.call(module, function, args)
        text = format_program(program)
        again = parse_program(text)
        assert [i.qualified_name for i in again] == \
            [i.qualified_name for i in program]


# ---------------------------------------------------------------------------
# partition-parallel invariants
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def parallel_env():
    """One catalog, two databases: in-process and pool-backed."""
    import repro.tpch as tpch
    from repro.server.database import Database

    catalog = Catalog()
    tpch.populate(catalog, scale_factor=0.05, seed=7)
    serial = Database(catalog=catalog, workers=4, mitosis_threshold=50)
    parallel = Database(catalog=catalog, workers=4, mitosis_threshold=50,
                        parallel_workers=2, parallel_min_rows=0)
    yield serial, parallel
    parallel.close()


@pytest.fixture(scope="module")
def adaptive_env():
    """Shared catalog, three databases: a ``static_pipe`` oracle, an
    adaptive database (plan cache off so warm executions recompile
    against the stats the cold run fed back), and an adaptive database
    executing on a 2-process partition worker pool."""
    import repro.tpch as tpch
    from repro.server.database import Database

    catalog = Catalog()
    tpch.populate(catalog, scale_factor=0.05, seed=7)
    static = Database(catalog=catalog, workers=4, mitosis_threshold=50,
                      pipeline_name="static_pipe")
    adaptive = Database(catalog=catalog, workers=4, mitosis_threshold=50,
                        pipeline_name="default_pipe", plan_cache_size=0)
    pooled = Database(catalog=catalog, workers=4, mitosis_threshold=50,
                      pipeline_name="default_pipe", plan_cache_size=0,
                      parallel_workers=2, parallel_min_rows=0)
    yield static, adaptive, pooled
    pooled.close()
    adaptive.close()
    static.close()


def _trace_shape(execution):
    """The execution's trace shape: the multiset of executed kernels
    (order-insensitive — adaptive reordering permutes a select chain
    but never changes which kernels run)."""
    return sorted(f"{run.module}.{run.function}"
                  for run in execution.runs)


class TestAdaptiveOrderProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_queries_agree_adaptive_on_vs_off(self, adaptive_env,
                                                     seed):
        """For any generated query, cold and warm adaptive compiles —
        serial and on the 2-worker pool — return byte-identical rows
        and the same trace event shape as the static pipeline."""
        import random

        from repro.workloads import random_query

        static, adaptive, pooled = adaptive_env
        sql = random_query(random.Random(seed))
        expected = static.execute(sql)
        shape = _trace_shape(expected.execution)
        for db in (adaptive, pooled):
            for _warmth in ("cold", "warm"):
                outcome = db.execute(sql)
                assert outcome.rows == expected.rows
                assert _trace_shape(outcome.execution) == shape


class TestParallelProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_queries_agree_serial_vs_parallel(self, parallel_env,
                                                     seed):
        import random

        from repro.workloads import random_query

        serial, parallel = parallel_env
        sql = random_query(random.Random(seed))
        assert serial.execute(sql).rows == parallel.execute(sql).rows

    @settings(max_examples=50, deadline=None)
    @given(int_lists, st.integers(1, 8), st.integers(0, 2**32 - 1))
    def test_pack_of_any_partition_permutation_preserves_heads(
            self, values, nparts, seed):
        import random

        from repro.mal.modules.mat import pack

        rng = random.Random(seed)
        # split into nparts contiguous partitions with global head oids
        bounds = sorted(rng.randint(0, len(values))
                        for _ in range(nparts - 1))
        parts, start = [], 0
        for end in bounds + [len(values)]:
            parts.append(BAT(INT, values[start:end], hseqbase=start))
            start = end
        rng.shuffle(parts)
        packed = pack(None, None, parts)
        # head oid -> value survives any pack order of the partitions
        assert dict(zip(packed.heads(), packed.tail)) == \
            dict(enumerate(values))
        assert len(packed) == len(values)
