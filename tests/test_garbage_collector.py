"""Tests for the garbage-collector optimizer pass."""

import pytest

from repro.mal import Interpreter
from repro.mal.ast import Var
from repro.mal.optimizer import GarbageCollector, default_pipe
from repro.mal.parser import parse_instruction_text
from repro.storage import Catalog, INT

TEXT = """
    X_1 := sql.mvc();
    X_2:bat[:oid,:int] := sql.bind(X_1,"sys","t","x",0);
    X_3:bat[:oid,:int] := algebra.thetaselect(X_2,3,">");
    X_4 := aggr.count(X_3);
    X_9 := sql.resultSet(1,1);
    X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_4);
    sql.exportResult(X_10);
"""


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT)])
    t.insert_many([[i] for i in range(10)])
    return cat


def passes_of(program):
    return [
        i.args[0].name for i in program
        if i.qualified_name == "language.pass" and i.args
    ]


class TestGarbageCollector:
    def test_releases_bats_after_last_use(self):
        out = GarbageCollector().run(parse_instruction_text(TEXT))
        released = passes_of(out)
        assert "X_2" in released and "X_3" in released

    def test_release_placed_after_last_use(self):
        out = GarbageCollector().run(parse_instruction_text(TEXT))
        by_pc = {i.pc: i for i in out}
        release_pc = next(
            i.pc for i in out
            if i.qualified_name == "language.pass"
            and i.args and i.args[0].name == "X_2"
        )
        last_use_pc = max(
            i.pc for i in out
            if i.qualified_name != "language.pass"
            and "X_2" in list(i.uses())
        )
        assert release_pc == last_use_pc + 1

    def test_scalars_not_released(self):
        out = GarbageCollector().run(parse_instruction_text(TEXT))
        assert "X_4" not in passes_of(out)  # aggr result is scalar (untyped
        # in this text, hence not provably a BAT)

    def test_protected_sources_not_released(self):
        out = GarbageCollector().run(parse_instruction_text(TEXT))
        released = passes_of(out)
        assert "X_1" not in released
        assert "X_9" not in released and "X_10" not in released

    def test_idempotent(self):
        once = GarbageCollector().run(parse_instruction_text(TEXT))
        twice = GarbageCollector().run(once)
        assert len(twice) == len(once)

    def test_answer_unchanged(self, catalog):
        program = parse_instruction_text(TEXT)
        base = Interpreter(catalog).run(program).rows()
        collected = GarbageCollector().run(parse_instruction_text(TEXT))
        assert Interpreter(catalog).run(collected).rows() == base

    def test_default_pipe_inserts_releases(self, catalog):
        from repro.sqlfe import compile_sql

        pipe = default_pipe(nparts=2, mitosis_threshold=1)
        program = pipe.apply(
            compile_sql(catalog, "select count(*) from t where x > 3")
        )
        assert any(
            i.qualified_name == "language.pass" for i in program
        )
        from repro.mal.dataflow import SimulatedScheduler

        assert SimulatedScheduler(catalog, workers=2).run(program).rows() \
            == [(6,)]

    def test_validates_after_pass(self):
        out = GarbageCollector().run(parse_instruction_text(TEXT))
        out.validate()
