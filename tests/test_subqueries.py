"""Tests for uncorrelated subqueries: IN (SELECT ...) and scalar
subqueries."""

import pytest

from repro.errors import BindError, MalRuntimeError, SqlError
from repro.mal import Interpreter
from repro.mal.optimizer import sequential_pipe
from repro.sqlfe import compile_sql, parse_sql
from repro.sqlfe.ast import InSubquery, ScalarSubquery
from repro.storage import Catalog, INT, STR


@pytest.fixture
def catalog():
    cat = Catalog()
    orders = cat.schema().create_table(
        "orders", [("o_id", INT), ("o_cust", INT), ("o_total", INT)]
    )
    orders.insert_many([
        [1, 10, 100], [2, 20, 250], [3, 10, 50], [4, 30, 300], [5, 20, 120],
    ])
    vip = cat.schema().create_table("vip", [("v_cust", INT)])
    vip.insert_many([[10], [30]])
    cat.schema().create_table("empty", [("e_x", INT)])
    return cat


def run(catalog, sql):
    program = compile_sql(catalog, sql)
    return Interpreter(catalog).run(program).rows()


class TestParsing:
    def test_in_subquery_parsed(self):
        stmt = parse_sql(
            "select a from t where a in (select b from u)"
        )
        assert isinstance(stmt.where, InSubquery)
        assert not stmt.where.negated

    def test_not_in_subquery(self):
        stmt = parse_sql(
            "select a from t where a not in (select b from u)"
        )
        assert stmt.where.negated

    def test_scalar_subquery_parsed(self):
        stmt = parse_sql(
            "select a from t where a > (select max(b) from u)"
        )
        assert isinstance(stmt.where.right, ScalarSubquery)

    def test_plain_in_list_still_works(self):
        from repro.sqlfe.ast import InList

        stmt = parse_sql("select a from t where a in (1, 2)")
        assert isinstance(stmt.where, InList)


class TestInSubquery:
    def test_basic_semijoin(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_cust in (select v_cust from vip)",
        )
        assert rows == [(1,), (3,), (4,)]

    def test_not_in(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_cust not in (select v_cust from vip)",
        )
        assert rows == [(2,), (5,)]

    def test_in_empty_subquery(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_cust in (select e_x from empty)",
        )
        assert rows == []

    def test_subquery_with_filter(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders where o_cust in "
            "(select v_cust from vip where v_cust > 20)",
        )
        assert rows == [(4,)]

    def test_subquery_with_group_by_having(self, catalog):
        # customers with more than one order
        rows = run(
            catalog,
            "select o_id from orders where o_cust in "
            "(select o_cust from orders group by o_cust "
            " having count(*) > 1) order by o_id",
        )
        assert rows == [(1,), (2,), (3,), (5,)]

    def test_combined_with_other_predicates(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_cust in (select v_cust from vip) and o_total > 60",
        )
        assert rows == [(1,), (4,)]

    def test_multicolumn_subquery_rejected(self, catalog):
        with pytest.raises(SqlError):
            run(
                catalog,
                "select o_id from orders "
                "where o_cust in (select v_cust, v_cust from vip)",
            )

    def test_correlated_subquery_rejected(self, catalog):
        with pytest.raises(BindError):
            run(
                catalog,
                "select o_id from orders "
                "where o_cust in (select v_cust from vip "
                "where v_cust = o_total)",
            )


class TestScalarSubquery:
    def test_aggregate_comparison(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_total > (select avg(o_total) from orders)",
        )
        assert rows == [(2,), (4,)]  # avg = 164

    def test_scalar_in_select_list(self, catalog):
        rows = run(
            catalog,
            "select o_id, (select max(o_total) from orders) from orders "
            "where o_id = 1",
        )
        assert rows == [(1, 300)]

    def test_single_row_non_aggregate(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_cust = (select v_cust from vip where v_cust = 10)",
        )
        assert rows == [(1,), (3,)]

    def test_empty_scalar_subquery_is_null(self, catalog):
        rows = run(
            catalog,
            "select o_id from orders "
            "where o_cust = (select e_x from empty)",
        )
        assert rows == []  # comparison with nil matches nothing

    def test_multirow_scalar_subquery_errors(self, catalog):
        with pytest.raises(MalRuntimeError):
            run(
                catalog,
                "select o_id from orders "
                "where o_cust = (select v_cust from vip)",
            )

    def test_scalar_subquery_in_having(self, catalog):
        rows = run(
            catalog,
            "select o_cust, sum(o_total) as s from orders group by o_cust "
            "having sum(o_total) > (select avg(o_total) from orders) "
            "order by o_cust",
        )
        # avg(o_total) = 164; customer 10 sums to 150 and drops out
        assert rows == [(20, 370), (30, 300)]


class TestOptimizersAndSubqueries:
    def test_sequential_pipe_preserves_answer(self, catalog):
        sql = ("select o_id from orders "
               "where o_cust in (select v_cust from vip)")
        plain = run(catalog, sql)
        optimized = sequential_pipe().apply(compile_sql(catalog, sql))
        assert Interpreter(catalog).run(optimized).rows() == plain

    def test_plan_contains_contains_op(self, catalog):
        sql = ("select o_id from orders "
               "where o_cust in (select v_cust from vip)")
        program = compile_sql(catalog, sql)
        assert any(
            i.qualified_name == "batcalc.contains" for i in program
        )
