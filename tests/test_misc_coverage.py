"""Edge cases and smaller code paths across modules."""

import pytest

from repro.errors import MalRuntimeError, SqlError
from repro.mal import Interpreter
from repro.mal.parser import parse_instruction_text
from repro.profiler.events import TraceEvent
from repro.storage import BAT, Catalog, INT, STR, nil


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT), ("s", STR)])
    t.insert_many([[i, f"v{i}"] for i in range(10)])
    return cat


class TestMalEdgeCases:
    def run(self, catalog, text):
        return Interpreter(catalog).run(parse_instruction_text(text))

    def test_select_five_argument_form(self, catalog):
        result = self.run(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := algebra.select(X_2,2,5,false,true);
            X_4 := aggr.count(X_3);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_4);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [(3,)]  # (2,5] -> 3,4,5

    def test_select_bad_arity(self, catalog):
        with pytest.raises(MalRuntimeError):
            self.run(catalog, """
                X_1 := sql.mvc();
                X_2 := sql.bind(X_1,"sys","t","x",0);
                X_3 := algebra.select(X_2,1,2,3,4,5,6);
            """)

    def test_bat_new_from_literal_type(self, catalog):
        result = self.run(catalog, """
            X_1:bat[:oid,:str] := bat.new(nil:oid,nil:str);
            X_2 := bat.append(X_1,"hello");
            X_3 := aggr.count(X_2);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_3);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [(1,)]

    def test_bat_insert_and_copy(self, catalog):
        result = self.run(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","x",0);
            X_3 := bat.copy(X_2);
            X_4:bat[:oid,:int] := bat.new(nil:oid,nil:int);
            X_5 := bat.insert(X_4,X_3);
            X_6 := aggr.count(X_5);
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_6);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [(10,)]

    def test_calc_min_max_ifthenelse(self, catalog):
        result = self.run(catalog, """
            X_1 := calc.min(3,7);
            X_2 := calc.max(X_1,5);
            X_3 := calc.ifthenelse(true,X_2,0);
            X_4 := calc.isnil(X_3);
            X_5 := calc.not(X_4);
            X_9 := sql.resultSet(2,1);
            X_10 := sql.rsColumn(X_9,"sys.t","v","int",X_3);
            X_11 := sql.rsColumn(X_10,"sys.t","b","bit",X_5);
            sql.exportResult(X_11);
        """)
        assert result.rows() == [(5, True)]

    def test_batstr_functions(self, catalog):
        result = self.run(catalog, """
            X_1 := sql.mvc();
            X_2 := sql.bind(X_1,"sys","t","s",0);
            X_3 := batstr.toUpper(X_2);
            X_4 := batstr.length(X_3);
            X_5 := batstr.substring(X_3,1,1);
            X_9 := sql.resultSet(2,10);
            X_10 := sql.rsColumn(X_9,"sys.t","len","int",X_4);
            X_11 := sql.rsColumn(X_10,"sys.t","first","str",X_5);
            sql.exportResult(X_11);
        """)
        assert result.rows()[0] == (2, "V")

    def test_mtime_year(self, catalog):
        result = self.run(catalog, """
            X_1 := mtime.year("1994-06-15");
            X_9 := sql.resultSet(1,1);
            X_10 := sql.rsColumn(X_9,"sys.t","y","int",X_1);
            sql.exportResult(X_10);
        """)
        assert result.rows() == [(1994,)]


class TestFilterWindowExtras:
    def test_watch_pcs_and_threads(self):
        from repro.core.options import FilterOptionsWindow

        window = FilterOptionsWindow()
        window.watch_pcs({1, 2})
        window.watch_threads({0})
        event_filter = window.build()
        keep = TraceEvent(0, 0, "done", 1, 0, 5, 0, "a.b();")
        wrong_pc = TraceEvent(1, 0, "done", 9, 0, 5, 0, "a.b();")
        wrong_thread = TraceEvent(2, 0, "done", 1, 3, 5, 0, "a.b();")
        assert event_filter.matches(keep)
        assert not event_filter.matches(wrong_pc)
        assert not event_filter.matches(wrong_thread)
        window.watch_pcs(None)
        assert window.build().pcs is None


class TestGroupSpaceErrors:
    def test_like_in_group_space_rejected(self, catalog):
        from repro.sqlfe import compile_sql

        with pytest.raises(SqlError):
            compile_sql(
                catalog,
                "select s, count(*) from t group by s having s like 'v%'",
            )

    def test_bare_column_in_having_rejected(self, catalog):
        from repro.sqlfe import compile_sql

        with pytest.raises(SqlError):
            compile_sql(
                catalog,
                "select s, count(*) from t group by s having x > 1",
            )


class TestCliServeCatalog:
    def test_serve_loads_saved_catalog(self, tmp_path):
        import io
        import socket
        import threading
        import time

        from repro.cli import main
        from repro.storage.persist import save_catalog

        cat = Catalog()
        t = cat.schema().create_table("kv", [("k", INT)])
        t.insert_many([[1], [2], [3]])
        db_path = str(tmp_path / "db.json")
        save_catalog(cat, db_path)

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        thread = threading.Thread(
            target=main,
            args=(["serve", "--port", str(port), "--catalog", db_path,
                   "--max-seconds", "5"],),
            kwargs={"out": io.StringIO()},
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 4
        code, out = 1, ""
        while time.monotonic() < deadline:
            buffer = io.StringIO()
            code = main(["query", "select count(*) from kv",
                         "--port", str(port)], out=buffer)
            out = buffer.getvalue()
            if code == 0:
                break
            time.sleep(0.1)
        assert code == 0 and "3" in out
        thread.join(timeout=8)
