"""Tests for the raster (PPM screenshot) backend."""

import pytest

from repro.dot import plan_to_graph
from repro.errors import VizError
from repro.layout import layout_graph
from repro.mal.parser import parse_instruction_text
from repro.viz import Camera, build_virtual_space
from repro.viz.color import Color, GREEN, RED, WHITE
from repro.viz.raster import (
    RasterImage,
    RasterRenderer,
    load_ppm,
    screenshot,
)


@pytest.fixture
def space():
    program = parse_instruction_text("""
        X_1 := sql.mvc();
        X_2 := sql.bind(X_1,"sys","t","x",0);
        X_3 := algebra.select(X_2,1);
        sql.exportResult(X_3);
    """)
    return build_virtual_space(layout_graph(plan_to_graph(program)))


class TestRasterImage:
    def test_background_white(self):
        image = RasterImage(10, 10)
        assert image.pixel(5, 5) == WHITE

    def test_fill_rect(self):
        image = RasterImage(10, 10)
        image.fill_rect(2, 2, 4, 4, RED)
        assert image.pixel(3, 3) == RED
        assert image.pixel(6, 6) == WHITE

    def test_fill_rect_clipped(self):
        image = RasterImage(5, 5)
        image.fill_rect(-10, -10, 100, 100, GREEN)
        assert image.pixel(0, 0) == GREEN
        assert image.pixel(4, 4) == GREEN

    def test_outline_keeps_interior(self):
        image = RasterImage(10, 10)
        image.outline_rect(1, 1, 8, 8, RED)
        assert image.pixel(1, 4) == RED
        assert image.pixel(4, 4) == WHITE

    def test_line_endpoints(self):
        image = RasterImage(10, 10)
        image.draw_line(0, 0, 9, 9, RED)
        assert image.pixel(0, 0) == RED
        assert image.pixel(9, 9) == RED
        assert image.pixel(5, 5) == RED

    def test_invalid_dimensions(self):
        with pytest.raises(VizError):
            RasterImage(0, 5)

    def test_ppm_roundtrip(self, tmp_path):
        image = RasterImage(7, 3)
        image.fill_rect(1, 1, 2, 2, RED)
        path = str(tmp_path / "img.ppm")
        image.save(path)
        loaded = load_ppm(path)
        assert loaded.width == 7 and loaded.height == 3
        assert loaded.pixel(1, 1) == RED
        assert loaded.pixel(6, 0) == WHITE

    def test_load_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"PNG nope")
        with pytest.raises(VizError):
            load_ppm(str(path))


class TestRenderer:
    def test_nodes_visible_in_render(self, space):
        camera = Camera()
        camera.fit(space.bounds(), 200, 150)
        image = RasterRenderer(200, 150).render(space, camera)
        # some pixels must be non-white (boxes and edges drawn)
        import numpy as np

        non_white = (image.pixels != 255).any(axis=2).sum()
        assert non_white > 50

    def test_colored_state_visible(self, space):
        space.shape_of("n2").fill = RED
        camera = Camera()
        camera.fit(space.bounds(), 300, 200)
        rendered = RasterRenderer(300, 200).render(space, camera)
        import numpy as np

        reds = (
            (rendered.pixels[:, :, 0] == RED.r)
            & (rendered.pixels[:, :, 1] == RED.g)
        ).sum()
        assert reds > 0

    def test_screenshot_one_call(self, space, tmp_path):
        path = str(tmp_path / "plan.ppm")
        image = screenshot(space, path, width=320, height=240)
        assert image.width == 320
        loaded = load_ppm(path)
        assert loaded.height == 240
