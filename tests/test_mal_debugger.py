"""Tests for the GDB-like MAL debugger."""

import pytest

from repro.errors import MalRuntimeError
from repro.mal.debugger import MalDebugger
from repro.mal.parser import parse_instruction_text
from repro.storage import Catalog, INT


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT)])
    t.insert_many([[i] for i in range(20)])
    return cat


PLAN = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","x",0);
    X_3 := algebra.thetaselect(X_2,10,">=");
    X_4 := aggr.count(X_3);
    X_9 := sql.resultSet(1,1);
    X_10 := sql.rsColumn(X_9,"sys.t","n","lng",X_4);
    sql.exportResult(X_10);
"""


def make(catalog):
    return MalDebugger(catalog, parse_instruction_text(PLAN))


class TestStepping:
    def test_step_executes_one(self, catalog):
        mdb = make(catalog)
        text = mdb.step()
        assert "sql.mvc" in text
        assert mdb.pc == 1

    def test_next_n(self, catalog):
        mdb = make(catalog)
        assert mdb.next(3) == 3
        assert mdb.pc == 3

    def test_step_past_end(self, catalog):
        mdb = make(catalog)
        mdb.run_to_end()
        assert mdb.finished
        assert mdb.step() is None

    def test_run_to_end_produces_result(self, catalog):
        mdb = make(catalog)
        mdb.run_to_end()
        assert mdb.ctx.result_sets[0].rows() == [(10,)]


class TestBreakpoints:
    def test_break_on_function(self, catalog):
        mdb = make(catalog)
        mdb.break_at("aggr.count")
        stopped = mdb.cont()
        assert stopped == 3
        assert mdb.current_instruction.function == "count"

    def test_break_on_pc(self, catalog):
        mdb = make(catalog)
        mdb.break_at(2)
        assert mdb.cont() == 2

    def test_cont_steps_off_current_breakpoint(self, catalog):
        mdb = make(catalog)
        mdb.break_at(2)
        mdb.cont()
        assert mdb.cont() is None  # runs to the end, no re-trigger
        assert mdb.finished

    def test_multiple_breakpoints_in_order(self, catalog):
        mdb = make(catalog)
        mdb.break_at(1)
        mdb.break_at("sql.exportResult")
        assert mdb.cont() == 1
        assert mdb.cont() == 6

    def test_clear_breakpoints(self, catalog):
        mdb = make(catalog)
        mdb.break_at(1)
        mdb.clear_breakpoints()
        assert mdb.cont() is None

    def test_break_out_of_range(self, catalog):
        with pytest.raises(MalRuntimeError):
            make(catalog).break_at(99)


class TestInspection:
    def test_inspect_bat_preview(self, catalog):
        mdb = make(catalog)
        mdb.next(3)
        text = mdb.inspect("X_2", max_rows=3)
        assert "count=20" in text
        assert "... 17 more" in text

    def test_inspect_scalar(self, catalog):
        mdb = make(catalog)
        mdb.next(4)
        assert "10" in mdb.inspect("X_4")

    def test_inspect_undefined(self, catalog):
        assert "<undefined>" in make(catalog).inspect("X_77")

    def test_variables_listing(self, catalog):
        mdb = make(catalog)
        mdb.next(2)
        variables = mdb.variables()
        assert variables["X_2"].startswith("BAT#20")
        assert "X_1" in variables

    def test_list_source_marks_current(self, catalog):
        mdb = make(catalog)
        mdb.next(2)
        listing = mdb.list_source(context=2)
        assert "=> [   2]" in listing
        assert "[   0]" in listing

    def test_where(self, catalog):
        mdb = make(catalog)
        assert "pc=0" in mdb.where()
        mdb.run_to_end()
        assert mdb.where() == "at end of plan"
