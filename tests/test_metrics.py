"""Tests for the repro.metrics subsystem: the primitives, the registry,
the exposition formats, the reporter thread, and the instrumentation
wired through the engine (server, MAL, UDP stream, online monitor,
render queue)."""

import io
import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.metrics import (
    REGISTRY,
    MetricError,
    PeriodicReporter,
    Registry,
    disabled,
    render_snapshot,
    render_text,
    snapshot,
)
from repro.metrics import families


def counter_value(family, **labels):
    """Current value of one (possibly labeled) counter/gauge child."""
    child = family.labels(**labels) if labels else family
    return child.value()


# ---------------------------------------------------------------------------
# primitives and registry
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_counter_counts_up_only(self):
        reg = Registry()
        c = reg.counter("t_total", "test")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = Registry()
        g = reg.gauge("t_depth", "test")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value() == 7

    def test_histogram_buckets_cumulative(self):
        reg = Registry()
        h = reg.histogram("t_usec", "test", buckets=(10, 100, 1000))
        for v in (5, 50, 500, 5000):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 5555
        assert h._single().cumulative_buckets() == [
            (10, 1), (100, 2), (1000, 3), ("+Inf", 4),
        ]

    def test_histogram_observe_many_matches_observe(self):
        reg = Registry()
        one = reg.histogram("t_one_usec", "test", buckets=(10, 100, 1000))
        many = reg.histogram("t_many_usec", "test", buckets=(10, 100, 1000))
        values = [5, 50, 500, 5000, 10, 100]
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert many._single().cumulative_buckets() == \
            one._single().cumulative_buckets()
        assert many.count() == one.count() and many.sum() == one.sum()
        many.observe_many([])  # empty batch is a no-op
        assert many.count() == len(values)
        with disabled(reg):
            many.observe_many([1, 2, 3])
        assert many.count() == len(values)

    def test_labeled_children_are_cached(self):
        reg = Registry()
        fam = reg.counter("t_ops_total", "test", labels=("op",))
        fam.labels(op="query").inc()
        fam.labels("query").inc()  # positional form hits the same child
        assert fam.labels(op="query").value() == 2
        assert set(fam.children()) == {("query",)}

    def test_label_arity_enforced(self):
        reg = Registry()
        fam = reg.counter("t_ops_total", "test", labels=("op",))
        with pytest.raises(MetricError):
            fam.labels()
        with pytest.raises(MetricError):
            fam.labels(other="x")
        with pytest.raises(MetricError):
            fam.inc()  # labeled family has no single child

    def test_reregistration_returns_same_family(self):
        reg = Registry()
        a = reg.counter("t_total", "test")
        b = reg.counter("t_total", "test")
        assert a is b
        with pytest.raises(MetricError):
            reg.gauge("t_total", "test")  # kind clash

    def test_disabled_suspends_recording(self):
        reg = Registry()
        c = reg.counter("t_total", "test")
        with disabled(reg):
            c.inc()
        assert c.value() == 0
        c.inc()
        assert c.value() == 1

    def test_reset_zeroes_children(self):
        reg = Registry()
        plain = reg.counter("t_total", "test")
        labeled = reg.counter("t_ops_total", "test", labels=("op",))
        plain.inc()
        labeled.labels(op="q").inc()
        reg.reset()
        assert plain.value() == 0
        assert labeled.children() == {}

    def test_thread_safety_no_lost_updates(self):
        reg = Registry()
        c = reg.counter("t_total", "test")

        def bump():
            for _ in range(5000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 20000


class TestSnapshotAndExposition:
    def test_snapshot_is_json_safe(self):
        reg = Registry()
        reg.counter("t_ops_total", "ops", labels=("op",)).labels(op="q").inc()
        reg.histogram("t_usec", "lat", buckets=(10, 100)).observe(7)
        snap = reg.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped == snap
        assert snap["t_ops_total"]["samples"][0] == {
            "labels": {"op": "q"}, "value": 1.0,
        }
        histogram = snap["t_usec"]["samples"][0]
        assert histogram["count"] == 1 and histogram["sum"] == 7
        assert histogram["buckets"][-1] == ["+Inf", 1]

    def test_render_text_exposition_shape(self):
        reg = Registry()
        reg.counter("t_ops_total", "ops handled", labels=("op",),
                    unit="requests").labels(op="q").inc(3)
        reg.histogram("t_usec", "latency", buckets=(10,)).observe(4)
        text = reg.render_text()
        assert "# HELP t_ops_total ops handled [requests]" in text
        assert "# TYPE t_ops_total counter" in text
        assert 't_ops_total{op="q"} 3' in text
        assert 't_usec_bucket{le="10"} 1' in text
        assert 't_usec_bucket{le="+Inf"} 1' in text
        assert "t_usec_sum 4" in text
        assert "t_usec_count 1" in text

    def test_render_snapshot_round_trips_the_wire_form(self):
        reg = Registry()
        reg.gauge("t_depth", "queue depth").set(5)
        wire = json.loads(json.dumps(reg.snapshot()))
        assert render_snapshot(wire) == reg.render_text()

    def test_process_registry_catalog_complete(self):
        # every subsystem family is registered by importing repro.metrics
        names = set(REGISTRY.families())
        for expected in (
            "repro_server_requests_total",
            "repro_mal_instructions_total",
            "repro_udp_datagrams_sent_total",
            "repro_online_sampled_out_total",
            "repro_mapping_lookups_total",
            "repro_render_queue_depth",
        ):
            assert expected in names
        assert render_text().count("# TYPE") == len(names)


class TestPeriodicReporter:
    def test_collects_snapshots_until_stopped(self):
        reporter = PeriodicReporter(interval_s=0.02)
        with reporter:
            time.sleep(0.08)
        assert len(reporter.snapshots) >= 2  # a few ticks + final report
        assert "repro_mal_instructions_total" in reporter.snapshots[-1]

    def test_sink_and_stream_modes(self):
        seen = []
        with PeriodicReporter(interval_s=5.0, sink=seen.append):
            pass  # stop() still takes the final snapshot
        assert len(seen) == 1
        stream = io.StringIO()
        with PeriodicReporter(interval_s=5.0, stream=stream):
            pass
        assert "# TYPE" in stream.getvalue()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            PeriodicReporter(interval_s=0)


# ---------------------------------------------------------------------------
# engine instrumentation
# ---------------------------------------------------------------------------


class TestMalInstrumentation:
    def test_interpreter_records_instructions_and_run(self):
        from repro.mal.parser import parse_program
        from repro.mal.interpreter import Interpreter
        from repro.storage import Catalog

        before_runs = counter_value(families.MAL_EXECUTIONS,
                                    scheduler="interpreter")
        before_calc = counter_value(families.MAL_INSTRUCTIONS,
                                    module="calc")
        before_util = families.MAL_WORKER_UTILIZATION.count()
        program = parse_program(
            "function user.main():void;\n"
            "  X_1 := calc.add(1,2);\n"
            "  X_2 := calc.mul(X_1,3);\n"
            "end main;\n"
        )
        Interpreter(Catalog()).run(program)
        assert counter_value(families.MAL_EXECUTIONS,
                             scheduler="interpreter") == before_runs + 1
        assert counter_value(families.MAL_INSTRUCTIONS,
                             module="calc") == before_calc + 2
        assert families.MAL_WORKER_UTILIZATION.count() == before_util + 1

    def test_dataflow_records_per_scheduler(self, tpch_db=None):
        from repro.server import Database
        from repro.tpch import populate

        db = Database(workers=2, mitosis_threshold=50)
        populate(db.catalog, scale_factor=0.01, seed=5)
        before = counter_value(families.MAL_EXECUTIONS,
                               scheduler="simulated")
        db.execute("select count(*) from lineitem")
        assert counter_value(families.MAL_EXECUTIONS,
                             scheduler="simulated") == before + 1


class TestUdpInstrumentation:
    def test_emitter_counts_kinds_and_bytes(self):
        from repro.profiler import UdpEmitter, UdpReceiver

        with UdpReceiver() as receiver:
            sent_events = counter_value(families.UDP_DATAGRAMS_SENT,
                                        kind="event")
            sent_dot = counter_value(families.UDP_DATAGRAMS_SENT,
                                     kind="dot")
            sent_end = counter_value(families.UDP_DATAGRAMS_SENT,
                                     kind="end")
            bytes_before = counter_value(families.UDP_BYTES_SENT)
            with UdpEmitter(port=receiver.port) as emitter:
                emitter.send_dot("digraph {\n}")
                emitter.send_line("[ 1,\t0,\t\"start\",\t1,\t0,\t0,\t0,"
                                  "\t\"x\"\t]")
                emitter.send_end()
            received = list(receiver.lines(timeout=2.0))
        assert counter_value(families.UDP_DATAGRAMS_SENT,
                             kind="dot") == sent_dot + 2
        assert counter_value(families.UDP_DATAGRAMS_SENT,
                             kind="event") == sent_events + 1
        assert counter_value(families.UDP_DATAGRAMS_SENT,
                             kind="end") == sent_end + 1
        assert counter_value(families.UDP_BYTES_SENT) > bytes_before
        assert len(received) >= 1  # END terminates iteration

    def test_send_error_counted_not_raised(self):
        from repro.profiler import UdpEmitter

        emitter = UdpEmitter(port=50011)
        emitter.close()
        before = counter_value(families.UDP_SEND_ERRORS)
        emitter.send_line("after close")  # must not raise
        assert counter_value(families.UDP_SEND_ERRORS) == before + 1

    def test_receiver_counts_datagrams(self):
        from repro.profiler import UdpEmitter, UdpReceiver

        before = counter_value(families.UDP_DATAGRAMS_RECEIVED)
        with UdpReceiver() as receiver:
            with UdpEmitter(port=receiver.port) as emitter:
                for _ in range(5):
                    emitter.send_line("x")
                emitter.send_end()
            drained = list(receiver.lines(timeout=2.0))
        assert len(drained) == 5
        assert counter_value(families.UDP_DATAGRAMS_RECEIVED) >= before + 5


class TestRenderQueueInstrumentation:
    def test_post_and_execute_counted(self):
        from repro.viz.events import EventDispatchQueue

        posted = counter_value(families.RENDER_TASKS_POSTED)
        executed = counter_value(families.RENDER_TASKS_EXECUTED)
        waits = families.RENDER_QUEUE_WAIT_MS.count()
        q = EventDispatchQueue(min_interval_ms=150.0)
        for i in range(3):
            q.post(f"task{i}", lambda: None)
        assert counter_value(families.RENDER_TASKS_POSTED) == posted + 3
        assert counter_value(families.RENDER_QUEUE_DEPTH) == 3
        q.drain()
        assert counter_value(
            families.RENDER_TASKS_EXECUTED) == executed + 3
        assert counter_value(families.RENDER_QUEUE_DEPTH) == 0
        assert families.RENDER_QUEUE_WAIT_MS.count() == waits + 3


class TestMappingInstrumentation:
    def _graph(self):
        from repro.dot.parser import parse_dot

        return parse_dot('digraph g { n1 [label="a"]; n2 [label="b"]; '
                         "n1 -> n2 }")

    def _event(self, pc):
        from repro.profiler.events import TraceEvent

        return TraceEvent(event=0, clock_usec=0, status="start", pc=pc,
                          thread=0, usec=0, rss_bytes=0, stmt="s")

    def test_hits_and_misses_counted(self):
        from repro.core.mapping import PlanTraceMap
        from repro.errors import MappingError

        hits = counter_value(families.MAPPING_LOOKUPS, result="hit")
        misses = counter_value(families.MAPPING_LOOKUPS, result="miss")
        PlanTraceMap(self._graph(), [self._event(1), self._event(2)])
        assert counter_value(families.MAPPING_LOOKUPS,
                             result="hit") == hits + 2
        with pytest.raises(MappingError):
            PlanTraceMap(self._graph(), [self._event(99)])
        assert counter_value(families.MAPPING_LOOKUPS,
                             result="miss") == misses + 1


# ---------------------------------------------------------------------------
# the server stats verb and the CLI
# ---------------------------------------------------------------------------


class TestServerStats:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.server import Database, Mserver
        from repro.tpch import populate

        db = Database(workers=2, mitosis_threshold=50)
        populate(db.catalog, scale_factor=0.02, seed=2)
        with Mserver(db) as server:
            yield server

    def test_stats_verb_returns_full_catalog(self, server):
        from repro.server import MClient

        with MClient(port=server.port) as client:
            client.query("select count(*) from lineitem")
            stats = client.stats()
        assert set(stats) == set(REGISTRY.families())
        requests = {
            s["labels"]["op"]: s["value"]
            for s in stats["repro_server_requests_total"]["samples"]
        }
        assert requests.get("query", 0) >= 1
        latency = stats["repro_server_query_usec"]["samples"][0]
        assert latency["count"] >= 1 and latency["sum"] > 0

    def test_connection_metrics_move(self, server):
        from repro.server import MClient

        before = counter_value(families.SERVER_CONNECTIONS)
        with MClient(port=server.port) as client:
            client.ping()
        assert counter_value(families.SERVER_CONNECTIONS) >= before + 1

    def test_errors_counted_by_op(self, server):
        from repro.errors import ServerError
        from repro.server import MClient

        before = counter_value(families.SERVER_REQUEST_ERRORS, op="bogus")
        with MClient(port=server.port) as client:
            with pytest.raises(ServerError):
                client._call({"op": "bogus"})
        # the error counter update happens before the response is sent
        assert counter_value(families.SERVER_REQUEST_ERRORS,
                             op="bogus") == before + 1

    def test_cli_metrics_fetches_from_server(self, server):
        out = io.StringIO()
        code = cli_main(["metrics", "--port", str(server.port)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "# TYPE repro_server_requests_total counter" in text
        assert "repro_server_connections_total" in text


class TestCliMetricsLocal:
    def test_dumps_full_catalog(self):
        out = io.StringIO()
        code = cli_main(["metrics"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in REGISTRY.families():
            assert name in text

    def test_snapshot_module_helper(self):
        snap = snapshot()
        assert set(snap) == set(REGISTRY.families())
        json.dumps(snap)  # wire-safe
