"""Unit tests for the SQL lexer and parser."""

import datetime

import pytest

from repro.errors import SqlParseError
from repro.sqlfe.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateTable,
    DropTable,
    FuncCall,
    InList,
    Insert,
    Interval,
    IsNull,
    Like,
    Literal,
    Select,
    UnaryOp,
)
from repro.sqlfe.lexer import tokenize
from repro.sqlfe.parser import parse_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:-1]] == ["keyword"] * 3
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        assert tokenize("LineItem")[0].text == "lineitem"

    def test_quoted_identifier_preserves_case(self):
        assert tokenize('"MyCol"')[0].text == "MyCol"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_numbers(self):
        kinds = [t.text for t in tokenize("1 2.5 3e2 10.5e-3")[:-1]]
        assert kinds == ["1", "2.5", "3", "e2", "10.5e-3"]

    def test_comments_dropped(self):
        tokens = tokenize("select -- a comment\n1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_multichar_operators(self):
        texts = [t.text for t in tokenize("<> <= >= != ||")[:-1]]
        assert texts == ["<>", "<=", ">=", "!=", "||"]

    def test_bad_character_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("select @x")


class TestSelectParsing:
    def test_figure1_query(self):
        stmt = parse_sql("select l_tax from lineitem where l_partkey = 1")
        assert isinstance(stmt, Select)
        assert stmt.items[0].expr.column == "l_tax"
        assert stmt.tables[0].table == "lineitem"
        assert isinstance(stmt.where, BinaryOp) and stmt.where.op == "="

    def test_aliases(self):
        stmt = parse_sql("select l.x as y from t as l")
        assert stmt.items[0].alias == "y"
        assert stmt.tables[0].alias == "l"
        assert stmt.items[0].expr.qualifier == "l"

    def test_implicit_alias(self):
        stmt = parse_sql("select x foo from t u")
        assert stmt.items[0].alias == "foo"
        assert stmt.tables[0].alias == "u"

    def test_join_on(self):
        stmt = parse_sql("select a from t1 join t2 on t1.k = t2.k")
        assert len(stmt.tables) == 2
        assert len(stmt.join_conditions) == 1

    def test_group_by_having_order_limit(self):
        stmt = parse_sql(
            "select k, count(*) from t group by k having count(*) > 2 "
            "order by 2 desc, k asc limit 10"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, BinaryOp)
        assert stmt.order_by[0].descending and not stmt.order_by[1].descending
        assert stmt.limit == 10

    def test_distinct(self):
        assert parse_sql("select distinct x from t").distinct

    def test_count_star(self):
        stmt = parse_sql("select count(*) from t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall) and call.star

    def test_operator_precedence(self):
        stmt = parse_sql("select a + b * c from t")
        expr = stmt.items[0].expr
        assert expr.op == "+" and expr.right.op == "*"

    def test_boolean_precedence(self):
        stmt = parse_sql("select a from t where x = 1 or y = 2 and z = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parentheses_override(self):
        stmt = parse_sql("select (a + b) * c from t")
        assert stmt.items[0].expr.op == "*"

    def test_between(self):
        stmt = parse_sql("select a from t where a between 1 and 10")
        assert isinstance(stmt.where, Between)

    def test_not_between(self):
        stmt = parse_sql("select a from t where a not between 1 and 10")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse_sql("select a from t where a in (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_like(self):
        stmt = parse_sql("select a from t where s like '%x%'")
        assert isinstance(stmt.where, Like)
        assert stmt.where.pattern == "%x%"

    def test_is_null(self):
        stmt = parse_sql("select a from t where a is not null")
        assert isinstance(stmt.where, IsNull) and stmt.where.negated

    def test_date_literal(self):
        stmt = parse_sql("select a from t where d < date '1998-12-01'")
        assert stmt.where.right.value == datetime.date(1998, 12, 1)

    def test_interval_arithmetic(self):
        stmt = parse_sql(
            "select a from t where d <= date '1998-12-01' - interval '90' day"
        )
        right = stmt.where.right
        assert right.op == "-" and isinstance(right.right, Interval)
        assert right.right.amount == 90 and right.right.unit == "day"

    def test_case_when(self):
        stmt = parse_sql(
            "select case when a > 1 then 'big' else 'small' end from t"
        )
        expr = stmt.items[0].expr
        assert isinstance(expr, CaseWhen)
        assert expr.otherwise.value == "small"

    def test_negative_literal_folded(self):
        stmt = parse_sql("select a from t where a > -5")
        assert stmt.where.right.value == -5

    def test_unary_not(self):
        stmt = parse_sql("select a from t where not a = 1")
        assert isinstance(stmt.where, UnaryOp) and stmt.where.op == "NOT"


class TestOtherStatements:
    def test_create_table(self):
        stmt = parse_sql(
            "create table t (a integer, b varchar(10), c decimal(15,2))"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.columns == [
            ("a", "integer"), ("b", "varchar(10)"), ("c", "decimal(15,2)")
        ]

    def test_drop_table(self):
        stmt = parse_sql("drop table t")
        assert isinstance(stmt, DropTable) and stmt.table == "t"

    def test_insert_values(self):
        stmt = parse_sql("insert into t values (1, 'a'), (2, 'b')")
        assert isinstance(stmt, Insert)
        assert len(stmt.rows) == 2
        assert stmt.rows[1][1].value == "b"


class TestParseErrors:
    def test_missing_from(self):
        with pytest.raises(SqlParseError):
            parse_sql("select 1")

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse_sql("select a from t where a = 1 42")

    def test_limit_requires_integer(self):
        with pytest.raises(SqlParseError):
            parse_sql("select a from t limit 1.5")

    def test_bad_date(self):
        with pytest.raises(SqlParseError):
            parse_sql("select a from t where d = date 'tomorrow'")

    def test_like_requires_string(self):
        with pytest.raises(SqlParseError):
            parse_sql("select a from t where s like 5")

    def test_empty_case(self):
        with pytest.raises(SqlParseError):
            parse_sql("select case end from t")
