"""WAL-shipping replication: streaming, bootstrap, read-only replicas,
epoch-fenced failover, deterministic election, and the replication-aware
client routing that rides on top.

The centrepiece parity test runs the 12 TPC-H queries against a replica
while the primary is under concurrent write load and asserts the rows
are identical to the primary's — plus a live trace subscription served
by the replica itself.
"""

import json
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.errors import (
    ReadOnlyReplicaError,
    ReplicationError,
    ReplicationFencedError,
    RequestTimeoutError,
    ServerError,
)
from repro.replication import ReplicationManager, split_addr
from repro.server.client import MClient
from repro.server.database import Database
from repro.server.mserver import Mserver
from repro.storage.durable import catalog_canonical_bytes, read_epoch
from repro.tpch import QUERIES, populate, query_sql


def _wait(condition, timeout=8.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def _node(tmp_path, name, primary=None, **kwargs):
    """One in-process node: durable Database + Mserver + manager."""
    db = Database(wal_dir=str(tmp_path / name), commit_window_ms=0.0,
                  checkpoint_interval=kwargs.pop("checkpoint_interval", 64))
    server = Mserver(db).start()
    addr = f"127.0.0.1:{server.port}"
    kwargs.setdefault("poll_interval_s", 0.01)
    kwargs.setdefault("auto_failover", False)
    mgr = ReplicationManager(server, addr=addr, primary=primary, **kwargs)
    server.replication = mgr.start()
    return SimpleNamespace(db=db, server=server, mgr=mgr, addr=addr,
                           port=server.port)


def _caught_up(primary, replica):
    return (replica.db.durability.wal.durable_lsn
            >= primary.db.durability.wal.durable_lsn)


def _bytes(node):
    return catalog_canonical_bytes(node.db.catalog)


@pytest.fixture()
def cluster(tmp_path):
    primary = _node(tmp_path, "primary")
    replica = _node(tmp_path, "replica", primary=primary.addr)
    nodes = [primary, replica]
    yield SimpleNamespace(primary=primary, replica=replica, nodes=nodes)
    # replicas first: their pullers stop while the primary still
    # answers, instead of spinning reconnect attempts mid-teardown
    for node in reversed(nodes):
        node.server.stop()


class TestStreaming:
    def test_stream_apply_byte_identical(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer, b varchar(8))")
            for i in range(20):
                client.query(f"insert into t values ({i}, 'v{i}')")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        assert _bytes(cluster.replica) == _bytes(cluster.primary)
        assert cluster.replica.mgr.records_applied >= 21

    def test_late_joiner_bootstraps_from_checkpoint(self, tmp_path):
        primary = _node(tmp_path, "primary")
        try:
            # non-WAL data (populate mutates the catalog directly) can
            # only reach a follower through the checkpoint snapshot
            populate(primary.db.catalog, scale_factor=0.01)
            primary.db.checkpoint()
            with MClient(port=primary.port) as client:
                client.query("create table tail (a integer)")
                client.query("insert into tail values (7)")
            replica = _node(tmp_path, "replica", primary=primary.addr)
            try:
                _wait(lambda: _caught_up(primary, replica),
                      message="bootstrap catch-up")
                assert replica.mgr.bootstraps >= 1
                assert _bytes(replica) == _bytes(primary)
            finally:
                replica.server.stop()
        finally:
            primary.server.stop()

    def test_lag_drains_to_zero(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
            for i in range(10):
                client.query(f"insert into t values ({i})")
        _wait(lambda: cluster.replica.mgr.status()["lag_records"] == 0,
              message="lag to drain")
        status = cluster.replica.mgr.status()
        assert status["lag_bytes"] == 0
        assert status["role"] == "replica"

    def test_repl_status_verb(self, cluster):
        with MClient(port=cluster.replica.port) as client:
            status = client.repl_status()
        assert status["role"] == "replica"
        assert status["primary"] == cluster.primary.addr
        assert status["epoch"] == 0
        with MClient(port=cluster.primary.port) as client:
            status = client.repl_status()
        assert status["role"] == "primary"

    def test_standalone_status_without_manager(self, tmp_path):
        db = Database(wal_dir=str(tmp_path / "solo"), commit_window_ms=0.0)
        with Mserver(db) as server, MClient(port=server.port) as client:
            status = client.repl_status()
            assert status["role"] == "standalone"
            with pytest.raises(ServerError):
                client.promote()


class TestReadOnlyReplica:
    def test_write_rejected_with_primary_hint(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        with MClient(port=cluster.replica.port) as client:
            with pytest.raises(ReadOnlyReplicaError) as excinfo:
                client.query("insert into t values (1)")
        assert excinfo.value.primary == cluster.primary.addr
        # the rejected write never executed anywhere
        with MClient(port=cluster.primary.port) as client:
            assert client.query("select count(*) from t").rows[0][0] == 0

    def test_replica_serves_trace_subscription(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
            client.query("insert into t values (1)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        with MClient(port=cluster.replica.port) as viewer, \
                MClient(port=cluster.replica.port) as runner:
            sub = viewer.subscribe()
            runner.query("select count(*) from t")
            entries = list(sub.entries(until_end=True, max_seconds=5.0))
        assert {e["kind"] for e in entries} == {"dot", "event", "end"}

    def test_tpch_parity_under_write_load(self, tmp_path):
        primary = _node(tmp_path, "primary")
        replica = None
        try:
            populate(primary.db.catalog, scale_factor=0.02)
            primary.db.checkpoint()
            replica = _node(tmp_path, "replica", primary=primary.addr)
            with MClient(port=primary.port) as client:
                client.query("create table repl_load (a integer)")
            _wait(lambda: _caught_up(primary, replica),
                  message="replica catch-up")

            stop = threading.Event()
            errors = []

            def writer():
                with MClient(port=primary.port) as client:
                    i = 0
                    while not stop.is_set():
                        try:
                            client.query(
                                f"insert into repl_load values ({i})")
                        except Exception as exc:  # noqa: BLE001
                            errors.append(exc)
                            return
                        i += 1
                        time.sleep(0.002)

            thread = threading.Thread(target=writer, daemon=True)
            thread.start()
            try:
                with MClient(port=primary.port) as pc, \
                        MClient(port=replica.port) as rc:
                    for name in sorted(QUERIES):
                        sql = query_sql(name)
                        expect = pc.query(sql)
                        got = rc.query(sql)
                        assert got.columns == expect.columns, name
                        assert got.rows == expect.rows, name
            finally:
                stop.set()
                thread.join(timeout=5.0)
            assert not errors, errors
            _wait(lambda: _caught_up(primary, replica),
                  message="final catch-up")
            assert _bytes(replica) == _bytes(primary)
        finally:
            if replica is not None:
                replica.server.stop()
            primary.server.stop()


class TestFailover:
    def test_manual_promote_bumps_and_persists_epoch(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
            client.query("insert into t values (1)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        cluster.primary.db.durability.simulate_crash()
        cluster.primary.server.stop()
        with MClient(port=cluster.replica.port) as client:
            promoted = client.promote()
        assert promoted["promoted"] is True
        assert promoted["epoch"] == 1
        assert promoted["role"] == "primary"
        # the epoch survives a restart of the promoted node
        assert read_epoch(cluster.replica.db.durability.wal_dir) == 1
        # the promoted node accepts writes and serves reads
        with MClient(port=cluster.replica.port) as client:
            client.query("insert into t values (2)")
            assert client.query(
                "select count(*) from t").rows[0][0] == 2
            assert client.promote()["promoted"] is False

    def test_promote_truncates_unacked_tail(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        cluster.primary.server.stop()
        cluster.nodes.remove(cluster.primary)
        # a written-but-never-durable record is exactly the shape a
        # crashed apply leaves behind; promotion must drop it
        wal = cluster.replica.db.durability.wal
        with cluster.replica.db.durability.order_lock:
            wal.append("insert", {"bogus": True})
        before = _bytes(cluster.replica)
        report = cluster.replica.mgr.promote()
        assert report["promoted"] is True
        assert report["dropped_records"] >= 1
        assert _bytes(cluster.replica) == before

    def test_auto_failover_elects_surviving_replica(self, tmp_path):
        primary = _node(tmp_path, "primary")
        replica = _node(tmp_path, "replica", primary=primary.addr,
                        peers=(primary.addr,), auto_failover=True,
                        heartbeat_timeout_s=0.3)
        try:
            with MClient(port=primary.port) as client:
                client.query("create table t (a integer)")
                client.query("insert into t values (1)")
            _wait(lambda: _caught_up(primary, replica),
                  message="replica catch-up")
            primary.db.durability.simulate_crash()
            primary.server.stop()
            _wait(lambda: replica.mgr.role == "primary", timeout=10.0,
                  message="automatic promotion")
            assert replica.db.durability.epoch >= 1
            with MClient(port=replica.port) as client:
                client.query("insert into t values (2)")
                assert client.query(
                    "select count(*) from t").rows[0][0] == 2
        finally:
            replica.server.stop()
            primary.server.stop()

    def test_election_prefers_highest_lsn_then_address(self, cluster,
                                                       monkeypatch):
        mgr = cluster.replica.mgr
        mgr.peers = ["127.0.0.1:1", "127.0.0.1:2"]
        probes = {
            "127.0.0.1:1": {"role": "replica", "epoch": 0,
                            "durable_lsn": 10 ** 6},
            "127.0.0.1:2": {"role": "replica", "epoch": 0,
                            "durable_lsn": 10 ** 6},
        }
        monkeypatch.setattr(ReplicationManager, "_probe",
                            staticmethod(lambda addr, timeout=0.75:
                                         probes.get(addr)))
        assert mgr._election() is False
        # lowest address broke the tie
        assert mgr.primary == "127.0.0.1:1"
        # ...but a live primary with a current epoch always wins
        probes["127.0.0.1:2"]["role"] = "primary"
        assert mgr._election() is False
        assert mgr.primary == "127.0.0.1:2"

    def test_deposed_primary_rejoins_via_resync(self, tmp_path):
        primary = _node(tmp_path, "primary")
        replica = _node(tmp_path, "replica", primary=primary.addr)
        try:
            with MClient(port=primary.port) as client:
                client.query("create table t (a integer)")
                client.query("insert into t values (1)")
            _wait(lambda: _caught_up(primary, replica),
                  message="replica catch-up")
            # divergence: the old primary keeps writing after its
            # follower stopped listening, then loses those writes
            replica.mgr._stop_puller()
            with MClient(port=primary.port) as client:
                client.query("insert into t values (100)")
                client.query("insert into t values (101)")
            replica.mgr.promote()
            with MClient(port=replica.port) as client:
                client.query("insert into t values (2)")
            # the deposed primary rejoins as a replica of the winner:
            # its divergent tail must be replaced, not merged
            primary.mgr._stop_puller()
            primary.mgr.role = "replica"
            primary.mgr.primary = replica.addr
            primary.mgr._need_resync = True
            primary.mgr._ensure_puller()
            _wait(lambda: _bytes(primary) == _bytes(replica),
                  message="resync convergence")
            assert primary.db.durability.epoch == \
                replica.db.durability.epoch
            with MClient(port=primary.port) as client:
                rows = client.query(
                    "select a from t order by a asc").rows
            assert [r[0] for r in rows] == [1, 2]
        finally:
            replica.server.stop()
            primary.server.stop()


class TestFencing:
    def test_follower_rejects_stale_epoch_stream(self, cluster):
        stale = {"ok": True, "epoch": -1}
        with pytest.raises(ReplicationFencedError):
            cluster.replica.mgr._check_epoch(stale)
        assert cluster.replica.mgr.fenced >= 1

    def test_primary_demotes_on_higher_epoch_contact(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        assert cluster.primary.mgr.accepts_writes()
        with pytest.raises(ReplicationFencedError):
            cluster.primary.mgr.handle_sync(
                {"from_lsn": 0, "epoch": 5,
                 "follower": cluster.replica.addr})
        assert not cluster.primary.mgr.accepts_writes()
        assert cluster.primary.db.durability.epoch == 5
        # no ghost writes on the deposed node — the protocol error
        # carries no primary hint yet (it has none), but it is typed
        with MClient(port=cluster.primary.port) as client:
            with pytest.raises(ReadOnlyReplicaError):
                client.query("insert into t values (1)")

    def test_no_split_brain_after_failover(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        cluster.replica.mgr.promote()
        new_epoch = cluster.replica.db.durability.epoch
        # the old primary still answers, but its first contact with the
        # new epoch deposes it
        with pytest.raises(ReplicationFencedError):
            cluster.primary.mgr.handle_sync(
                {"from_lsn": 0, "epoch": new_epoch,
                 "follower": cluster.replica.addr})
        writable = [node for node in cluster.nodes
                    if node.mgr.accepts_writes()]
        assert [node.addr for node in writable] == [cluster.replica.addr]


class TestClientRouting:
    def test_reads_to_replica_writes_to_primary(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        peers = [cluster.primary.addr, cluster.replica.addr]
        with MClient(port=cluster.primary.port, peers=peers,
                     retry_seed=3) as client:
            client.query("insert into t values (1)")
            assert client.port == cluster.primary.port
            _wait(lambda: _caught_up(cluster.primary, cluster.replica),
                  message="replica catch-up")
            assert client.query(
                "select count(*) from t").rows[0][0] == 1
            assert client.port == cluster.replica.port

    def test_write_after_failover_re_resolves_primary(self, cluster):
        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        peers = [cluster.primary.addr, cluster.replica.addr]
        with MClient(port=cluster.primary.port, peers=peers,
                     retries=3, retry_seed=3,
                     backoff_base_s=0.01) as client:
            client.query("insert into t values (1)")
            cluster.replica.mgr.promote()
            # the demoted old primary now rejects the write with a
            # hint; the client re-resolves and lands it on the winner
            with pytest.raises(ReplicationFencedError):
                cluster.primary.mgr.handle_sync(
                    {"from_lsn": 0,
                     "epoch": cluster.replica.db.durability.epoch,
                     "follower": cluster.replica.addr})
            client.query("insert into t values (2)")
            assert client.port == cluster.replica.port

    def test_split_addr_rejects_garbage(self):
        assert split_addr("127.0.0.1:80") == ("127.0.0.1", 80)
        with pytest.raises(ReplicationError):
            split_addr("no-port-here")


class _StallAfterDropServer(threading.Thread):
    """A fake protocol endpoint for the deadline-cap regression test.

    Connection #1 answers the session-state ``set`` then drops on the
    next request; connection #2 (the client's reconnect, which replays
    the ``set``) reads the request and stalls without answering.  Before
    the deadline threading fix, that replay ran with ``deadline=None``
    and slept out the client's full socket timeout.
    """

    def __init__(self):
        super().__init__(daemon=True)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self.release = threading.Event()

    def _recv_line(self, conn):
        buffer = b""
        while b"\n" not in buffer:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            buffer += chunk
        return buffer.split(b"\n", 1)[0]

    def run(self):
        try:
            conn1, _ = self.sock.accept()
            if self._recv_line(conn1) is not None:  # the recorded set
                conn1.sendall(json.dumps({"ok": True}).encode() + b"\n")
                self._recv_line(conn1)  # the query — drop it
            conn1.close()
            conn2, _ = self.sock.accept()
            self._recv_line(conn2)  # the replayed set — stall
            self.release.wait(timeout=20.0)
            conn2.close()
        except OSError:
            pass

    def close(self):
        self.release.set()
        try:
            self.sock.close()
        except OSError:
            pass


class TestDeadlineCapsReconnect:
    def test_session_replay_respects_request_deadline(self):
        server = _StallAfterDropServer()
        server.start()
        try:
            client = MClient(port=server.port, timeout=30.0, retries=2,
                             backoff_base_s=0.01, retry_seed=5)
            try:
                client.set_pipeline("default_pipe")
                began = time.monotonic()
                with pytest.raises(RequestTimeoutError):
                    client.query("select 1", deadline_s=0.5)
                elapsed = time.monotonic() - began
                # pre-fix this slept out the 30s socket timeout inside
                # the session-state replay; the budget must win
                assert elapsed < 3.0, f"deadline overshot: {elapsed:.1f}s"
            finally:
                client.close()
        finally:
            server.close()
            server.join(timeout=5.0)


class TestCli:
    def _out(self):
        class Out:
            text = ""

            def write(self, chunk):
                self.text += chunk

            def flush(self):
                pass
        return Out()

    def test_repl_status_and_promote_commands(self, cluster):
        from repro.cli import main

        with MClient(port=cluster.primary.port) as client:
            client.query("create table t (a integer)")
        _wait(lambda: _caught_up(cluster.primary, cluster.replica),
              message="replica catch-up")
        out = self._out()
        assert main(["repl-status", "--port",
                     str(cluster.replica.port)], out=out) == 0
        assert "role: replica" in out.text
        assert f"primary: {cluster.primary.addr}" in out.text
        cluster.primary.db.durability.simulate_crash()
        cluster.primary.server.stop()
        out = self._out()
        assert main(["promote", "--port",
                     str(cluster.replica.port)], out=out) == 0
        assert "to primary" in out.text
        assert "epoch 1" in out.text
        out = self._out()
        assert main(["promote", "--port",
                     str(cluster.replica.port)], out=out) == 0
        assert "already primary" in out.text

    def test_serve_replicate_from_requires_wal_dir(self):
        from repro.cli import main

        out = self._out()
        assert main(["serve", "--replicate-from", "127.0.0.1:1"],
                    out=out) == 2
        assert "requires --wal-dir" in out.text
