"""The paper's claims, one test each.

Section 1 lists five features; §4.2.1 gives a worked example; §5
describes the offline/online demos; §6 reports a discovered anomaly.
This module is the checklist showing each claim holds in the
reproduction — it intentionally reads like the paper.
"""

import pytest

from repro import (
    Database,
    PairSequenceColorizer,
    Profiler,
    Stethoscope,
    plan_to_dot,
    populate,
    query_sql,
)
from repro.core.analysis import detect_sequential_anomaly
from repro.profiler.events import TraceEvent
from repro.viz.color import RED


@pytest.fixture(scope="module")
def db():
    database = Database(workers=4, mitosis_threshold=400)
    populate(database.catalog, scale_factor=0.2, seed=11)
    return database


def offline_session(db, sql, **kwargs):
    profiler = Profiler()
    outcome = db.execute(sql, listener=profiler)
    return Stethoscope.offline_from_memory(
        plan_to_dot(outcome.program), profiler.events, **kwargs
    )


class TestFeatureList:
    """Section 1: 'Stethoscope provides the following features:'"""

    def test_feature_1_interactive_animated_navigation(self, db):
        """1. Interactive animated navigation in complex query plans."""
        session = offline_session(db, query_sql("q3"))
        navigator = session.navigator(animated=True)
        first = navigator.current
        moved = navigator.downstream()
        assert moved is not None and moved != first
        assert navigator.back() == first

    def test_feature_2_color_coded_state_monitoring(self, db):
        """2. Color coded monitoring of query execution state changes."""
        session = offline_session(db, query_sql("q1"))
        session.replay.run_to_end()
        # under parallel execution long instructions were overtaken, so
        # state changes were painted
        assert session.painter.rendered

    def test_feature_3_debug_window_and_tooltips(self, db):
        """3. Run time analysis of execution states using debug window,
        tool tip text."""
        session = offline_session(db, query_sql("q6"))
        session.replay.run_to_end()
        window = session.debug_window("watch", {1, 2, 3})
        assert any(r.state == "done" for r in window.rows())
        tooltip = session.tooltip("n1")
        assert "elapsed:" in tooltip or "state:" in tooltip

    def test_feature_4_flexible_trace_filtering(self, db):
        """4. Flexible options for filtering of execution traces."""
        from repro.profiler import EventFilter

        profiler = Profiler(EventFilter(modules={"algebra"},
                                        statuses={"done"}))
        db.execute(query_sql("q6"), listener=profiler)
        assert profiler.events
        assert all(e.module == "algebra" for e in profiler.events)
        assert all(e.status == "done" for e in profiler.events)

    def test_feature_5_plans_over_1000_nodes(self):
        """5. Support for large query plans with graph representation of
        more than 1000 nodes."""
        from repro.dot import plan_to_graph
        from repro.layout import layout_graph
        from repro.workloads import synthetic_plan

        plan = synthetic_plan(chains=170, chain_length=4)
        graph = plan_to_graph(plan)
        assert graph.node_count() > 1000
        layout = layout_graph(graph)
        assert len(layout.nodes) == graph.node_count()


class TestSection421:
    """The colouring algorithm's worked example, verbatim."""

    def test_worked_example(self):
        pairs = [("start", 1), ("done", 1), ("start", 2), ("done", 2),
                 ("start", 3), ("start", 4)]
        colorizer = PairSequenceColorizer()
        actions = []
        for index, (status, pc) in enumerate(pairs):
            actions.extend(colorizer.push(TraceEvent(
                event=index, clock_usec=index, status=status, pc=pc,
                thread=0, usec=0, rss_bytes=0, stmt="s",
            )))
        # "The graph nodes corresponding to first four statements will
        # not be colored ... the graph node corresponding to the fifth
        # instruction with pc=3 will be colored in RED."
        assert [(a.pc, a.color) for a in actions] == [(3, RED)]


class TestSection33Mapping:
    """'An instruction execution trace statement with pc=1 maps to the
    node n1 in the dot file.'"""

    def test_pc_node_mapping(self, db):
        session = offline_session(db, query_sql("demo"))
        for event in session.events:
            node = session.graph.node(f"n{event.pc}")
            assert node.label == event.stmt


class TestSection4Workflow:
    """'The dot file gets parsed and an intermediate svg representation
    gets created.  In the next step, the svg file gets parsed and an in
    memory graph structure gets created.'"""

    def test_dot_svg_graph_chain(self, db):
        session = offline_session(db, query_sql("demo"))
        from repro.svg import parse_svg

        scene = parse_svg(session.svg_text)
        assert set(scene.nodes) == set(session.graph.nodes)


class TestSection5Demos:
    def test_offline_replay_controls(self, db):
        """'Fast-forward, rewind, and pause functionality of the trace
        replay.'"""
        session = offline_session(db, query_sql("q6"))
        session.replay.fast_forward(10)
        session.replay.pause()
        assert session.replay.step() is None
        session.replay.resume()
        session.replay.rewind(5)
        assert session.replay.position == 5

    def test_costly_instruction_coloring_between_states(self, db):
        """'Finding costly instructions by coloring during trace replay
        between two instruction states.'"""
        session = offline_session(db, query_sql("q1"))
        session.replay.run_to_end()
        window = session.replay.costly_between(
            0, len(session.events), top=3
        )
        assert len(window) == 3
        assert window[0].usec >= window[-1].usec

    def test_birdseye_of_whole_trace(self, db):
        """'Birds eye view of the entire trace, to understand the
        sequence of instruction execution clustering.'"""
        session = offline_session(db, query_sql("q1"))
        text = session.birdseye()
        assert "%" in text  # proportional clustering bands

    def test_multicore_utilization_analysis(self, db):
        """'Multi-core utilisation analysis exhibits degree of
        multi-threaded parallelization of MAL instructions.'"""
        session = offline_session(db, query_sql("q1"))
        profile = session.parallelism()
        assert profile.threads_used > 1
        assert profile.max_concurrency > 1


class TestSection6Finding:
    """'Using Stethoscope we have uncovered several unusual cases, such
    as sequential execution of a MAL plan where multithreaded execution
    was expected.'"""

    def test_anomaly_uncovered(self, db):
        db.set_pipeline("sequential_pipe")
        try:
            profiler = Profiler()
            db.execute(query_sql("q1"), listener=profiler)
        finally:
            db.set_pipeline("default_pipe")
        anomaly = detect_sequential_anomaly(profiler.events,
                                            expected_threads=4)
        assert anomaly.detected
