"""Unit tests for the BAT (Binary Association Table)."""

import pytest

from repro.errors import StorageError, TypeMismatchError
from repro.storage import BAT, INT, LNG, OID, STR, DBL, nil


def make_int_bat(values, hseqbase=0):
    return BAT(INT, values, hseqbase=hseqbase)


class TestBasics:
    def test_void_head_by_default(self):
        b = make_int_bat([10, 20, 30])
        assert b.is_void_head
        assert list(b.heads()) == [0, 1, 2]

    def test_hseqbase_offsets_heads(self):
        b = make_int_bat([10, 20], hseqbase=100)
        assert list(b.heads()) == [100, 101]
        assert b.head_at(1) == 101

    def test_values_cast_on_construction(self):
        b = BAT(INT, ["1", 2.0, 3])
        assert b.tail == [1, 2, 3]

    def test_head_tail_length_mismatch_raises(self):
        with pytest.raises(StorageError):
            BAT(INT, [1, 2], head=[0])

    def test_append_and_count(self):
        b = make_int_bat([])
        b.append(5)
        b.extend([6, 7])
        assert b.count() == 3 and len(b) == 3

    def test_append_materialised_head_stays_dense(self):
        b = BAT(INT, [1, 2], head=[4, 9])
        b.append(3)
        assert b.head == [4, 9, 10]

    def test_items_pairs(self):
        b = make_int_bat([7, 8])
        assert list(b.items()) == [(0, 7), (1, 8)]

    def test_copy_is_independent(self):
        b = make_int_bat([1])
        c = b.copy()
        c.append(2)
        assert b.count() == 1 and c.count() == 2

    def test_bytes_accounts_for_strings(self):
        small = BAT(STR, ["a"])
        big = BAT(STR, ["a" * 100])
        assert big.bytes() > small.bytes()

    def test_bytes_void_head_free(self):
        void = make_int_bat([1, 2, 3])
        mat = BAT(INT, [1, 2, 3], head=[0, 1, 2])
        assert mat.bytes() > void.bytes()


class TestSelect:
    def test_point_select(self):
        b = make_int_bat([5, 7, 5, 9])
        out = b.select(5)
        assert list(out.items()) == [(0, 5), (2, 5)]

    def test_range_select_inclusive(self):
        b = make_int_bat([1, 2, 3, 4, 5])
        out = b.select(2, 4)
        assert out.tail == [2, 3, 4]
        assert list(out.heads()) == [1, 2, 3]

    def test_range_select_exclusive_bounds(self):
        b = make_int_bat([1, 2, 3, 4, 5])
        out = b.select(2, 4, include_low=False, include_high=False)
        assert out.tail == [3]

    def test_nil_bound_is_unbounded(self):
        b = make_int_bat([1, 2, 3])
        assert b.select(2, nil).tail == [2, 3]
        assert b.select(nil, 2).tail == [1, 2]

    def test_nil_values_never_qualify(self):
        b = BAT(INT, [1, nil, 3])
        assert b.select(nil, nil).tail == [1, 3]

    def test_thetaselect_operators(self):
        b = make_int_bat([1, 2, 3, 4])
        assert b.thetaselect(2, ">").tail == [3, 4]
        assert b.thetaselect(2, "<=").tail == [1, 2]
        assert b.thetaselect(3, "!=").tail == [1, 2, 4]

    def test_thetaselect_bad_op(self):
        with pytest.raises(StorageError):
            make_int_bat([1]).thetaselect(1, "~")

    def test_likeselect(self):
        b = BAT(STR, ["FURNITURE", "MACHINERY", "AUTOMOBILE"])
        assert b.likeselect("%URE").tail == ["FURNITURE"]
        assert b.likeselect("_ACHINERY").tail == ["MACHINERY"]

    def test_likeselect_on_int_raises(self):
        with pytest.raises(TypeMismatchError):
            make_int_bat([1]).likeselect("%")


class TestJoins:
    def test_leftjoin_void_other_is_fetch(self):
        oids = BAT(OID, [2, 0], head=[10, 11])
        values = BAT(STR, ["a", "b", "c"])  # void head 0..2
        out = oids.leftjoin(values)
        assert list(out.items()) == [(10, "c"), (11, "a")]

    def test_leftjoin_drops_misses(self):
        oids = BAT(OID, [5], head=[1])
        values = BAT(STR, ["a"])
        assert oids.leftjoin(values).count() == 0

    def test_leftjoin_materialised_other_hash(self):
        left = BAT(OID, [7, 8], head=[0, 1])
        right = BAT(STR, ["x", "y"], head=[8, 7])
        out = left.leftjoin(right)
        assert list(out.items()) == [(0, "y"), (1, "x")]

    def test_leftjoin_duplicates_multiply(self):
        left = BAT(OID, [1])
        right = BAT(STR, ["a", "b"], head=[1, 1])
        assert left.leftjoin(right).tail == ["a", "b"]

    def test_leftfetchjoin_miss_raises(self):
        oids = BAT(OID, [5])
        values = BAT(STR, ["a"])
        with pytest.raises(StorageError):
            oids.leftfetchjoin(values)

    def test_leftfetchjoin_propagates_nil(self):
        oids = BAT(OID, [0, nil, 0])
        values = BAT(STR, ["a"])
        assert oids.leftfetchjoin(values).tail == ["a", nil, "a"]

    def test_reverse_swaps_columns(self):
        b = BAT(INT, [5, 6], head=[10, 20])
        r = b.reverse()
        assert list(r.heads()) == [5, 6]
        assert r.tail == [10, 20]

    def test_reverse_nil_tail_raises(self):
        with pytest.raises(StorageError):
            BAT(INT, [nil]).reverse()

    def test_mirror_identity_on_heads(self):
        b = BAT(INT, [5, 6], head=[3, 4])
        m = b.mirror()
        assert list(m.items()) == [(3, 3), (4, 4)]

    def test_mark_renumbers_dense(self):
        b = BAT(INT, [5, 6], head=[9, 4])
        m = b.mark(base=100)
        assert m.is_void_head
        assert list(m.heads()) == [100, 101]
        assert m.tail == [5, 6]

    def test_project_constant(self):
        b = make_int_bat([1, 2, 3])
        p = b.project("k")
        assert p.tail == ["k", "k", "k"]
        assert p.tail_type is STR

    def test_slice(self):
        b = make_int_bat([0, 1, 2, 3, 4])
        assert b.slice_(1, 3).tail == [1, 2, 3]
        assert b.slice_(3, 99).tail == [3, 4]
        assert b.slice_(4, 2).count() == 0

    def test_semijoin_and_kdifference(self):
        b = BAT(INT, [10, 20, 30], head=[1, 2, 3])
        keys = BAT(INT, [0, 0], head=[2, 9])
        assert b.semijoin(keys).tail == [20]
        assert b.kdifference(keys).tail == [10, 30]


class TestOrderingGrouping:
    def test_sort_ascending_stable(self):
        b = BAT(INT, [3, 1, 2, 1])
        s = b.sort()
        assert s.tail == [1, 1, 2, 3]
        assert list(s.heads()) == [1, 3, 2, 0]

    def test_sort_descending(self):
        b = BAT(STR, ["b", "c", "a"])
        assert b.sort(reverse=True).tail == ["c", "b", "a"]

    def test_sort_nils_first_ascending(self):
        b = BAT(INT, [2, nil, 1])
        assert b.sort().tail == [nil, 1, 2]

    def test_group_basic(self):
        b = BAT(STR, ["x", "y", "x", "z", "y"])
        groups, extents, hist = b.group()
        assert groups.tail == [0, 1, 0, 2, 1]
        assert extents.tail == [0, 1, 3]
        assert hist.tail == [2, 2, 1]

    def test_group_nil_forms_its_own_group(self):
        b = BAT(INT, [1, nil, nil, 1])
        groups, _extents, hist = b.group()
        assert groups.tail == [0, 1, 1, 0]
        assert hist.tail == [2, 2]

    def test_refine_group(self):
        a = BAT(STR, ["x", "x", "y", "y"])
        groups, _, _ = a.group()
        b = BAT(INT, [1, 2, 1, 1])
        refined, _extents, hist = b.refine_group(groups)
        assert refined.tail == [0, 1, 2, 2]
        assert hist.tail == [1, 1, 2]

    def test_refine_group_length_mismatch(self):
        with pytest.raises(StorageError):
            BAT(INT, [1]).refine_group(BAT(OID, [0, 0]))


class TestAggregates:
    def test_scalar_aggregates(self):
        b = BAT(INT, [4, 1, nil, 3])
        assert b.aggregate("count") == 4
        assert b.aggregate("sum") == 8
        assert b.aggregate("min") == 1
        assert b.aggregate("max") == 4
        assert b.aggregate("avg") == pytest.approx(8 / 3)

    def test_aggregate_empty_returns_nil_except_count(self):
        b = BAT(INT, [nil, nil])
        assert b.aggregate("sum") is nil
        assert b.aggregate("count") == 2

    def test_unknown_aggregate(self):
        with pytest.raises(StorageError):
            BAT(INT, [1]).aggregate("median")

    def test_grouped_sum(self):
        values = BAT(INT, [10, 20, 30, 40])
        groups = BAT(OID, [0, 1, 0, 1])
        out = values.grouped_aggregate(groups, 2, "sum")
        assert out.tail == [40, 60]

    def test_grouped_count_counts_nils(self):
        values = BAT(INT, [nil, 1, nil])
        groups = BAT(OID, [0, 0, 1])
        out = values.grouped_aggregate(groups, 2, "count")
        assert out.tail == [2, 1]

    def test_grouped_avg_empty_group_nil(self):
        values = BAT(INT, [nil])
        groups = BAT(OID, [0])
        out = values.grouped_aggregate(groups, 1, "avg")
        assert out.tail == [nil]


class TestCalc:
    def test_bat_bat_arithmetic(self):
        a = BAT(INT, [1, 2, 3])
        b = BAT(INT, [10, 20, 30])
        assert a.calc(b, "+").tail == [11, 22, 33]
        assert b.calc(a, "*").tail == [10, 40, 90]

    def test_division_yields_dbl(self):
        a = BAT(INT, [3])
        out = a.calc_const(2, "/")
        assert out.tail == [1.5]
        assert out.tail_type is DBL

    def test_division_by_zero_is_nil(self):
        a = BAT(INT, [3])
        assert a.calc_const(0, "/").tail == [nil]

    def test_comparison_yields_bit(self):
        a = BAT(INT, [1, 5])
        out = a.calc_const(3, "<")
        assert out.tail == [True, False]
        assert out.tail_type.name == "bit"

    def test_nil_propagates(self):
        a = BAT(INT, [1, nil])
        assert a.calc_const(1, "+").tail == [2, nil]

    def test_swapped_const(self):
        a = BAT(INT, [1, 2])
        assert a.calc_const(10, "-", swapped=True).tail == [9, 8]

    def test_length_mismatch_raises(self):
        with pytest.raises(StorageError):
            BAT(INT, [1]).calc(BAT(INT, [1, 2]), "+")

    def test_type_promotion_int_dbl(self):
        a = BAT(INT, [1])
        b = BAT(DBL, [0.5])
        out = a.calc(b, "+")
        assert out.tail_type is DBL

    def test_preserves_heads(self):
        a = BAT(INT, [1, 2], head=[7, 9])
        out = a.calc_const(1, "+")
        assert list(out.heads()) == [7, 9]
