"""End-to-end tests: SQL text → MAL plan → interpreter → result rows."""

import datetime

import pytest

from repro.errors import BindError, SqlError
from repro.mal import Interpreter
from repro.mal.optimizer import default_pipe, sequential_pipe
from repro.mal.dataflow import SimulatedScheduler
from repro.sqlfe import compile_sql
from repro.storage import Catalog, DATE, DBL, INT, STR


@pytest.fixture
def catalog():
    cat = Catalog()
    orders = cat.schema().create_table(
        "orders",
        [("o_orderkey", INT), ("o_custkey", INT), ("o_total", DBL),
         ("o_date", DATE)],
    )
    orders.insert_many([
        [1, 10, 100.0, datetime.date(1995, 1, 10)],
        [2, 20, 250.0, datetime.date(1995, 6, 1)],
        [3, 10, 50.0, datetime.date(1996, 3, 5)],
        [4, 30, 300.0, datetime.date(1996, 7 , 20)],
        [5, 20, 120.0, datetime.date(1997, 2, 14)],
    ])
    cust = cat.schema().create_table(
        "customer", [("c_custkey", INT), ("c_name", STR), ("c_nation", STR)]
    )
    cust.insert_many([
        [10, "ann", "FRANCE"],
        [20, "bob", "GERMANY"],
        [30, "cec", "FRANCE"],
    ])
    return cat


def run(catalog, sql, pipeline=None):
    program = compile_sql(catalog, sql)
    if pipeline is not None:
        program = pipeline.apply(program)
    return Interpreter(catalog).run(program).rows()


class TestProjectionsAndFilters:
    def test_select_one_column(self, catalog):
        rows = run(catalog, "select o_orderkey from orders")
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_figure1_shape(self, catalog):
        rows = run(catalog, "select o_total from orders where o_custkey = 10")
        assert rows == [(100.0,), (50.0,)]

    def test_multiple_predicates_conjunction(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders "
            "where o_custkey = 20 and o_total > 200",
        )
        assert rows == [(2,)]

    def test_range_between(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders where o_total between 100 and 260",
        )
        assert rows == [(1,), (2,), (5,)]

    def test_date_predicate_with_interval(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders "
            "where o_date < date '1996-01-01' + interval '90' day",
        )
        # 1996-01-01 + 90 days = 1996-03-31; orders 1, 2 and 3 fall before it
        assert rows == [(1,), (2,), (3,)]

    def test_or_predicate(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders "
            "where o_total < 60 or o_total > 290",
        )
        assert rows == [(3,), (4,)]

    def test_in_list(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders where o_custkey in (10, 30)",
        )
        assert rows == [(1,), (3,), (4,)]

    def test_like(self, catalog):
        rows = run(
            catalog, "select c_name from customer where c_nation like 'FR%'"
        )
        assert rows == [("ann",), ("cec",)]

    def test_not_like(self, catalog):
        rows = run(
            catalog,
            "select c_name from customer where c_nation not like 'FR%'",
        )
        assert rows == [("bob",)]

    def test_arithmetic_in_select(self, catalog):
        rows = run(
            catalog,
            "select o_total * 2 from orders where o_orderkey = 1",
        )
        assert rows == [(200.0,)]

    def test_constant_output(self, catalog):
        rows = run(catalog, "select 7 from customer")
        assert rows == [(7,), (7,), (7,)]

    def test_case_when(self, catalog):
        rows = run(
            catalog,
            "select case when o_total >= 200 then 'big' else 'small' end "
            "from orders",
        )
        assert rows == [("small",), ("big",), ("small",), ("big",), ("small",)]

    def test_extract_year(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders "
            "where extract(year from o_date) = 1996",
        )
        assert rows == [(3,), (4,)]


class TestJoins:
    def test_where_equi_join(self, catalog):
        rows = run(
            catalog,
            "select c_name, o_total from orders, customer "
            "where o_custkey = c_custkey and o_total > 200",
        )
        assert sorted(rows) == [("bob", 250.0), ("cec", 300.0)]

    def test_join_on_syntax(self, catalog):
        rows = run(
            catalog,
            "select c_name from orders join customer "
            "on o_custkey = c_custkey where o_orderkey = 1",
        )
        assert rows == [("ann",)]

    def test_join_with_both_side_filters(self, catalog):
        rows = run(
            catalog,
            "select o_orderkey from orders, customer "
            "where o_custkey = c_custkey and c_nation = 'FRANCE' "
            "and o_total >= 100",
        )
        assert sorted(rows) == [(1,), (4,)]

    def test_cross_join_rejected(self, catalog):
        with pytest.raises(SqlError):
            run(catalog, "select o_orderkey from orders, customer")

    def test_join_duplicates_multiply(self, catalog):
        # customer 10 has two orders: joining duplicates the customer row
        rows = run(
            catalog,
            "select c_name from orders, customer "
            "where o_custkey = c_custkey and c_custkey = 10",
        )
        assert rows == [("ann",), ("ann",)]


class TestAggregates:
    def test_scalar_count_star(self, catalog):
        assert run(catalog, "select count(*) from orders") == [(5,)]

    def test_scalar_sum_avg(self, catalog):
        rows = run(catalog, "select sum(o_total), avg(o_total) from orders")
        assert rows == [(820.0, 164.0)]

    def test_scalar_min_max(self, catalog):
        rows = run(catalog, "select min(o_total), max(o_total) from orders")
        assert rows == [(50.0, 300.0)]

    def test_filtered_aggregate(self, catalog):
        rows = run(
            catalog,
            "select count(*) from orders where o_total > 100",
        )
        assert rows == [(3,)]

    def test_group_by(self, catalog):
        rows = run(
            catalog,
            "select o_custkey, count(*), sum(o_total) from orders "
            "group by o_custkey order by o_custkey",
        )
        assert rows == [(10, 2, 150.0), (20, 2, 370.0), (30, 1, 300.0)]

    def test_group_by_expression_output(self, catalog):
        rows = run(
            catalog,
            "select o_custkey, sum(o_total) / count(*) as mean from orders "
            "group by o_custkey order by o_custkey",
        )
        assert rows == [(10, 75.0), (20, 185.0), (30, 300.0)]

    def test_having(self, catalog):
        rows = run(
            catalog,
            "select o_custkey, count(*) as n from orders group by o_custkey "
            "having count(*) > 1 order by o_custkey",
        )
        assert rows == [(10, 2), (20, 2)]

    def test_group_by_join(self, catalog):
        rows = run(
            catalog,
            "select c_nation, sum(o_total) from orders, customer "
            "where o_custkey = c_custkey group by c_nation order by c_nation",
        )
        assert rows == [("FRANCE", 450.0), ("GERMANY", 370.0)]

    def test_aggregate_of_expression(self, catalog):
        rows = run(catalog, "select sum(o_total * 2) from orders")
        assert rows == [(1640.0,)]

    def test_ungrouped_column_rejected(self, catalog):
        with pytest.raises(SqlError):
            run(catalog, "select o_custkey, count(*) from orders")


class TestOrderingAndLimit:
    def test_order_by_asc(self, catalog):
        rows = run(catalog, "select o_total from orders order by o_total")
        assert rows == [(50.0,), (100.0,), (120.0,), (250.0,), (300.0,)]

    def test_order_by_desc(self, catalog):
        rows = run(
            catalog, "select o_total from orders order by o_total desc"
        )
        assert rows == [(300.0,), (250.0,), (120.0,), (100.0,), (50.0,)]

    def test_order_by_two_keys(self, catalog):
        rows = run(
            catalog,
            "select o_custkey, o_total from orders "
            "order by o_custkey asc, o_total desc",
        )
        assert rows == [
            (10, 100.0), (10, 50.0), (20, 250.0), (20, 120.0), (30, 300.0)
        ]

    def test_order_by_position(self, catalog):
        rows = run(catalog, "select o_total from orders order by 1 desc limit 2")
        assert rows == [(300.0,), (250.0,)]

    def test_order_by_alias(self, catalog):
        rows = run(
            catalog,
            "select o_total as t from orders order by t limit 1",
        )
        assert rows == [(50.0,)]

    def test_limit_without_order(self, catalog):
        rows = run(catalog, "select o_orderkey from orders limit 3")
        assert len(rows) == 3

    def test_distinct(self, catalog):
        rows = run(
            catalog,
            "select distinct c_nation from customer order by c_nation",
        )
        assert rows == [("FRANCE",), ("GERMANY",)]

    def test_distinct_pair(self, catalog):
        rows = run(
            catalog,
            "select distinct o_custkey, o_custkey from orders order by 1",
        )
        assert rows == [(10, 10), (20, 20), (30, 30)]


class TestBinderErrors:
    def test_unknown_table(self, catalog):
        with pytest.raises(Exception):
            run(catalog, "select x from nope")

    def test_unknown_column(self, catalog):
        with pytest.raises(BindError):
            run(catalog, "select nope from orders")

    def test_ambiguous_column(self, catalog):
        cat = catalog
        cat.schema().create_table("dup", [("o_total", DBL)])
        with pytest.raises(BindError):
            run(cat, "select o_total from orders, dup")

    def test_bad_qualifier(self, catalog):
        with pytest.raises(BindError):
            run(catalog, "select z.o_total from orders")


class TestWithOptimizers:
    def test_sequential_pipe_same_answer(self, catalog):
        sql = (
            "select o_custkey, sum(o_total) from orders "
            "group by o_custkey order by o_custkey"
        )
        plain = run(catalog, sql)
        optimized = run(catalog, sql, sequential_pipe())
        assert plain == optimized

    def test_default_pipe_with_dataflow_same_answer(self, catalog):
        sql = "select count(*) from orders where o_total > 60"
        program = default_pipe(nparts=2, mitosis_threshold=1).apply(
            compile_sql(catalog, sql)
        )
        result = SimulatedScheduler(catalog, workers=2).run(program)
        assert result.rows() == [(4,)]
