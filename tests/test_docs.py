"""Documentation invariants: generated references stay in sync and the
public API carries docstrings."""

import os

import pytest

import repro
from repro.mal.modules import reference_text, registered_names

DOCS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "docs")


class TestMalReference:
    def test_reference_covers_every_instruction(self):
        text = reference_text()
        for qualified_name in registered_names():
            assert f"`{qualified_name}`" in text

    def test_reference_has_no_undocumented_entries(self):
        assert "(undocumented)" not in reference_text()

    def test_committed_reference_in_sync(self):
        path = os.path.join(DOCS_DIR, "mal_reference.md")
        with open(path) as handle:
            committed = handle.read()
        assert committed.strip() == reference_text().strip(), (
            "docs/mal_reference.md is stale; regenerate with "
            "python -c \"from repro.mal.modules import reference_text; "
            "open('docs/mal_reference.md','w')"
            ".write(reference_text() + '\\n')\""
        )


class TestDocstringCoverage:
    def _public_names(self, module):
        return [
            getattr(module, name) for name in getattr(module, "__all__", [])
            if not isinstance(getattr(module, name), (str, int, float))
            and getattr(module, name) is not None  # the nil sentinel
        ]

    @pytest.mark.parametrize("module_name", [
        "repro", "repro.core", "repro.storage", "repro.mal",
        "repro.sqlfe", "repro.server", "repro.profiler", "repro.dot",
        "repro.layout", "repro.svg", "repro.viz", "repro.tpch",
        "repro.workloads",
    ])
    def test_every_public_item_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for item in self._public_names(module):
            assert getattr(item, "__doc__", None), (
                f"{module_name}: {item!r} lacks a docstring"
            )

    def test_docs_directory_complete(self):
        for name in ("architecture.md", "mal_reference.md",
                     "trace_format.md"):
            assert os.path.exists(os.path.join(DOCS_DIR, name))
