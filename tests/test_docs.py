"""Documentation invariants: generated references stay in sync, the
public API carries docstrings, and prose never drifts from the code —
every module path, CLI subcommand, metric family and intra-repo link
mentioned in README.md and docs/*.md must exist."""

import glob
import importlib
import os
import re

import pytest

import repro
from repro.mal.modules import reference_text, registered_names

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)
DOCS_DIR = os.path.join(REPO_ROOT, "docs")


def _doc_files():
    """README.md plus every markdown file under docs/."""
    paths = [os.path.join(REPO_ROOT, "README.md")]
    paths += sorted(glob.glob(os.path.join(DOCS_DIR, "*.md")))
    return paths


def _doc_texts():
    return {path: open(path).read() for path in _doc_files()}


class TestMalReference:
    def test_reference_covers_every_instruction(self):
        text = reference_text()
        for qualified_name in registered_names():
            assert f"`{qualified_name}`" in text

    def test_reference_has_no_undocumented_entries(self):
        assert "(undocumented)" not in reference_text()

    def test_committed_reference_in_sync(self):
        path = os.path.join(DOCS_DIR, "mal_reference.md")
        with open(path) as handle:
            committed = handle.read()
        assert committed.strip() == reference_text().strip(), (
            "docs/mal_reference.md is stale; regenerate with "
            "python -c \"from repro.mal.modules import reference_text; "
            "open('docs/mal_reference.md','w')"
            ".write(reference_text() + '\\n')\""
        )


class TestDocstringCoverage:
    def _public_names(self, module):
        return [
            getattr(module, name) for name in getattr(module, "__all__", [])
            if not isinstance(getattr(module, name), (str, int, float))
            and getattr(module, name) is not None  # the nil sentinel
        ]

    @pytest.mark.parametrize("module_name", [
        "repro", "repro.core", "repro.storage", "repro.mal",
        "repro.sqlfe", "repro.server", "repro.profiler", "repro.dot",
        "repro.layout", "repro.svg", "repro.viz", "repro.tpch",
        "repro.workloads", "repro.metrics", "repro.faults",
    ])
    def test_every_public_item_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for item in self._public_names(module):
            assert getattr(item, "__doc__", None), (
                f"{module_name}: {item!r} lacks a docstring"
            )

    def test_docs_directory_complete(self):
        for name in ("adaptive.md", "architecture.md", "durability.md",
                     "mal_reference.md", "trace_format.md",
                     "metrics_reference.md", "operations.md",
                     "streaming.md"):
            assert os.path.exists(os.path.join(DOCS_DIR, name))


class TestProseMatchesCode:
    """The docs-consistency gate: names in prose must exist in code."""

    MODULE_PATH = re.compile(r"`(repro(?:\.[A-Za-z_]\w*)+)")
    CLI_COMMAND = re.compile(r"python -m repro ([a-z][\w-]*)")
    METRIC_NAME = re.compile(r"\brepro_[a-z0-9_]+\b")
    MD_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")
    FILE_PATH = re.compile(r"`([\w.-]+(?:/[\w.-]+)+\.(?:md|py))`")

    @staticmethod
    def _resolvable(dotted):
        """True if ``repro.a.b.c`` is a module, or a module plus an
        attribute chain (``repro.metrics.REGISTRY.reset``)."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            for attr in parts[cut:]:
                if not hasattr(obj, attr):
                    return False
                obj = getattr(obj, attr)
            return True
        return False

    def test_module_paths_exist(self):
        broken = []
        for path, text in _doc_texts().items():
            for dotted in set(self.MODULE_PATH.findall(text)):
                if not self._resolvable(dotted):
                    broken.append(f"{os.path.basename(path)}: `{dotted}`")
        assert not broken, f"docs mention unknown module paths: {broken}"

    def test_cli_subcommands_exist(self):
        from repro.cli import _COMMANDS

        broken = []
        for path, text in _doc_texts().items():
            for command in set(self.CLI_COMMAND.findall(text)):
                if command not in _COMMANDS:
                    broken.append(f"{os.path.basename(path)}: {command}")
        assert not broken, f"docs mention unknown CLI subcommands: {broken}"

    def test_metric_names_match_registry(self):
        import repro.metrics as metrics

        families = set(metrics.snapshot())
        suffixes = ("_bucket", "_sum", "_count")

        def normalize(name):
            for suffix in suffixes:
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    return name[: -len(suffix)]
            return name

        mentioned = set()
        for path, text in _doc_texts().items():
            for name in self.METRIC_NAME.findall(text):
                name = normalize(name)
                assert name in families, (
                    f"{os.path.basename(path)} mentions unregistered "
                    f"metric {name}"
                )
                mentioned.add(name)
        undocumented = families - mentioned
        assert not undocumented, (
            f"registered families missing from docs: {sorted(undocumented)}"
        )

    def test_no_dead_intra_repo_links(self):
        broken = []
        for path, text in _doc_texts().items():
            base = os.path.dirname(path)
            for target in self.MD_LINK.findall(text):
                if target.startswith(("http://", "https://", "#")):
                    continue
                resolved = os.path.join(base, target.split("#")[0])
                if not os.path.exists(resolved):
                    broken.append(f"{os.path.basename(path)} -> {target}")
        assert not broken, f"dead links: {broken}"

    HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

    @classmethod
    def _anchors(cls, text):
        """GitHub-style anchor slugs for every heading in a doc."""
        slugs = set()
        for heading in cls.HEADING.findall(text):
            slug = re.sub(r"[^\w\- ]", "", heading.strip().lower())
            slugs.add(slug.replace(" ", "-"))
        return slugs

    def test_no_dead_anchors(self):
        """Every ``#fragment`` in an intra-repo link names a heading."""
        texts = _doc_texts()
        broken = []
        for path, text in texts.items():
            base = os.path.dirname(path)
            for target in self.MD_LINK.findall(text):
                if target.startswith(("http://", "https://")):
                    continue
                if "#" not in target:
                    continue
                file_part, fragment = target.split("#", 1)
                resolved = path if not file_part \
                    else os.path.join(base, file_part)
                resolved = os.path.normpath(resolved)
                if resolved not in texts:
                    continue  # dead files are the link test's job
                if fragment not in self._anchors(texts[resolved]):
                    broken.append(f"{os.path.basename(path)} -> "
                                  f"{target}")
        assert not broken, f"dead anchors: {broken}"

    def test_streaming_doc_covers_every_verb(self):
        """docs/streaming.md documents each protocol verb, and its verb
        table names nothing the dispatcher does not accept."""
        from repro.server.protocol import VERBS

        text = open(os.path.join(DOCS_DIR, "streaming.md")).read()
        missing = [verb for verb in VERBS if f"`{verb}`" not in text]
        assert not missing, (
            f"streaming.md does not document verbs: {missing}")
        # table rows whose first cell is a single backticked word must
        # name real verbs or error codes — no phantom protocol surface
        from repro.server.protocol import ERROR_CODES

        known = set(VERBS) | set(ERROR_CODES)
        phantom = [cell for cell in
                   re.findall(r"^\| `([a-z-]+)` \|", text, re.MULTILINE)
                   if cell not in known]
        assert not phantom, (
            f"streaming.md tables name unknown verbs/codes: {phantom}")

    def test_streaming_doc_covers_every_error_code(self):
        from repro.server.protocol import ERROR_CODES

        text = open(os.path.join(DOCS_DIR, "streaming.md")).read()
        missing = [code for code in ERROR_CODES
                   if f"`{code}`" not in text]
        assert not missing, (
            f"streaming.md does not document error codes: {missing}")

    def test_backtick_file_paths_exist(self):
        roots = (REPO_ROOT, DOCS_DIR, os.path.join(REPO_ROOT, "src/repro"))
        broken = []
        for path, text in _doc_texts().items():
            for target in set(self.FILE_PATH.findall(text)):
                if not any(os.path.exists(os.path.join(root, target))
                           for root in roots):
                    broken.append(f"{os.path.basename(path)}: {target}")
        assert not broken, f"docs mention missing files: {broken}"
