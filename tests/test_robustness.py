"""Failure-injection and robustness tests across the pipeline."""

import pytest

from repro.core.textual import TextualStethoscope
from repro.errors import MappingError, StethoscopeError
from repro.mal import Interpreter
from repro.profiler import Profiler, UdpEmitter, write_trace
from repro.server import Database
from repro.sqlfe import compile_sql
from repro.storage import Catalog, INT
from repro.tpch import populate


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT)])
    t.insert_many([[i] for i in range(20)])
    return cat


class TestMalformedStream:
    def test_garbage_datagrams_counted_not_fatal(self):
        with TextualStethoscope() as textual:
            connection = textual.connect("noisy")
            emitter = UdpEmitter(port=connection.port)
            emitter.send_line("complete garbage")
            emitter.send_line('[ 0,\t0,\t"start",\t0,\t0,\t0,\t0,\t"a.b();"\t]')
            emitter.send_line("[ broken, event ]")
            emitter.send_end()
            textual.drain_until_ended(max_rounds=100, timeout=0.05)
            assert connection.malformed == 2
            assert len(connection.events) == 1
            emitter.close()

    def test_interleaved_dot_and_garbage(self):
        with TextualStethoscope() as textual:
            connection = textual.connect("noisy")
            emitter = UdpEmitter(port=connection.port)
            emitter.send_line("#dot\tdigraph G {")
            emitter.send_line("???")
            emitter.send_line("#dot\t}")
            emitter.send_end()
            textual.drain_until_ended(max_rounds=100, timeout=0.05)
            assert connection.dot_text() == "digraph G {\n}"
            emitter.close()


class TestTracePlanMismatch:
    def test_offline_session_rejects_foreign_trace(self, catalog, tmp_path):
        """A trace whose pcs exceed the plan is detected at load time —
        the user mixed up files from two different queries."""
        from repro.dot import plan_to_dot

        small = compile_sql(catalog, "select x from t limit 1")
        big = compile_sql(
            catalog,
            "select count(*) from t where x > 1 and x < 15",
        )
        profiler = Profiler()
        Interpreter(catalog, listener=profiler).run(big)
        dot_path = str(tmp_path / "small.dot")
        trace_path = str(tmp_path / "big.trace")
        with open(dot_path, "w") as f:
            f.write(plan_to_dot(small))
        write_trace(profiler.events, trace_path)
        from repro.core.session import Stethoscope

        with pytest.raises(MappingError):
            Stethoscope.offline(dot_path, trace_path)


class TestThreadedDatabase:
    def test_threaded_scheduler_database(self):
        db = Database(workers=3, scheduler="threaded",
                      mitosis_threshold=100)
        populate(db.catalog, scale_factor=0.05, seed=2)
        profiler = Profiler()
        outcome = db.execute(
            "select count(*) from lineitem where l_quantity > 10",
            listener=profiler,
        )
        check = Database(catalog=db.catalog, workers=1,
                         pipeline_name="sequential_pipe").execute(
            "select count(*) from lineitem where l_quantity > 10"
        )
        assert outcome.rows == check.rows
        assert len({e.thread for e in profiler.events}) > 1

    def test_threaded_error_propagates(self):
        db = Database(scheduler="threaded")
        with pytest.raises(Exception):
            db.execute("select nope from nothing")


class TestDegenerateInputs:
    def test_empty_table_queries(self, catalog):
        catalog.schema().create_table("void_t", [("v", INT)])
        db = Database(catalog=catalog)
        assert db.execute("select count(*) from void_t").rows == [(0,)]
        assert db.execute("select v from void_t order by v").rows == []
        assert db.execute(
            "select v, count(*) from void_t group by v"
        ).rows == []

    def test_aggregate_over_empty_is_nil(self, catalog):
        catalog.schema().create_table("void_u", [("v", INT)])
        db = Database(catalog=catalog)
        assert db.execute("select sum(v) from void_u").rows == [(None,)]

    def test_whole_table_filtered_out(self, catalog):
        db = Database(catalog=catalog)
        rows = db.execute("select x from t where x > 9999").rows
        assert rows == []

    def test_replay_of_empty_trace(self, catalog):
        from repro.core.session import Stethoscope
        from repro.dot import plan_to_dot

        program = compile_sql(catalog, "select x from t limit 1")
        session = Stethoscope.offline_from_memory(
            plan_to_dot(program), []
        )
        assert session.replay.run_to_end() == 0
        assert session.trace_map.coverage() == 0.0
        assert "not executed" in session.tooltip("n0")
