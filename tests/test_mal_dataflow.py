"""Unit tests for the dataflow schedulers (simulated and threaded)."""

import pytest

from repro.errors import MalRuntimeError
from repro.mal import Interpreter
from repro.mal.dataflow import SimulatedScheduler, ThreadedScheduler
from repro.mal.parser import parse_instruction_text
from repro.storage import Catalog, INT


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("nums", [("a", INT), ("b", INT)])
    t.insert_many([[i, i * 2] for i in range(500)])
    return cat


PARALLEL_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","nums","a",0);
    X_3 := sql.bind(X_1,"sys","nums","b",0);
    X_4 := algebra.thetaselect(X_2,100,">");
    X_5 := algebra.thetaselect(X_3,100,">");
    X_6 := aggr.count(X_4);
    X_7 := aggr.count(X_5);
    X_8 := calc.add(X_6,X_7);
    X_9 := sql.resultSet(1,1);
    X_10 := sql.rsColumn(X_9,"sys.nums","n","lng",X_8);
    sql.exportResult(X_10);
"""


def parallel_program():
    program = parse_instruction_text(PARALLEL_TEXT)
    program.dataflow_enabled = True
    return program


class TestSimulatedScheduler:
    def test_same_answer_as_sequential(self, catalog):
        program = parallel_program()
        seq = Interpreter(catalog).run(parse_instruction_text(PARALLEL_TEXT))
        par = SimulatedScheduler(catalog, workers=4).run(program)
        assert par.rows() == seq.rows()

    def test_parallel_faster_than_sequential_schedule(self, catalog):
        program = parallel_program()
        par = SimulatedScheduler(catalog, workers=4).run(program)
        sequential = parse_instruction_text(PARALLEL_TEXT)  # dataflow off
        seq = SimulatedScheduler(catalog, workers=4).run(sequential)
        assert par.total_usec < seq.total_usec

    def test_dataflow_disabled_uses_single_thread(self, catalog):
        program = parse_instruction_text(PARALLEL_TEXT)
        result = SimulatedScheduler(catalog, workers=4).run(program)
        assert {r.thread for r in result.runs} == {0}

    def test_dataflow_enabled_uses_multiple_threads(self, catalog):
        result = SimulatedScheduler(catalog, workers=4).run(parallel_program())
        assert len({r.thread for r in result.runs}) > 1

    def test_deterministic(self, catalog):
        a = SimulatedScheduler(catalog, workers=3).run(parallel_program())
        b = SimulatedScheduler(catalog, workers=3).run(parallel_program())
        assert [(r.pc, r.start_usec, r.end_usec, r.thread) for r in a.runs] == [
            (r.pc, r.start_usec, r.end_usec, r.thread) for r in b.runs
        ]

    def test_dependencies_respected(self, catalog):
        result = SimulatedScheduler(catalog, workers=4).run(parallel_program())
        ends = {r.pc: r.end_usec for r in result.runs}
        starts = {r.pc: r.start_usec for r in result.runs}
        program = parallel_program()
        for pc, deps in program.dependencies().items():
            for dep in deps:
                assert ends[dep] <= starts[pc], f"pc {pc} started before dep {dep}"

    def test_listener_stream_in_time_order(self, catalog):
        events = []
        SimulatedScheduler(
            catalog, workers=4,
            listener=lambda ph, r: events.append(
                (r.start_usec if ph == "start" else r.end_usec, ph, r.pc)
            ),
        ).run(parallel_program())
        times = [e[0] for e in events]
        assert times == sorted(times)
        assert sum(1 for e in events if e[1] == "start") == len(events) // 2

    def test_zero_workers_rejected(self, catalog):
        with pytest.raises(MalRuntimeError):
            SimulatedScheduler(catalog, workers=0)


class TestThreadedScheduler:
    def test_same_answer_as_sequential(self, catalog):
        program = parallel_program()
        seq = Interpreter(catalog).run(parse_instruction_text(PARALLEL_TEXT))
        par = ThreadedScheduler(catalog, workers=4, realtime_scale=1e-4).run(program)
        assert par.rows() == seq.rows()

    def test_events_start_before_done_per_pc(self, catalog):
        events = []
        ThreadedScheduler(
            catalog, workers=4, realtime_scale=1e-4,
            listener=lambda ph, r: events.append((ph, r.pc)),
        ).run(parallel_program())
        seen_start = set()
        for phase, pc in events:
            if phase == "start":
                seen_start.add(pc)
            else:
                assert pc in seen_start

    def test_error_propagates(self, catalog):
        program = parse_instruction_text(
            'X_1 := sql.mvc();\nX_2 := sql.bind(X_1,"sys","nope","x",0);'
        )
        program.dataflow_enabled = True
        with pytest.raises(Exception):
            ThreadedScheduler(catalog, workers=2, realtime_scale=0).run(program)

    def test_all_instructions_run_once(self, catalog):
        result = ThreadedScheduler(catalog, workers=4, realtime_scale=0).run(
            parallel_program()
        )
        assert sorted(r.pc for r in result.runs) == list(range(11))
