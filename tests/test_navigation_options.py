"""Tests for the navigation strategies and the filter-options window."""

import pytest

from repro.core.mapping import PlanTraceMap
from repro.core.navigation import Navigator
from repro.core.options import FilterOptionsWindow
from repro.core.painter import GraphPainter
from repro.dot import plan_to_graph
from repro.errors import StethoscopeError
from repro.layout import layout_graph
from repro.mal.parser import parse_instruction_text
from repro.profiler.events import TraceEvent
from repro.viz import Animator, View, build_virtual_space
from repro.viz.color import GREEN, RED

PLAN_TEXT = """
    X_1 := sql.mvc();
    X_2 := sql.bind(X_1,"sys","t","a",0);
    X_3 := sql.bind(X_1,"sys","t","b",0);
    X_4 := algebra.select(X_2,1);
    X_5 := algebra.leftjoin(X_4,X_3);
    sql.exportResult(X_5);
"""


@pytest.fixture
def setup():
    graph = plan_to_graph(parse_instruction_text(PLAN_TEXT))
    layout = layout_graph(graph)
    return graph, layout


class TestNavigator:
    def test_starts_at_a_root(self, setup):
        graph, layout = setup
        navigator = Navigator(graph, layout)
        assert navigator.current in graph.roots()

    def test_downstream_upstream(self, setup):
        graph, layout = setup
        navigator = Navigator(graph, layout)
        navigator.goto("n1")
        assert navigator.downstream() == "n3"  # bind -> select
        assert navigator.upstream() == "n1"

    def test_downstream_at_leaf_returns_none(self, setup):
        graph, layout = setup
        navigator = Navigator(graph, layout)
        navigator.goto("n5")
        assert navigator.downstream() is None

    def test_sibling_moves_within_rank(self, setup):
        graph, layout = setup
        navigator = Navigator(graph, layout)
        navigator.goto("n1")  # n1 and n2 share the bind rank
        moved = navigator.sibling(1) or navigator.sibling(-1)
        assert moved == "n2"

    def test_next_in_plan(self, setup):
        graph, layout = setup
        navigator = Navigator(graph, layout)
        navigator.goto("n0")
        assert navigator.next_in_plan() == "n1"
        navigator.goto("n5")
        assert navigator.next_in_plan() is None

    def test_goto_unknown_raises(self, setup):
        graph, layout = setup
        with pytest.raises(StethoscopeError):
            Navigator(graph, layout).goto("n99")

    def test_history_back_forward(self, setup):
        graph, layout = setup
        navigator = Navigator(graph, layout)
        navigator.goto("n0")
        navigator.goto("n3")
        navigator.goto("n5")
        assert navigator.back() == "n3"
        assert navigator.back() == "n0"
        assert navigator.forward() == "n3"
        assert navigator.current == "n3"

    def test_back_on_empty_history(self, setup):
        graph, layout = setup
        assert Navigator(graph, layout).back() is None

    def test_camera_follows(self, setup):
        graph, layout = setup
        space = build_virtual_space(layout)
        view = View(space)
        navigator = Navigator(graph, layout, view=view)
        navigator.goto("n4")
        node = layout.nodes["n4"]
        assert (view.camera.x, view.camera.y) == (node.x, node.y)

    def test_animated_camera(self, setup):
        graph, layout = setup
        space = build_virtual_space(layout)
        view = View(space)
        animator = Animator()
        navigator = Navigator(graph, layout, view=view, animator=animator)
        navigator.goto("n4")
        assert animator.active == 1
        animator.run_to_completion()
        node = layout.nodes["n4"]
        assert view.camera.x == pytest.approx(node.x)

    def test_next_colored(self, setup):
        graph, layout = setup
        space = build_virtual_space(layout)
        painter = GraphPainter(space)
        from repro.core.coloring import ColorAction

        painter.apply(ColorAction(4, RED, "t"))
        painter.apply(ColorAction(2, GREEN, "t"))
        painter.flush()
        navigator = Navigator(graph, layout)
        navigator.goto("n0")
        assert navigator.next_colored(painter, RED) == "n4"
        navigator.goto("n0")
        assert navigator.next_colored(painter) == "n2"

    def test_most_expensive(self, setup):
        graph, layout = setup
        events = [
            TraceEvent(0, 100, "done", 1, 0, 50, 0, "x := a.b();"),
            TraceEvent(1, 200, "done", 4, 0, 900, 0, "x := a.b();"),
        ]
        trace_map = PlanTraceMap(graph, events)
        navigator = Navigator(graph, layout)
        assert navigator.most_expensive(trace_map) == "n4"


class TestFilterOptionsWindow:
    def test_default_filter_matches_everything(self):
        window = FilterOptionsWindow()
        event_filter = window.build()
        assert event_filter.statuses is None
        assert event_filter.modules is None
        assert event_filter.min_usec == 0

    def test_toggle_status(self):
        window = FilterOptionsWindow()
        window.toggle_status("start")
        event_filter = window.build()
        assert event_filter.statuses == {"done"}

    def test_toggle_unknown_status(self):
        with pytest.raises(ValueError):
            FilterOptionsWindow().toggle_status("paused")

    def test_toggle_module(self):
        window = FilterOptionsWindow()
        window.toggle_module("language")
        modules = window.build().modules
        assert modules is not None and "language" not in modules

    def test_only_modules(self):
        window = FilterOptionsWindow()
        window.only_modules("algebra", "aggr")
        assert window.build().modules == {"algebra", "aggr"}

    def test_threshold(self):
        window = FilterOptionsWindow()
        window.set_threshold(500)
        assert window.build().min_usec == 500
        with pytest.raises(ValueError):
            window.set_threshold(-1)

    def test_wire_options(self):
        window = FilterOptionsWindow()
        window.toggle_status("start")
        window.only_modules("algebra")
        window.set_threshold(10)
        options = window.to_wire_options()
        assert options == {"statuses": ["done"], "modules": ["algebra"],
                           "min_usec": 10}

    def test_wire_options_empty_when_default(self):
        assert FilterOptionsWindow().to_wire_options() == {}

    def test_filter_actually_filters(self):
        window = FilterOptionsWindow()
        window.only_modules("algebra")
        window.toggle_status("start")
        event_filter = window.build()
        keep = TraceEvent(0, 0, "done", 1, 0, 5, 0,
                          "X := algebra.select(Y,1);")
        drop_module = TraceEvent(1, 0, "done", 2, 0, 5, 0,
                                 "X := sql.mvc();")
        drop_status = TraceEvent(2, 0, "start", 1, 0, 0, 0,
                                 "X := algebra.select(Y,1);")
        assert event_filter.matches(keep)
        assert not event_filter.matches(drop_module)
        assert not event_filter.matches(drop_status)

    def test_render(self):
        window = FilterOptionsWindow()
        window.toggle_module("sql")
        text = window.render()
        assert "[ ] module sql" in text
        assert "[x] module algebra" in text
