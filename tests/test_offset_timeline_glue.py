"""Tests for LIMIT/OFFSET, the rss timeline, online→offline glue and the
screenshot CLI."""

import io

import pytest

from repro.cli import main
from repro.core.analysis import render_rss_sparkline, rss_timeline
from repro.mal import Interpreter
from repro.profiler.events import TraceEvent
from repro.sqlfe import compile_sql
from repro.storage import Catalog, INT


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.schema().create_table("t", [("x", INT)])
    t.insert_many([[i] for i in range(10)])
    return cat


def run(catalog, sql):
    return Interpreter(catalog).run(compile_sql(catalog, sql)).rows()


class TestOffset:
    def test_limit_offset_window(self, catalog):
        rows = run(catalog, "select x from t order by x limit 3 offset 4")
        assert rows == [(4,), (5,), (6,)]

    def test_offset_zero_default(self, catalog):
        rows = run(catalog, "select x from t order by x limit 2")
        assert rows == [(0,), (1,)]

    def test_offset_past_end(self, catalog):
        rows = run(catalog, "select x from t limit 5 offset 100")
        assert rows == []

    def test_offset_requires_integer(self, catalog):
        from repro.errors import SqlParseError

        with pytest.raises(SqlParseError):
            run(catalog, "select x from t limit 5 offset 1.5")


class TestRssTimeline:
    def events(self):
        return [
            TraceEvent(i, i * 100, "done", i, 0, 10, rss, "x := a.b();")
            for i, rss in enumerate([100, 500, 2000, 800, 300])
        ]

    def test_timeline_monotone_clock(self):
        timeline = rss_timeline(self.events(), buckets=10)
        clocks = [t for t, _v in timeline]
        assert clocks == sorted(clocks)
        assert len(timeline) == 10

    def test_peak_preserved(self):
        timeline = rss_timeline(self.events(), buckets=10)
        assert max(v for _t, v in timeline) == 2000

    def test_empty(self):
        assert rss_timeline([]) == []
        assert "empty" in render_rss_sparkline([])

    def test_sparkline_shape(self):
        text = render_rss_sparkline(self.events(), width=20)
        assert "peak 2000 bytes" in text
        assert "@" in text  # the peak bucket reaches the top level


class TestOnlineToOffline:
    def test_round_trip(self, catalog, tmp_path):
        """An OnlineResult converts into a working offline session."""
        from repro.core.online import OnlineResult
        from repro.dot import plan_to_graph
        from repro.profiler import Profiler

        program = compile_sql(catalog, "select count(*) from t")
        profiler = Profiler()
        Interpreter(catalog, listener=profiler).run(program)
        result = OnlineResult(
            graph=plan_to_graph(program), space=None, painter=None,
            events=profiler.events, dot_path=None, trace_path=None,
            query_result=None, sampled_out=0,
        )
        session = result.to_offline_session()
        session.replay.run_to_end()
        assert session.trace_map.coverage() == 1.0

    def test_no_graph_raises(self):
        from repro.core.online import OnlineResult
        from repro.errors import StethoscopeError

        result = OnlineResult(
            graph=None, space=None, painter=None, events=[],
            dot_path=None, trace_path=None, query_result=None,
            sampled_out=0,
        )
        with pytest.raises(StethoscopeError):
            result.to_offline_session()


class TestScreenshotCli:
    def test_screenshot_command(self, catalog, tmp_path):
        from repro.dot import plan_to_dot
        from repro.profiler import Profiler, write_trace

        program = compile_sql(
            catalog, "select count(*) from t where x > 2"
        )
        profiler = Profiler()
        Interpreter(catalog, listener=profiler).run(program)
        dot_path = str(tmp_path / "p.dot")
        trace_path = str(tmp_path / "t.trace")
        with open(dot_path, "w") as f:
            f.write(plan_to_dot(program))
        write_trace(profiler.events, trace_path)
        output = str(tmp_path / "shot.ppm")
        out = io.StringIO()
        code = main(["screenshot", dot_path, trace_path, output,
                     "--width", "320", "--height", "240", "--gradient"],
                    out=out)
        assert code == 0
        from repro.viz.raster import load_ppm

        image = load_ppm(output)
        assert (image.width, image.height) == (320, 240)
