"""Unit, fault and lifecycle tests for the partition worker pool."""

import pytest

from repro.errors import (
    PartitionShipError,
    QueryBudgetError,
    QueryDeadlineError,
    WorkerCrashError,
)
from repro.faults import FaultPlan, armed
from repro.mal.mpool import DEFAULT_MIN_ROWS, PartitionWorkerPool, ShadowBAT
from repro.mal.optimizer.mitosis import extract_fragments
from repro.server.database import Database
from repro.server.lifecycle import QueryContext
from repro.storage import Catalog
from repro.storage.bat import BAT
from repro.storage.types import type_by_name
from repro.tpch import populate, query_sql

SQL = ("select sum(l_extendedprice * l_discount) from lineitem "
       "where l_quantity > 10")


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    populate(cat, scale_factor=0.05, seed=7)
    return cat


@pytest.fixture(scope="module")
def database(catalog):
    return Database(catalog=catalog, workers=4, mitosis_threshold=50)


@pytest.fixture(scope="module")
def program(database):
    return database.compile(SQL)


@pytest.fixture
def pool():
    pool = PartitionWorkerPool(workers=2, min_rows=0).start()
    yield pool
    pool.close()


class TestFragments:
    def test_partitions_are_disjoint_and_complete(self, program):
        fragments = extract_fragments(program)
        assert len(fragments) == 4
        all_pcs = [pc for f in fragments for pc in f.pcs]
        assert len(all_pcs) == len(set(all_pcs))
        for fragment in fragments:
            assert fragment.outputs  # every fragment feeds the fold
            assert fragment.inputs

    def test_unpartitioned_plan_has_no_fragments(self, catalog):
        db = Database(catalog=catalog, workers=1, mitosis_threshold=50)
        assert extract_fragments(db.compile(SQL)) == []


class TestShipBytes:
    def test_roundtrip(self):
        bat = BAT(type_by_name("int"))
        bat.extend([1, 2, 3])
        clone = BAT.from_ship_bytes(bat.to_ship_bytes())
        assert clone.tail == bat.tail
        assert clone.tail_type is bat.tail_type
        assert clone.hseqbase == bat.hseqbase

    def test_memoized_until_mutation(self):
        bat = BAT(type_by_name("int"))
        bat.extend([1, 2, 3])
        first = bat.to_ship_bytes()
        assert bat.to_ship_bytes() is first
        bat.append(4)
        assert bat.to_ship_bytes() is not first


class TestShadowBAT:
    def test_reports_remote_shape(self):
        shadow = ShadowBAT(type_by_name("lng"), rows=1234, footprint=9876)
        assert len(shadow) == 1234
        assert shadow.count() == 1234
        assert shadow.bytes() == 9876
        assert isinstance(shadow, BAT)


class TestLifecycle:
    def test_close_is_idempotent_and_restartable(self):
        pool = PartitionWorkerPool(workers=2, min_rows=0)
        pool.start()
        assert pool.alive == 2
        pool.close()
        pool.close()
        assert pool.alive == 0
        pool.start()
        assert pool.alive == 2
        pool.close()

    def test_single_worker_never_forks(self):
        pool = PartitionWorkerPool(workers=1).start()
        assert pool.alive == 0
        pool.close()

    def test_deadline_propagates_to_workers(self, pool, program, catalog):
        context = QueryContext("q1", deadline_s=0.0)
        with pytest.raises(QueryDeadlineError):
            pool.precompute(program, catalog, context)
        assert pool.precompute(program, catalog)  # pool still healthy

    def test_rss_budget_propagates_to_workers(self, program, catalog):
        pool = PartitionWorkerPool(workers=2, min_rows=0, poll_s=0.01)
        try:
            context = QueryContext("q2", rss_budget_bytes=1)
            # the parent prologue already exceeds a 1-byte budget
            with pytest.raises(QueryBudgetError):
                pool.precompute(program, catalog, context)
        finally:
            pool.close()

    def test_database_owns_pool(self, catalog):
        db = Database(catalog=catalog, workers=4, mitosis_threshold=50,
                      parallel_workers=2, parallel_min_rows=0)
        try:
            assert db.pool is not None and db.pool.alive == 2
            outcome = db.execute(SQL)
            assert outcome.rows
        finally:
            db.close()
        assert db.pool.alive == 0

    def test_database_default_is_in_process(self, catalog):
        db = Database(catalog=catalog)
        assert db.pool is None
        db.close()  # harmless no-op

    def test_default_min_rows_is_conservative(self):
        assert PartitionWorkerPool().min_rows == DEFAULT_MIN_ROWS


class TestFaults:
    def test_worker_crash_is_typed_and_pool_recovers(self, pool, program,
                                                     catalog):
        plan = FaultPlan(seed=3).on("mpool.worker", "crash", limit=1)
        with armed(plan):
            with pytest.raises(WorkerCrashError):
                pool.precompute(program, catalog)
        assert plan.fires("mpool.worker", "crash") == 1
        # the pool re-forked the killed worker; next query is clean
        assert pool.precompute(program, catalog)
        assert pool.alive == 2

    def test_genuine_worker_death_is_typed(self, pool, program, catalog):
        victim = pool._workers[0]
        victim.process.kill()
        victim.process.join(timeout=5.0)
        # note: _ensure_workers_locked in precompute re-forks dead
        # workers *before* dispatch, so kill one mid-collect instead
        original = pool._ensure_workers_locked
        pool._ensure_workers_locked = lambda: None
        try:
            with pytest.raises(WorkerCrashError):
                pool.precompute(program, catalog)
        finally:
            pool._ensure_workers_locked = original
        assert pool.precompute(program, catalog)

    def test_ship_truncate_is_typed(self, pool, program, catalog):
        plan = FaultPlan(seed=5).on("mpool.ship", "truncate", limit=1)
        with armed(plan):
            with pytest.raises(PartitionShipError):
                pool.precompute(program, catalog)
        assert pool.precompute(program, catalog)

    def test_stall_and_latency_only_slow_things_down(self, pool, program,
                                                     catalog):
        baseline = pool.precompute(program, catalog)
        plan = (FaultPlan(seed=7)
                .on("mpool.worker", "stall", value=5)
                .on("mpool.ship", "latency", value=2))
        with armed(plan):
            delayed = pool.precompute(program, catalog)
        assert set(delayed) == set(baseline)
        assert plan.fires("mpool.worker", "stall") == 4
        assert plan.fires("mpool.ship", "latency") == 4

    def test_fault_journal_is_deterministic(self, pool, program, catalog):
        def journal():
            plan = (FaultPlan(seed=11)
                    .on("mpool.worker", "stall", value=1, probability=0.5)
                    .on("mpool.ship", "latency", value=1, probability=0.5))
            with armed(plan):
                pool.precompute(program, catalog)
            return list(plan.journal)

        assert journal() == journal()
