"""Integration tests: textual Stethoscope and online monitoring against a
live Mserver — the paper's §4.2 multithreaded pipeline end to end."""

import pytest

from repro.core.analysis import detect_sequential_anomaly
from repro.core.session import Stethoscope
from repro.core.textual import TextualStethoscope
from repro.errors import StethoscopeError
from repro.profiler import EventFilter, UdpEmitter
from repro.server import Database, MClient, Mserver
from repro.tpch import populate


@pytest.fixture(scope="module")
def database():
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=0.05, seed=3)
    return db


@pytest.fixture()
def server(database):
    with Mserver(database) as srv:
        yield srv


class TestTextualStethoscope:
    def test_collects_dot_and_trace(self, server):
        with TextualStethoscope() as textual:
            connection = textual.connect("local")
            with MClient(port=server.port) as client:
                client.set_profiler(port=connection.port)
                client.query("select count(*) from customer")
            textual.drain_until_ended()
            assert connection.ended
            assert connection.dot_text().startswith("digraph")
            assert connection.events
            statuses = {e.status for e in connection.events}
            assert statuses == {"start", "done"}

    def test_client_side_filter(self, server):
        with TextualStethoscope() as textual:
            connection = textual.connect(
                "local", EventFilter(statuses={"done"})
            )
            with MClient(port=server.port) as client:
                client.set_profiler(port=connection.port)
                client.query("select count(*) from region")
            textual.drain_until_ended()
            assert connection.dropped > 0
            assert all(e.status == "done" for e in connection.events)

    def test_two_servers_merged(self, database):
        # "can connect to multiple MonetDB servers at the same time to
        # receive execution traces from all (distributed) sources"
        with Mserver(database) as server_a, Mserver(database) as server_b, \
                TextualStethoscope() as textual:
            conn_a = textual.connect("a")
            conn_b = textual.connect("b")
            with MClient(port=server_a.port) as client_a:
                client_a.set_profiler(port=conn_a.port)
                client_a.query("select count(*) from region")
            with MClient(port=server_b.port) as client_b:
                client_b.set_profiler(port=conn_b.port)
                client_b.query("select count(*) from nation")
            textual.drain_until_ended()
            merged = textual.merged_events()
            assert conn_a.events and conn_b.events
            assert len(merged) == len(conn_a.events) + len(conn_b.events)
            clocks = [e.clock_usec for e in merged]
            assert clocks == sorted(clocks)

    def test_duplicate_connection_name(self):
        with TextualStethoscope() as textual:
            textual.connect("x")
            with pytest.raises(StethoscopeError):
                textual.connect("x")

    def test_trace_file_written(self, server, tmp_path):
        with TextualStethoscope() as textual:
            connection = textual.connect("local")
            with MClient(port=server.port) as client:
                client.set_profiler(port=connection.port)
                client.query("select count(*) from region")
            textual.drain_until_ended()
            trace_path = str(tmp_path / "t.trace")
            dot_path = str(tmp_path / "p.dot")
            count = connection.write_trace_file(trace_path)
            connection.write_dot_file(dot_path)
        from repro.profiler import read_trace

        assert len(read_trace(trace_path)) == count
        with open(dot_path) as f:
            assert f.read().startswith("digraph")


class TestOnlineSession:
    def run_online(self, server, tmp_path, sql, backlog_threshold=32):
        textual = TextualStethoscope()
        connection = textual.connect("local")

        def run_query():
            with MClient(port=server.port) as client:
                client.set_profiler(port=connection.port)
                return client.query(sql).rows

        session = Stethoscope.online(
            connection, run_query, str(tmp_path),
            backlog_threshold=backlog_threshold,
        )
        try:
            return session.run(timeout_s=20.0)
        finally:
            textual.close()

    def test_end_to_end_monitoring(self, server, tmp_path):
        result = self.run_online(
            server, tmp_path,
            "select count(*) from lineitem where l_quantity > 10",
        )
        assert result.graph is not None
        assert result.query_result and result.query_result[0][0] > 0
        assert result.events
        assert result.dot_path and result.trace_path
        # files usable for a later offline session
        session = Stethoscope.offline(result.dot_path, result.trace_path)
        assert session.trace_map.coverage() > 0

    def test_display_painted(self, server, tmp_path):
        result = self.run_online(
            server, tmp_path, "select count(*) from customer",
        )
        assert result.painter is not None
        # at minimum, the painter processed the stream without backlog left
        assert result.painter.backlog() == 0

    def test_progress_window_completes(self, server, tmp_path):
        result = self.run_online(
            server, tmp_path, "select count(*) from customer",
        )
        assert result.progress is not None
        assert result.progress.complete
        assert "100%" in result.progress.render()

    def test_online_to_offline_followup(self, server, tmp_path):
        result = self.run_online(
            server, tmp_path, "select count(*) from customer",
        )
        session = result.to_offline_session()
        session.replay.run_to_end()
        assert session.replay.at_end

    def test_sampling_under_pressure(self, server, tmp_path):
        result = self.run_online(
            server, tmp_path,
            "select count(*) from lineitem where l_quantity > 1",
            backlog_threshold=0,
        )
        # with a zero threshold every GREEN is sampled out once the
        # queue holds anything; reds always pass
        assert result.sampled_out >= 0

    def test_anomaly_detection_from_online_trace(self, database, tmp_path):
        with Mserver(database) as server:
            textual = TextualStethoscope()
            connection = textual.connect("local")

            def run_query():
                with MClient(port=server.port) as client:
                    client.set_pipeline("sequential_pipe")
                    client.set_profiler(port=connection.port)
                    try:
                        return client.query(
                            "select count(*) from lineitem "
                            "where l_quantity > 10"
                        ).rows
                    finally:
                        client.set_pipeline("default_pipe")

            session = Stethoscope.online(connection, run_query,
                                         str(tmp_path))
            result = session.run(timeout_s=20.0)
            textual.close()
        anomaly = detect_sequential_anomaly(result.events,
                                            expected_threads=2)
        assert anomaly.detected
