"""Unit tests for MAL atom types and literal parsing/formatting."""

import datetime

import pytest

from repro.errors import TypeMismatchError
from repro.storage import types as t


class TestTypeLookup:
    def test_known_types(self):
        for name in ("bit", "int", "lng", "flt", "dbl", "str", "oid", "date"):
            assert t.type_by_name(name).name == name

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            t.type_by_name("blob")


class TestCasting:
    def test_int_from_string(self):
        assert t.cast_value("42", t.INT) == 42

    def test_int_from_float_integral(self):
        assert t.cast_value(3.0, t.INT) == 3

    def test_int_from_float_fractional_raises(self):
        with pytest.raises(TypeMismatchError):
            t.cast_value(3.5, t.INT)

    def test_dbl_from_int(self):
        value = t.cast_value(7, t.DBL)
        assert value == 7.0 and isinstance(value, float)

    def test_bit_from_strings(self):
        assert t.cast_value("true", t.BIT) is True
        assert t.cast_value("F", t.BIT) is False

    def test_bit_garbage_raises(self):
        with pytest.raises(TypeMismatchError):
            t.cast_value("maybe", t.BIT)

    def test_str_from_number(self):
        assert t.cast_value(12, t.STR) == "12"

    def test_oid_negative_raises(self):
        with pytest.raises(TypeMismatchError):
            t.cast_value(-1, t.OID)

    def test_date_from_iso_string(self):
        assert t.cast_value("1994-01-01", t.DATE) == datetime.date(1994, 1, 1)

    def test_nil_passes_through_any_type(self):
        for mal_type in (t.INT, t.STR, t.DATE, t.BIT):
            assert t.cast_value(t.nil, mal_type) is t.nil


class TestInference:
    def test_bool_is_bit_not_int(self):
        assert t.infer_type(True) is t.BIT

    def test_int_dbl_str_date(self):
        assert t.infer_type(1) is t.INT
        assert t.infer_type(1.5) is t.DBL
        assert t.infer_type("x") is t.STR
        assert t.infer_type(datetime.date(2000, 1, 1)) is t.DATE

    def test_nil_raises(self):
        with pytest.raises(TypeMismatchError):
            t.infer_type(None)


class TestPromotion:
    def test_int_lng(self):
        assert t.promote(t.INT, t.LNG) is t.LNG

    def test_lng_dbl(self):
        assert t.promote(t.LNG, t.DBL) is t.DBL

    def test_same(self):
        assert t.promote(t.INT, t.INT) is t.INT

    def test_non_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            t.promote(t.STR, t.INT)


class TestLiterals:
    def test_parse_nil(self):
        assert t.parse_value("nil") is t.nil

    def test_parse_int_then_dbl_then_str(self):
        assert t.parse_value("10") == 10
        assert t.parse_value("10.5") == 10.5
        assert t.parse_value("hello") == "hello"

    def test_parse_quoted_string(self):
        assert t.parse_value('"a b"') == "a b"

    def test_parse_bools(self):
        assert t.parse_value("true") is True
        assert t.parse_value("false") is False

    def test_parse_with_explicit_type(self):
        assert t.parse_value("7", t.DBL) == 7.0

    def test_format_roundtrip_string_with_quotes(self):
        original = 'he said "hi"\nbye'
        assert t.parse_value(t.format_value(original)) == original

    def test_format_nil_and_bool(self):
        assert t.format_value(t.nil) == "nil"
        assert t.format_value(True) == "true"

    def test_format_date_quoted(self):
        assert t.format_value(datetime.date(1998, 12, 1)) == '"1998-12-01"'
