"""Offline analysis of long-running TPC-H queries (paper §5, offline demo).

Executes TPC-H Q1 and Q3 with profiling, writes the dot and trace files
to disk, then reopens them in offline Stethoscope sessions and exercises
the demo features: trace replay with fast-forward/rewind/pause, thread
utilisation distribution, memory usage by operator, costly-instruction
clustering, the threshold colouring algorithm, administrative-instruction
pruning and the micro-analysis interface.

Run:  python examples/offline_tpch_analysis.py
"""

import os
import tempfile

from repro import Database, Profiler, Stethoscope, plan_to_dot, populate, query_sql
from repro.profiler import write_trace


def analyse(db: Database, name: str, workdir: str) -> None:
    sql = query_sql(name)
    profiler = Profiler()
    outcome = db.execute(sql, listener=profiler)
    print(f"\n=== {name}: {len(outcome.rows)} result rows, "
          f"{len(profiler.events) // 2} instructions ===")

    # persist the offline artefacts (paper §4.1: offline mode needs a
    # preexisting dot file and trace file)
    dot_path = os.path.join(workdir, f"{name}.dot")
    trace_path = os.path.join(workdir, f"{name}.trace")
    with open(dot_path, "w") as handle:
        handle.write(plan_to_dot(outcome.program))
    write_trace(profiler.events, trace_path)

    session = Stethoscope.offline(dot_path, trace_path)

    # --- replay: step / fast-forward / pause / rewind -------------------
    session.replay.step()
    session.replay.fast_forward(20)
    session.replay.pause()
    assert session.replay.step() is None  # paused
    session.replay.resume()
    session.replay.rewind(5)
    mid_position = session.replay.position
    session.replay.run_to_end()
    print(f"replay: stepped to {mid_position}, then to end "
          f"({session.replay.position} events)")

    # --- costly instructions between two replay states ------------------
    costly = session.replay.costly_between(0, session.replay.position, top=3)
    print("top instructions by time:")
    for event in costly:
        print(f"  pc={event.pc:<4} {event.usec:>8} usec  "
              f"{event.stmt[:60]}")

    # --- thread utilisation ---------------------------------------------
    print("thread utilisation:")
    for row in session.thread_utilization():
        bar = "#" * int(row.utilization * 40)
        print(f"  thread {row.thread}: {row.busy_usec:>8} usec "
              f"({row.utilization:5.1%}) {bar}")

    # --- memory usage by operator ----------------------------------------
    print("memory by operator (top 3 by peak rss):")
    for row in session.memory_by_operator()[:3]:
        print(f"  {row.operator:<24} calls={row.calls:<4} "
              f"peak_rss={row.peak_rss_bytes}")

    # --- costly instruction clustering ------------------------------------
    clusters = session.costly_clusters(fraction=0.8)
    print(f"costly clusters covering 80% of time: "
          f"{[c.span for c in clusters[:5]]}")

    # --- pruning (future-work feature) ------------------------------------
    pruned = session.pruned_view()
    print(f"pruned view: {session.graph.node_count()} -> "
          f"{pruned.node_count()} nodes")

    # --- micro-analysis interface ------------------------------------------
    summary = session.analyzer().summary()
    print(f"micro-analysis: makespan={summary['makespan_usec']} usec, "
          f"p95={summary['p95_usec']} usec, p99={summary['p99_usec']} usec")

    # --- memory timeline and overview --------------------------------------
    print(f"rss timeline: {session.memory_sparkline(width=50)}")
    print("minimap (viewport marked):")
    session.view.camera.zoom_in(2)
    print(session.minimap(columns=50, rows=10))


def main() -> None:
    db = Database(workers=4, mitosis_threshold=400)
    populate(db.catalog, scale_factor=0.2, seed=7)
    workdir = tempfile.mkdtemp(prefix="stethoscope_offline_")
    print(f"artefacts in {workdir}")
    for name in ("q1", "q3", "q6"):
        analyse(db, name, workdir)

    # threshold colouring variant on q6
    sql = query_sql("q6")
    profiler = Profiler()
    outcome = db.execute(sql, listener=profiler)
    session = Stethoscope.offline_from_memory(
        plan_to_dot(outcome.program), profiler.events, threshold_usec=50
    )
    session.replay.run_to_end()
    reds = [n for n, c in session.painter.rendered.items()
            if c.to_hex() == "#dc2828"]
    print(f"\nq6 with threshold=50usec: {len(reds)} instruction(s) over "
          f"threshold: {sorted(reds)[:10]}")


if __name__ == "__main__":
    main()
