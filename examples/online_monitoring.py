"""Online monitoring of a live query (paper §4.2 and §5, online demo).

Starts an Mserver in the background, connects the textual Stethoscope to
its profiler UDP stream, launches a TPC-H query in a separate thread and
monitors it live: the dot file arrives first, the display is built, and
trace events colour nodes through the throttled render queue — with
sampling when the stream outruns the ~150 ms/node render ceiling.

Afterwards the same run is repeated under ``sequential_pipe`` to show the
paper's reported anomaly: a plan that executes sequentially although
multiple workers were available.

Run:  python examples/online_monitoring.py
"""

import tempfile

from repro import Database, MClient, Mserver, Stethoscope, populate, query_sql
from repro.core.analysis import parallelism_profile
from repro.core.textual import TextualStethoscope


def monitor_query(server: Mserver, sql: str, pipeline: str,
                  workdir: str) -> None:
    textual = TextualStethoscope()
    connection = textual.connect("mserver")

    def run_query():
        with MClient(port=server.port) as client:
            client.set_pipeline(pipeline)
            client.set_profiler(port=connection.port)
            try:
                return client.query(sql).rows
            finally:
                client.set_pipeline("default_pipe")

    session = Stethoscope.online(connection, run_query, workdir,
                                 backlog_threshold=16)
    result = session.run(timeout_s=30.0)
    textual.close()

    print(f"\n=== pipeline={pipeline} ===")
    print(f"received {len(result.events)} events; "
          f"dot file: {result.dot_path}; trace file: {result.trace_path}")
    print(f"plan: {result.graph.node_count()} nodes")
    print(f"render-queue sampling dropped {result.sampled_out} repaints")
    if result.red_pcs:
        print(f"instructions still RED at end (stuck/slow): "
              f"{result.red_pcs}")

    profile = parallelism_profile(result.events)
    print(f"threads used: {profile.threads_used}, "
          f"max concurrency: {profile.max_concurrency}, "
          f"speedup vs serial: {profile.speedup_vs_serial:.2f}x")
    anomaly_check = profile.threads_used <= 1
    if pipeline == "sequential_pipe" and anomaly_check:
        print("ANOMALY (as in the paper): sequential execution of a MAL "
              "plan where multithreaded execution was expected")


def main() -> None:
    db = Database(workers=4, mitosis_threshold=400)
    populate(db.catalog, scale_factor=0.3, seed=13)
    workdir = tempfile.mkdtemp(prefix="stethoscope_online_")
    sql = query_sql("q1")
    with Mserver(db) as server:
        print(f"Mserver listening on port {server.port}")
        monitor_query(server, sql, "default_pipe", workdir)
        monitor_query(server, sql, "sequential_pipe", workdir)


if __name__ == "__main__":
    main()
