"""Quickstart: the paper's Figure 1 query, analysed offline.

Runs ``select l_tax from lineitem where l_partkey = 1`` (the exact query
from the paper) on the embedded engine, captures its MAL plan and
execution trace, and walks the Stethoscope's offline workflow: dot file →
layout → svg → in-memory graph, trace replay with the §4.2.1 colouring
algorithm, tool-tips, and the bird's-eye view.

Run:  python examples/quickstart.py
"""

from repro import Database, Profiler, Stethoscope, plan_to_dot, populate
from repro.mal.printer import format_program


def main() -> None:
    # 1. a server-side execution environment with TPC-H data
    db = Database(workers=4, mitosis_threshold=500)
    counts = populate(db.catalog, scale_factor=0.1, seed=42)
    print(f"populated TPC-H: {counts['lineitem']} lineitems, "
          f"{counts['orders']} orders")

    # 2. run the paper's query with the profiler attached
    sql = "select l_tax from lineitem where l_partkey = 1"
    profiler = Profiler()
    outcome = db.execute(sql, listener=profiler)
    print(f"\nquery: {sql}")
    print(f"rows: {outcome.rows[:5]}{' ...' if len(outcome.rows) > 5 else ''}")

    # 3. the MAL plan (paper Figure 1) and its execution trace (Figure 3)
    print("\n--- MAL plan (Figure 1) ---")
    print(format_program(outcome.program))
    print("\n--- first trace lines (Figure 3) ---")
    from repro.profiler import format_event

    for event in profiler.events[:6]:
        print(format_event(event))

    # 4. offline Stethoscope session: dot -> layout -> svg -> graph
    session = Stethoscope.offline_from_memory(
        plan_to_dot(outcome.program), profiler.events
    )
    print(f"\nplan graph: {session.graph.node_count()} nodes, "
          f"{session.graph.edge_count()} edges; "
          f"trace coverage {session.trace_map.coverage():.0%}")

    # 5. replay the trace; long-running instructions turn RED then GREEN
    session.replay.run_to_end()
    colored = {n: c.to_hex() for n, c in session.painter.rendered.items()}
    print(f"coloured nodes after replay: {colored or 'none (all fast)'}")

    # 6. inspect the most expensive instruction
    costly = session.replay.costly_between(0, len(session.events), top=1)[0]
    print(f"\nmost expensive instruction (pc={costly.pc}):")
    print(session.tooltip(f"n{costly.pc}"))

    # 7. bird's-eye view of the whole trace
    print("\n--- bird's-eye trace clustering ---")
    print(session.birdseye())

    # 8. the display window (paper Figure 4), as text and as SVG
    print("\n--- display window (ASCII) ---")
    print(session.render_ascii(columns=100, rows=30))
    session.save_svg("quickstart_display.svg")
    print("\nwrote quickstart_display.svg")

    # 9. everything above left a trail in the engine metrics
    #    (`python -m repro metrics`; see docs/metrics_reference.md)
    import repro.metrics as metrics

    snap = metrics.snapshot()
    executed = sum(
        s["value"] for s in snap["repro_mal_instructions_total"]["samples"]
    )
    print(f"\nengine metrics: {executed:.0f} MAL instructions executed, "
          f"{len(snap)} metric families registered")


if __name__ == "__main__":
    main()
