"""A textual kernel-inspection session: EXPLAIN, TRACE and the mdb.

The paper (§2) notes that "MonetDB provides a GDB-like MAL debugger for
runtime inspection" and positions Stethoscope as the visual improvement
over it.  This example shows the substrate tools the visual tool builds
on: EXPLAIN and TRACE statement modifiers, and an interactive debugger
walk through the Figure-1 query — breakpoints, stepping, and BAT
inspection.

Run:  python examples/mal_debugger_session.py
"""

from repro import Database, populate, query_sql
from repro.mal.debugger import MalDebugger


def main() -> None:
    db = Database(workers=2, mitosis_threshold=10_000)  # keep plans simple
    populate(db.catalog, scale_factor=0.05, seed=3)
    sql = query_sql("demo")

    # --- EXPLAIN: the optimized plan as a result set ---------------------
    print("=== EXPLAIN", sql, "===")
    outcome = db.execute(f"explain {sql}")
    for (line,) in outcome.rows:
        print(line)

    # --- TRACE: execute and return the profiler events -------------------
    print("\n=== TRACE (first 6 events) ===")
    outcome = db.execute(f"trace {sql}")
    print("\t".join(outcome.columns))
    for row in outcome.rows[:6]:
        print("\t".join(str(v) for v in row))

    # --- mdb: breakpoints, stepping, inspection ---------------------------
    print("\n=== mdb session ===")
    program = db.compile(sql)
    mdb = MalDebugger(db.catalog, program)
    mdb.break_at("algebra.leftjoin")
    stopped_at = mdb.cont()
    print(f"breakpoint hit at pc={stopped_at}")
    print(mdb.where())
    print("\n-- source listing --")
    print(mdb.list_source(context=2))
    join_instr = mdb.current_instruction
    print("\n-- inspecting the join's inputs --")
    for arg in join_instr.args:
        print(mdb.inspect(arg.name, max_rows=4))
    print("\n-- step over the join --")
    mdb.step()
    print(mdb.inspect(join_instr.results[0], max_rows=4))
    print("\n-- live variables --")
    for name, description in sorted(mdb.variables().items()):
        print(f"  {name:<6} {description}")
    mdb.run_to_end()
    result = mdb.ctx.result_sets[0]
    print(f"\nfinished: {result.row_count()} result rows")


if __name__ == "__main__":
    main()
