"""Navigating a >1000-node query plan (paper feature 5 and Figure 2).

Generates a mitosis-style synthetic plan with more than 1000 nodes, lays
it out, builds the glyph scene, and drives the ZGrviewer-style
interactions the paper demonstrates: bird's-eye fit, keyboard/mouse
navigation to a node, zoom levels, animated camera transitions and the
fish-eye lens.

Run:  python examples/large_plan_navigation.py
"""

import time

from repro.core.coloring import color_buffer
from repro.dot import plan_to_graph
from repro.layout import LayeredLayout
from repro.viz import Animator, FisheyeLens, View, build_virtual_space
from repro.workloads import synthetic_plan, trace_for_program


def main() -> None:
    # a plan comfortably past the paper's 1000-node mark
    plan = synthetic_plan(chains=170, chain_length=4)
    print(f"synthetic plan: {len(plan)} instructions")

    graph = plan_to_graph(plan)
    engine = LayeredLayout()
    started = time.perf_counter()
    layout = engine.layout(graph)
    elapsed = time.perf_counter() - started
    print(f"layout: {len(layout.nodes)} nodes in {elapsed:.2f}s, "
          f"{engine.last_crossings} edge crossings, "
          f"canvas {layout.width:.0f}x{layout.height:.0f}")

    space = build_virtual_space(layout)
    print(f"virtual space: {len(space)} glyphs "
          f"(shape+text per node, one per edge)")

    # bird's-eye view of the whole plan
    view = View(space, width=1200, height=800)
    view.fit_all()
    print(f"bird's-eye: camera altitude {view.camera.altitude:.0f}, "
          f"{len(view.visible_glyphs())} glyphs visible")

    # navigate: zoom onto one aggregation node
    target = f"n{len(plan) - 3}"  # near the fold at the bottom
    animator = Animator()
    shape = space.shape_of(target)
    animator.animate_camera_to(view.camera, shape.x, shape.y, 20.0,
                               duration_ms=300)
    steps = animator.run_to_completion(step_ms=16)
    print(f"animated zoom to {target} in {steps} frames; "
          f"now {len(view.visible_glyphs())} glyphs visible")

    picked = view.pick(view.width / 2, view.height / 2)
    print(f"click at viewport centre hits: {picked.owner} "
          f"({space.text_of(picked.owner).text[:50]})")

    # fish-eye lens around the focus
    view.lens = FisheyeLens(shape.x, shape.y, radius=300, magnification=3)
    print(f"fisheye magnification at focus: "
          f"{view.lens.magnification_at(shape.x, shape.y):.1f}x")

    # colour the long-running instructions from a simulated trace
    events = trace_for_program(plan, workers=8, long_fraction=0.02, seed=5)
    actions = color_buffer(events)
    for action in actions:
        space.shape_of(action.node_id).fill = action.color
    reds = sum(1 for a in actions if a.color.r > a.color.g)
    print(f"trace replay coloured {len({a.pc for a in actions})} nodes "
          f"({reds} RED events)")

    # a keyhole render of the focus area
    view.lens = None
    print("\n--- zoomed view around the fold ---")
    print(view.render_ascii(columns=110, rows=30))


if __name__ == "__main__":
    main()
