"""Recursive-descent SQL parser.

Entry point :func:`parse_sql` returns one statement per input string
(trailing semicolon optional).  Errors raise
:class:`~repro.errors.SqlParseError` with the offending token.
"""

from __future__ import annotations

import datetime
from typing import List, Optional

from repro.errors import SqlParseError
from repro.sqlfe.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    CreateTable,
    DropTable,
    ExtractYear,
    FuncCall,
    InList,
    InSubquery,
    Insert,
    Interval,
    IsNull,
    JoinCondition,
    Like,
    Literal,
    OrderItem,
    ScalarSubquery,
    Select,
    SelectItem,
    Statement,
    TableRef,
    UnaryOp,
)
from repro.sqlfe.lexer import Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message: str) -> SqlParseError:
        token = self.peek()
        return SqlParseError(f"{message} (near {token.text!r})")

    def expect_keyword(self, *words: str) -> Token:
        if not self.peek().is_keyword(*words):
            raise self.error(f"expected {' or '.join(words)}")
        return self.advance()

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.peek().is_keyword(*words):
            return self.advance()
        return None

    def expect_op(self, text: str) -> Token:
        token = self.peek()
        if token.kind != "op" or token.text != text:
            raise self.error(f"expected {text!r}")
        return self.advance()

    def accept_op(self, text: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == "op" and token.text == text:
            return self.advance()
        return None

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind != "name":
            raise self.error("expected identifier")
        return self.advance().text

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.peek().is_keyword("SELECT"):
            stmt = self.parse_select()
        elif self.peek().is_keyword("CREATE"):
            stmt = self.parse_create()
        elif self.peek().is_keyword("DROP"):
            stmt = self.parse_drop()
        elif self.peek().is_keyword("INSERT"):
            stmt = self.parse_insert()
        else:
            raise self.error("expected SELECT, CREATE, DROP or INSERT")
        self.accept_op(";")
        if self.peek().kind != "eof":
            raise self.error("trailing input after statement")
        return stmt

    def parse_create(self) -> CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        table = self.expect_name()
        self.expect_op("(")
        columns = []
        while True:
            name = self.expect_name()
            type_name = self._parse_type_name()
            columns.append((name, type_name))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return CreateTable(table, columns)

    def _parse_type_name(self) -> str:
        token = self.peek()
        if token.kind == "name":
            base = self.advance().text
        elif token.is_keyword("DATE"):
            self.advance()
            base = "date"
        else:
            raise self.error("expected type name")
        if self.accept_op("("):
            parts = [self.advance().text]
            while self.accept_op(","):
                parts.append(self.advance().text)
            self.expect_op(")")
            base += "(" + ",".join(parts) + ")"
        return base

    def parse_drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return DropTable(self.expect_name())

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_name()
        self.expect_keyword("VALUES")
        rows = []
        while True:
            self.expect_op("(")
            row = [self.parse_expression()]
            while self.accept_op(","):
                row.append(self.parse_expression())
            self.expect_op(")")
            rows.append(row)
            if not self.accept_op(","):
                break
        return Insert(table, rows)

    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())
        self.expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        join_conditions: List[JoinCondition] = []
        while True:
            if self.accept_op(","):
                tables.append(self._parse_table_ref())
            elif self.peek().is_keyword("JOIN", "INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                tables.append(self._parse_table_ref())
                self.expect_keyword("ON")
                left = self._parse_column_ref()
                self.expect_op("=")
                right = self._parse_column_ref()
                join_conditions.append(JoinCondition(left, right))
            else:
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by: List = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_op(","):
                group_by.append(self.parse_expression())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expression()
        order_by: List[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_op(","):
                order_by.append(self._parse_order_item())
        limit = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.kind != "number" or "." in token.text:
                raise self.error("LIMIT expects an integer")
            limit = int(self.advance().text)
            if self.accept_keyword("OFFSET"):
                token = self.peek()
                if token.kind != "number" or "." in token.text:
                    raise self.error("OFFSET expects an integer")
                offset = int(self.advance().text)
        return Select(items, tables, join_conditions, where, group_by,
                      having, order_by, limit, offset, distinct)

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.peek().kind == "name":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> TableRef:
        table = self.expect_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.peek().kind == "name":
            alias = self.advance().text
        return TableRef(table, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, descending)

    def _parse_column_ref(self) -> ColumnRef:
        first = self.expect_name()
        if self.accept_op("."):
            return ColumnRef(self.expect_name(), qualifier=first)
        return ColumnRef(first)

    # -- expressions -------------------------------------------------------

    def parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self):
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        token = self.peek()
        if token.kind == "op" and token.text in _COMPARISONS:
            op = self.advance().text
            if op == "!=":
                op = "<>"
            return BinaryOp(op, left, self._parse_additive())
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self.accept_keyword("IN"):
            self.expect_op("(")
            if self.peek().is_keyword("SELECT"):
                sub_select = self.parse_select()
                self.expect_op(")")
                return InSubquery(left, sub_select, negated)
            items = [self.parse_expression()]
            while self.accept_op(","):
                items.append(self.parse_expression())
            self.expect_op(")")
            return InList(left, items, negated)
        if self.accept_keyword("LIKE"):
            token = self.peek()
            if token.kind != "string":
                raise self.error("LIKE expects a string literal pattern")
            return Like(left, self.advance().text, negated)
        if self.accept_keyword("IS"):
            is_negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return IsNull(left, is_negated)
        if negated:
            raise self.error("expected BETWEEN, IN or LIKE after NOT")
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            if self.accept_op("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self.accept_op("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            if self.accept_op("*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self.accept_op("/"):
                left = BinaryOp("/", left, self._parse_unary())
            elif self.accept_op("%"):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self):
        if self.accept_op("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        return self._parse_primary()

    def _parse_primary(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text or "e" in token.text.lower() else int(token.text)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("DATE"):
            self.advance()
            text_token = self.peek()
            if text_token.kind != "string":
                raise self.error("DATE expects a quoted ISO date")
            self.advance()
            try:
                return Literal(datetime.date.fromisoformat(text_token.text))
            except ValueError:
                raise self.error(f"bad date literal {text_token.text!r}")
        if token.is_keyword("INTERVAL"):
            self.advance()
            amount_token = self.peek()
            if amount_token.kind == "string":
                amount = int(self.advance().text)
            elif amount_token.kind == "number":
                amount = int(self.advance().text)
            else:
                raise self.error("INTERVAL expects a number")
            unit = self.expect_keyword("DAY", "MONTH", "YEAR").text.lower()
            return Interval(amount, unit)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_op("(")
            operand = self.parse_expression()
            self.expect_keyword("AS")
            type_name = self._parse_type_name()
            self.expect_op(")")
            return Cast(operand, type_name)
        if token.is_keyword("EXTRACT"):
            self.advance()
            self.expect_op("(")
            self.expect_keyword("YEAR")
            self.expect_keyword("FROM")
            operand = self.parse_expression()
            self.expect_op(")")
            return ExtractYear(operand)
        if token.kind == "keyword" and token.text in _AGGREGATES:
            self.advance()
            name = token.text.lower()
            self.expect_op("(")
            if name == "count" and self.accept_op("*"):
                self.expect_op(")")
                return FuncCall(name, [], star=True)
            self.accept_keyword("DISTINCT")  # parsed, handled by binder
            args = [self.parse_expression()]
            self.expect_op(")")
            return FuncCall(name, args)
        if self.accept_op("("):
            if self.peek().is_keyword("SELECT"):
                sub_select = self.parse_select()
                self.expect_op(")")
                return ScalarSubquery(sub_select)
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        if token.kind == "name":
            return self._parse_column_ref()
        raise self.error("expected expression")

    def _parse_case(self):
        self.expect_keyword("CASE")
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            branches.append((condition, self.parse_expression()))
        otherwise = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expression()
        self.expect_keyword("END")
        if not branches:
            raise self.error("CASE needs at least one WHEN branch")
        return CaseWhen(branches, otherwise)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement.

    Raises:
        SqlParseError: on any syntax error.
    """
    return _Parser(sql).parse_statement()
