"""SQL abstract syntax tree.

Plain dataclasses; the binder decorates them (resolved column references,
inferred types) rather than building a second tree.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for all expression nodes."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, NULL or date."""

    value: Any


@dataclass
class Interval(Expression):
    """An SQL interval literal, e.g. ``interval '90' day``."""

    amount: int
    unit: str  # "day" | "month" | "year"


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference.

    The binder fills ``table_key`` with the FROM-item key the reference
    resolved to, and ``column`` stays the bare column name.
    """

    column: str
    qualifier: Optional[str] = None
    table_key: Optional[str] = None

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


@dataclass
class BinaryOp(Expression):
    """Arithmetic, comparison or boolean binary operation."""

    op: str  # + - * / % = <> < <= > >= AND OR
    left: Expression
    right: Expression


@dataclass
class UnaryOp(Expression):
    """NOT or unary minus."""

    op: str  # NOT | -
    operand: Expression


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` with literal members."""

    operand: Expression
    items: List[Expression]
    negated: bool = False


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE 'pattern'``."""

    operand: Expression
    pattern: str
    negated: bool = False


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated only.

    The binder attaches the subquery's own :class:`Binder` as
    ``sub_binder`` during resolution.
    """

    operand: Expression
    select: "Select"
    negated: bool = False
    sub_binder: Any = None


@dataclass
class ScalarSubquery(Expression):
    """``(SELECT agg ...)`` used as a scalar value — uncorrelated only."""

    select: "Select"
    sub_binder: Any = None


@dataclass
class FuncCall(Expression):
    """An aggregate call: COUNT/SUM/AVG/MIN/MAX.

    ``star`` marks ``COUNT(*)``.
    """

    name: str  # lower-case
    args: List[Expression]
    star: bool = False


@dataclass
class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END``."""

    branches: List[Tuple[Expression, Expression]]
    otherwise: Optional[Expression] = None


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    type_name: str


@dataclass
class ExtractYear(Expression):
    """``EXTRACT(YEAR FROM expr)`` — the only EXTRACT TPC-H needs."""

    operand: Expression


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One entry of the select list: an expression with optional alias."""

    expr: Expression
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A FROM item: ``table [AS alias]``.

    ``key`` (alias if present, else table name) is how column references
    address it.
    """

    table: str
    alias: Optional[str] = None

    @property
    def key(self) -> str:
        return self.alias or self.table


@dataclass
class JoinCondition:
    """An explicit ``JOIN ... ON left = right`` equi-join condition."""

    left: ColumnRef
    right: ColumnRef


@dataclass
class OrderItem:
    """One ORDER BY key: expression or 1-based output position."""

    expr: Expression
    descending: bool = False


@dataclass
class Select:
    """A SELECT statement."""

    items: List[SelectItem]
    tables: List[TableRef]
    join_conditions: List[JoinCondition] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False


@dataclass
class CreateTable:
    """``CREATE TABLE name (col type, ...)``."""

    table: str
    columns: List[Tuple[str, str]]


@dataclass
class DropTable:
    """``DROP TABLE name``."""

    table: str


@dataclass
class Insert:
    """``INSERT INTO name VALUES (...), (...)``."""

    table: str
    rows: List[List[Expression]]


Statement = Any  # Select | CreateTable | DropTable | Insert
