"""Name resolution and type inference for SQL expressions.

The binder resolves every :class:`~repro.sqlfe.ast.ColumnRef` against the
FROM clause (filling ``table_key``), rejects unknown and ambiguous names,
and infers a MAL atom type for every expression — which the code
generator uses for casts, result metadata and date/interval arithmetic.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Tuple

from repro.errors import BindError
from repro.sqlfe.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    ExtractYear,
    Expression,
    FuncCall,
    InList,
    InSubquery,
    Interval,
    IsNull,
    Like,
    Literal,
    ScalarSubquery,
    Select,
    TableRef,
    UnaryOp,
)
from repro.storage.catalog import Catalog, Table, _sql_type_to_mal
from repro.storage.types import (
    BIT,
    DATE,
    DBL,
    INT,
    LNG,
    STR,
    MalType,
    infer_type,
    promote,
)


class Binder:
    """Resolves one SELECT's names against a catalog."""

    def __init__(self, catalog: Catalog, select: Select,
                 schema: str = "sys") -> None:
        self.catalog = catalog
        self.schema = schema
        self.select = select
        self.tables: Dict[str, Table] = {}
        for ref in select.tables:
            if ref.key in self.tables:
                raise BindError(f"duplicate table key {ref.key!r} in FROM")
            self.tables[ref.key] = catalog.schema(schema).table(ref.table)

    # ------------------------------------------------------------------

    def bind(self) -> None:
        """Resolve every expression reachable from the SELECT."""
        for item in self.select.items:
            self.resolve(item.expr)
        for condition in self.select.join_conditions:
            self.resolve(condition.left)
            self.resolve(condition.right)
        if self.select.where is not None:
            self.resolve(self.select.where)
        for expr in self.select.group_by:
            self.resolve(expr)
        if self.select.having is not None:
            self.resolve(self.select.having)
        for order in self.select.order_by:
            if not self._is_positional(order.expr) and not self._is_alias(
                order.expr
            ):
                self.resolve(order.expr)

    def _is_positional(self, expr: Expression) -> bool:
        return isinstance(expr, Literal) and isinstance(expr.value, int)

    def _is_alias(self, expr: Expression) -> bool:
        if not isinstance(expr, ColumnRef) or expr.qualifier:
            return False
        aliases = {item.alias for item in self.select.items if item.alias}
        return expr.column in aliases

    # ------------------------------------------------------------------

    def resolve(self, expr: Expression) -> None:
        """Fill in ``table_key`` on every ColumnRef under ``expr``."""
        if isinstance(expr, ColumnRef):
            self._resolve_column(expr)
        elif isinstance(expr, BinaryOp):
            self.resolve(expr.left)
            self.resolve(expr.right)
        elif isinstance(expr, UnaryOp):
            self.resolve(expr.operand)
        elif isinstance(expr, (IsNull, Like, Cast, ExtractYear)):
            self.resolve(expr.operand)
        elif isinstance(expr, Between):
            self.resolve(expr.operand)
            self.resolve(expr.low)
            self.resolve(expr.high)
        elif isinstance(expr, InList):
            self.resolve(expr.operand)
            for item in expr.items:
                self.resolve(item)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                self.resolve(arg)
        elif isinstance(expr, CaseWhen):
            for condition, value in expr.branches:
                self.resolve(condition)
                self.resolve(value)
            if expr.otherwise is not None:
                self.resolve(expr.otherwise)
        elif isinstance(expr, InSubquery):
            self.resolve(expr.operand)
            expr.sub_binder = self._bind_subquery(expr.select)
        elif isinstance(expr, ScalarSubquery):
            expr.sub_binder = self._bind_subquery(expr.select)
        # Literal / Interval need nothing

    def _bind_subquery(self, select: Select) -> "Binder":
        """Bind an uncorrelated subquery in its own scope.

        Correlation (references to the outer FROM) is not supported and
        surfaces as an unknown-column BindError from the inner scope.
        """
        sub_binder = Binder(self.catalog, select, self.schema)
        sub_binder.bind()
        return sub_binder

    def _resolve_column(self, ref: ColumnRef) -> None:
        if ref.table_key is not None:
            return
        if ref.qualifier is not None:
            if ref.qualifier not in self.tables:
                raise BindError(f"unknown table or alias {ref.qualifier!r}")
            table = self.tables[ref.qualifier]
            table.column(ref.column)  # raises CatalogError if missing
            ref.table_key = ref.qualifier
            return
        matches = [
            key for key, table in self.tables.items()
            if ref.column.lower() in table.columns
        ]
        if not matches:
            raise BindError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise BindError(
                f"ambiguous column {ref.column!r} (in {', '.join(matches)})"
            )
        ref.table_key = matches[0]

    # ------------------------------------------------------------------
    # type inference
    # ------------------------------------------------------------------

    def type_of(self, expr: Expression) -> MalType:
        """Infer the MAL atom type of a bound expression."""
        if isinstance(expr, Literal):
            if expr.value is None:
                return INT  # nil literal: type is contextual; int is benign
            return infer_type(expr.value)
        if isinstance(expr, Interval):
            return INT
        if isinstance(expr, ColumnRef):
            if expr.table_key is None:
                raise BindError(f"unresolved column {expr.display()!r}")
            return self.tables[expr.table_key].column(expr.column).mal_type
        if isinstance(expr, BinaryOp):
            if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
                return BIT
            left, right = self.type_of(expr.left), self.type_of(expr.right)
            if expr.op == "/":
                return DBL
            if DATE in (left, right):
                return DATE  # date +/- interval
            try:
                return promote(left, right)
            except Exception:
                raise BindError(
                    f"operator {expr.op!r} over {left.name}/{right.name}"
                ) from None
        if isinstance(expr, UnaryOp):
            if expr.op == "NOT":
                return BIT
            return self.type_of(expr.operand)
        if isinstance(expr, (IsNull, Between, InList, Like, InSubquery)):
            return BIT
        if isinstance(expr, ScalarSubquery):
            if expr.sub_binder is None:
                raise BindError("scalar subquery used before binding")
            return expr.sub_binder.type_of(expr.select.items[0].expr)
        if isinstance(expr, FuncCall):
            if expr.name == "count":
                return LNG
            if expr.name == "avg":
                return DBL
            return self.type_of(expr.args[0])
        if isinstance(expr, CaseWhen):
            return self.type_of(expr.branches[0][1])
        if isinstance(expr, Cast):
            return _sql_type_to_mal(expr.type_name)
        if isinstance(expr, ExtractYear):
            return INT
        raise BindError(f"cannot type expression {expr!r}")


def contains_aggregate(expr: Expression) -> bool:
    """True when any FuncCall aggregate occurs under ``expr``."""
    if isinstance(expr, FuncCall):
        return True
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, (IsNull, Like, Cast, ExtractYear)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Between):
        return any(
            contains_aggregate(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(e) for e in expr.items
        )
    if isinstance(expr, CaseWhen):
        parts = [c for c, _v in expr.branches] + [v for _c, v in expr.branches]
        if expr.otherwise is not None:
            parts.append(expr.otherwise)
        return any(contains_aggregate(p) for p in parts)
    return False
