"""SQL lexer.

Produces a flat token stream; keywords are case-insensitive and reported
upper-case, identifiers are lower-cased (MonetDB folds unquoted
identifiers to lower case), string literals keep their exact content.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import SqlParseError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "BETWEEN", "IN", "LIKE", "IS", "NULL", "TRUE", "FALSE",
    "JOIN", "INNER", "ON", "CREATE", "TABLE", "INSERT", "INTO",
    "VALUES", "DATE", "INTERVAL", "DAY", "MONTH", "YEAR",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "CASE", "WHEN", "THEN",
    "ELSE", "END", "EXTRACT", "SUBSTRING", "FOR", "DROP", "CAST",
}


class Token:
    """One lexical unit: kind, text and source position."""

    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind  # keyword | name | number | string | op | eof
        self.text = text
        self.pos = pos

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.text in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r})"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<qname>"[^"]+")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|\|\||[-+*/%(),.;<>=])
    """,
    re.VERBOSE,
)


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens.

    Raises:
        SqlParseError: on characters outside the grammar.
    """
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlParseError(
                f"unexpected character {sql[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "name":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, pos))
            else:
                tokens.append(Token("name", text.lower(), pos))
        elif kind == "qname":
            tokens.append(Token("name", text[1:-1], pos))
        elif kind == "string":
            tokens.append(Token("string", text[1:-1].replace("''", "'"), pos))
        elif kind in ("number", "op"):
            tokens.append(Token(kind, text, pos))
        # whitespace and comments are dropped
        pos = match.end()
    tokens.append(Token("eof", "", len(sql)))
    return tokens
