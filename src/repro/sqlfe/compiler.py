"""SQL → MAL code generation.

The generated plans follow MonetDB's column-at-a-time style:

* per-table *candidate lists* (BATs of qualifying oids) built by chaining
  ``algebra.select`` / ``algebra.thetaselect`` / ``algebra.semijoin``;
* projections as ``algebra.leftjoin`` of a candidate/row map against the
  bound column;
* equi-joins as ``algebra.join`` over value columns with
  ``algebra.markT`` renumbering producing per-table row maps;
* grouping as ``group.new`` / ``group.derive`` chains feeding grouped
  ``aggr.*``;
* ordering as stable ``algebra.sortTail`` passes (least-significant key
  first) composed into a permutation BAT;
* result delivery through ``sql.resultSet`` / ``sql.rsColumn`` /
  ``sql.exportResult``.

The output of :func:`compile_sql` is an *unoptimized* plan, as produced by
MonetDB's SQL compiler; run it through an optimizer
:class:`~repro.mal.optimizer.Pipeline` to get the plan the server would
actually execute (and whose dot file the Stethoscope displays).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SqlError
from repro.mal.ast import Const, MalProgram, TypeSpec, Var, bat_of, scalar_of
from repro.sqlfe.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    CreateTable,
    DropTable,
    ExtractYear,
    Expression,
    FuncCall,
    InList,
    InSubquery,
    Insert,
    Interval,
    IsNull,
    JoinCondition,
    Like,
    Literal,
    OrderItem,
    ScalarSubquery,
    Select,
    UnaryOp,
)
from repro.sqlfe.binder import Binder, contains_aggregate
from repro.sqlfe.parser import parse_sql
from repro.storage.catalog import Catalog, _sql_type_to_mal
from repro.storage.types import BIT, DATE, DBL, LNG, MalType, infer_type

_CMP_TO_THETA = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
_ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}
_CMP = {"=": "eq", "<>": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}


@dataclass
class OutputColumn:
    """One column of the final result set."""

    name: str
    type_name: str
    value: Union[Var, Const]
    is_scalar: bool


class SqlCompiler:
    """Compiles SELECT statements to MAL programs against a catalog."""

    def __init__(self, catalog: Catalog, schema: str = "sys") -> None:
        self.catalog = catalog
        self.schema = schema
        self._query_counter = 0

    def compile(self, statement) -> MalProgram:
        """Compile a parsed statement (currently SELECT only) to MAL."""
        if isinstance(statement, Select):
            self._query_counter += 1
            return _SelectCompiler(
                self.catalog, self.schema, statement,
                f"user.s{self._query_counter}_1",
            ).compile()
        raise SqlError(
            f"only SELECT compiles to MAL; got {type(statement).__name__}"
        )

    def compile_text(self, sql: str) -> MalProgram:
        """Parse and compile one SELECT statement."""
        return self.compile(parse_sql(sql))


def compile_sql(catalog: Catalog, sql: str) -> MalProgram:
    """One-shot convenience wrapper over :class:`SqlCompiler`."""
    return SqlCompiler(catalog).compile_text(sql)


class _SelectCompiler:
    """Stateful single-statement compilation (one instance per SELECT)."""

    def __init__(self, catalog: Catalog, schema: str, select: Select,
                 name: str, program: Optional[MalProgram] = None,
                 bat_vars: Optional[Set[str]] = None,
                 binder: Optional[Binder] = None,
                 mvc: Optional[Var] = None) -> None:
        self.catalog = catalog
        self.schema = schema
        self.select = select
        self.binder = binder or Binder(catalog, select, schema)
        # nested subquery compilers share the enclosing program so that
        # variable names stay unique across the whole plan
        self.program = program or MalProgram(name, {"autoCommit": True})
        self.mvc: Optional[Var] = mvc
        self._bat_vars: Set[str] = bat_vars if bat_vars is not None else set()
        self._bind_cache: Dict[Tuple[str, str], Var] = {}
        self._candidates: Dict[str, Var] = {}
        self._rowmaps: Dict[str, Var] = {}
        self._projection_cache: Dict[Tuple[str, str], Var] = {}

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------

    def emit(self, module: str, function: str, args: Sequence,
             result_type: TypeSpec = None, is_bat: bool = True) -> Var:
        spec = result_type if result_type is not None else bat_of("int")
        var = self.program.call(module, function, list(args), spec)
        if is_bat:
            self._bat_vars.add(var.name)
        return var

    def is_bat(self, value) -> bool:
        return isinstance(value, Var) and value.name in self._bat_vars

    def bind_column(self, table_key: str, column: str) -> Var:
        """``sql.bind`` for a column, cached per (table, column)."""
        cached = self._bind_cache.get((table_key, column))
        if cached is not None:
            return cached
        table = self.binder.tables[table_key]
        mal_type = table.column(column).mal_type
        var = self.emit(
            "sql", "bind",
            [self.mvc, Const(self.schema), Const(table.name), Const(column),
             Const(0)],
            bat_of(mal_type),
        )
        self._bind_cache[(table_key, column)] = var
        return var

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def compile(self) -> MalProgram:
        self.binder.bind()
        self.mvc = self.emit("sql", "mvc", [], scalar_of("oid"), is_bat=False)
        outputs = self._compile_body()
        self._emit_result(outputs)
        self.program.renumber()
        self.program.validate()
        return self.program

    def compile_subquery(self) -> OutputColumn:
        """Compile as an uncorrelated subquery inside the enclosing
        program (already bound by the outer binder): returns the single
        output column instead of emitting result-set delivery."""
        if len(self.select.items) != 1:
            raise SqlError("a subquery must produce exactly one column")
        outputs = self._compile_body()
        return outputs[0]

    def _compile_body(self) -> List[OutputColumn]:
        select = self.select
        if select.distinct:
            if select.group_by or self._has_aggregates():
                raise SqlError("DISTINCT with aggregates is not supported")
            select.group_by = [item.expr for item in select.items]
        join_edges, table_filters, residuals = self._classify_where()
        for ref in select.tables:
            self._build_candidate(ref.key, table_filters.get(ref.key, []))
        self._build_joins(join_edges)
        self._apply_residuals(residuals)
        grouped = bool(select.group_by) or self._has_aggregates()
        if grouped:
            outputs, order_keys = self._compile_grouped()
        else:
            outputs, order_keys = self._compile_plain()
        outputs = self._apply_ordering(outputs, order_keys)
        return self._apply_limit(outputs)

    def _has_aggregates(self) -> bool:
        select = self.select
        if any(contains_aggregate(i.expr) for i in select.items):
            return True
        if select.having is not None and contains_aggregate(select.having):
            return True
        return False

    # ------------------------------------------------------------------
    # WHERE classification
    # ------------------------------------------------------------------

    def _classify_where(self):
        join_edges: List[Tuple[ColumnRef, ColumnRef]] = [
            (c.left, c.right) for c in self.select.join_conditions
        ]
        table_filters: Dict[str, List[Expression]] = {}
        residuals: List[Expression] = []
        for conjunct in _split_conjuncts(self.select.where):
            edge = self._as_join_edge(conjunct)
            if edge is not None:
                join_edges.append(edge)
                continue
            keys = _tables_of(conjunct)
            if len(keys) == 1:
                table_filters.setdefault(next(iter(keys)), []).append(conjunct)
            else:
                residuals.append(conjunct)
        return join_edges, table_filters, residuals

    @staticmethod
    def _as_join_edge(expr: Expression):
        if (
            isinstance(expr, BinaryOp) and expr.op == "="
            and isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, ColumnRef)
            and expr.left.table_key != expr.right.table_key
        ):
            return (expr.left, expr.right)
        return None

    # ------------------------------------------------------------------
    # candidates
    # ------------------------------------------------------------------

    def _build_candidate(self, table_key: str,
                         filters: List[Expression]) -> None:
        cand: Optional[Var] = None
        deferred: List[Expression] = []
        for predicate in filters:
            simple = self._try_simple_selection(table_key, predicate, cand)
            if simple is not None:
                cand = simple
            else:
                deferred.append(predicate)
        if cand is None:
            table = self.binder.tables[table_key]
            cand = self.emit(
                "sql", "tid",
                [self.mvc, Const(self.schema), Const(table.name)],
                bat_of("oid"),
            )
        for predicate in deferred:
            self._projection_cache.clear()
            sel = self._filter_by_bit(cand, predicate, {table_key: cand})
            cand = self.emit("algebra", "semijoin", [cand, sel], bat_of("oid"))
        self._projection_cache.clear()
        self._candidates[table_key] = cand
        self._rowmaps = dict(self._candidates)

    def _try_simple_selection(self, table_key: str, predicate: Expression,
                              cand: Optional[Var]) -> Optional[Var]:
        """Emit a pushable predicate as a selection chain; None if the
        predicate is not of simple (column vs constants) shape."""
        parts = self._simple_parts(predicate)
        if parts is None:
            return None
        column, kind, payload = parts
        col_bat = self.bind_column(table_key, column)
        source = col_bat if cand is None else self.emit(
            "algebra", "leftjoin", [cand, col_bat],
            bat_of(self._column_type(table_key, column)),
        )
        if kind == "theta":
            value, op = payload
            if op == "=":
                sel = self.emit("algebra", "select", [source, Const(value)],
                                bat_of(self._column_type(table_key, column)))
            else:
                sel = self.emit(
                    "algebra", "thetaselect",
                    [source, Const(value), Const(_CMP_TO_THETA[op])],
                    bat_of(self._column_type(table_key, column)),
                )
        elif kind == "range":
            low, high = payload
            sel = self.emit(
                "algebra", "select", [source, Const(low), Const(high)],
                bat_of(self._column_type(table_key, column)),
            )
        else:  # like
            sel = self.emit(
                "algebra", "likeselect", [source, Const(payload)],
                bat_of("str"),
            )
        if cand is None:
            return self.emit("bat", "mirror", [sel], bat_of("oid"))
        return self.emit("algebra", "semijoin", [cand, sel], bat_of("oid"))

    def _simple_parts(self, predicate: Expression):
        """Decompose a predicate into (column, kind, payload) when it is a
        single column against compile-time constants."""
        if isinstance(predicate, BinaryOp) and predicate.op in _CMP_TO_THETA:
            left_col = isinstance(predicate.left, ColumnRef)
            right_col = isinstance(predicate.right, ColumnRef)
            if left_col and not right_col:
                value = _const_eval(predicate.right)
                if value is not _NOT_CONST:
                    return predicate.left.column, "theta", (value, predicate.op)
            if right_col and not left_col:
                value = _const_eval(predicate.left)
                if value is not _NOT_CONST:
                    return (predicate.right.column, "theta",
                            (value, _FLIP[predicate.op]))
            return None
        if isinstance(predicate, Between) and not predicate.negated and \
                isinstance(predicate.operand, ColumnRef):
            low = _const_eval(predicate.low)
            high = _const_eval(predicate.high)
            if low is not _NOT_CONST and high is not _NOT_CONST:
                return predicate.operand.column, "range", (low, high)
            return None
        if isinstance(predicate, Like) and not predicate.negated and \
                isinstance(predicate.operand, ColumnRef):
            return predicate.operand.column, "like", predicate.pattern
        return None

    def _column_type(self, table_key: str, column: str) -> MalType:
        return self.binder.tables[table_key].column(column).mal_type

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _build_joins(self, edges: List[Tuple[ColumnRef, ColumnRef]]) -> None:
        keys = [ref.key for ref in self.select.tables]
        if len(keys) == 1:
            if edges:
                raise SqlError("join condition over a single table")
            return
        joined: Set[str] = {keys[0]}
        remaining = list(edges)
        post_filters: List[Tuple[ColumnRef, ColumnRef]] = []
        while len(joined) < len(keys):
            progress = False
            for edge in list(remaining):
                left, right = edge
                lin, rin = left.table_key in joined, right.table_key in joined
                if lin and rin:
                    post_filters.append(edge)
                    remaining.remove(edge)
                    progress = True
                elif lin or rin:
                    if rin:
                        left, right = right, left
                    self._join_step(left, right)
                    joined.add(right.table_key)
                    remaining.remove(edge)
                    progress = True
            if not progress:
                missing = [k for k in keys if k not in joined]
                raise SqlError(
                    f"no join condition connects tables: {', '.join(missing)}"
                )
        for edge in remaining:
            post_filters.append(edge)
        for left, right in post_filters:
            self._apply_residuals([BinaryOp("=", left, right)])

    def _join_step(self, inner: ColumnRef, outer: ColumnRef) -> None:
        """Join the already-joined row space (via ``inner``) with the fresh
        table referenced by ``outer``."""
        inner_vals = self._project(inner.table_key, inner.column)
        outer_cand = self._candidates[outer.table_key]
        outer_col = self.bind_column(outer.table_key, outer.column)
        outer_vals = self.emit(
            "algebra", "leftjoin", [outer_cand, outer_col],
            bat_of(self._column_type(outer.table_key, outer.column)),
        )
        reversed_outer = self.emit("bat", "reverse", [outer_vals], bat_of("oid"))
        pairs = self.emit("algebra", "join", [inner_vals, reversed_outer],
                          bat_of("oid"))
        new_outer_map = self.emit("algebra", "markT", [pairs, Const(0)],
                                  bat_of("oid"))
        reversed_pairs = self.emit("bat", "reverse", [pairs], bat_of("oid"))
        old_row_map = self.emit("algebra", "markT", [reversed_pairs, Const(0)],
                                bat_of("oid"))
        for key in list(self._rowmaps):
            self._rowmaps[key] = self.emit(
                "algebra", "leftjoin", [old_row_map, self._rowmaps[key]],
                bat_of("oid"),
            )
        self._rowmaps[outer.table_key] = new_outer_map
        self._projection_cache.clear()

    # ------------------------------------------------------------------
    # residual predicates
    # ------------------------------------------------------------------

    def _apply_residuals(self, residuals: List[Expression]) -> None:
        for predicate in residuals:
            first_map = next(iter(self._rowmaps.values()))
            filtered = self._filter_by_bit(first_map, predicate, self._rowmaps)
            # the selection on the shared row space applies to all maps
            sel = filtered
            for key in list(self._rowmaps):
                self._rowmaps[key] = self.emit(
                    "algebra", "semijoin", [self._rowmaps[key], sel],
                    bat_of("oid"),
                )
            self._projection_cache.clear()

    def _filter_by_bit(self, space_var: Var, predicate: Expression,
                       rowmaps: Dict[str, Var]) -> Var:
        """Compute ``predicate`` as a bit BAT over the row space and select
        the true rows; returns a BAT whose heads are the surviving rows."""
        bit = self._compile_expr(predicate, rowmaps)
        if not self.is_bat(bit):
            bit = self.emit("algebra", "project", [space_var, bit],
                            bat_of("bit"))
        return self.emit("algebra", "select", [bit, Const(True)],
                         bat_of("bit"))

    # ------------------------------------------------------------------
    # row-space expression compilation
    # ------------------------------------------------------------------

    def _project(self, table_key: str, column: str) -> Var:
        cached = self._projection_cache.get((table_key, column))
        if cached is not None:
            return cached
        rowmap = self._rowmaps[table_key]
        col_bat = self.bind_column(table_key, column)
        var = self.emit("algebra", "leftjoin", [rowmap, col_bat],
                        bat_of(self._column_type(table_key, column)))
        self._projection_cache[(table_key, column)] = var
        return var

    def _compile_expr(self, expr: Expression,
                      rowmaps: Dict[str, Var]):
        """Compile an expression over the current row space.

        Returns a Var (BAT when any input was a BAT, scalar otherwise) or
        a Const for literal subtrees.
        """
        if isinstance(expr, Literal):
            return Const(expr.value)
        if isinstance(expr, Interval):
            raise SqlError("interval literal outside date arithmetic")
        if isinstance(expr, ColumnRef):
            saved = self._rowmaps
            self._rowmaps = rowmaps
            try:
                return self._project(expr.table_key, expr.column)
            finally:
                self._rowmaps = saved
        if isinstance(expr, BinaryOp):
            return self._compile_binary(expr, rowmaps)
        if isinstance(expr, UnaryOp):
            operand = self._compile_expr(expr.operand, rowmaps)
            if expr.op == "NOT":
                return self._emit_calc("not", [operand])
            return self._emit_calc("neg", [operand])
        if isinstance(expr, IsNull):
            operand = self._compile_expr(expr.operand, rowmaps)
            bit = self._emit_calc("isnil", [operand])
            if expr.negated:
                bit = self._emit_calc("not", [bit])
            return bit
        if isinstance(expr, Between):
            lowered = BinaryOp(
                "AND",
                BinaryOp(">=", expr.operand, expr.low),
                BinaryOp("<=", expr.operand, expr.high),
            )
            bit = self._compile_binary(lowered, rowmaps)
            if expr.negated:
                bit = self._emit_calc("not", [bit])
            return bit
        if isinstance(expr, InList):
            bit = None
            for item in expr.items:
                eq = self._compile_binary(
                    BinaryOp("=", expr.operand, item), rowmaps
                )
                bit = eq if bit is None else self._emit_calc("or", [bit, eq])
            if expr.negated:
                bit = self._emit_calc("not", [bit])
            return bit
        if isinstance(expr, Like):
            operand = self._compile_expr(expr.operand, rowmaps)
            if not self.is_bat(operand):
                raise SqlError("LIKE over a non-column value")
            bit = self.emit("batstr", "like", [operand, Const(expr.pattern)],
                            bat_of("bit"))
            if expr.negated:
                bit = self._emit_calc("not", [bit])
            return bit
        if isinstance(expr, InSubquery):
            members = self._compile_sub_select(expr)
            operand = self._compile_expr(expr.operand, rowmaps)
            if not self.is_bat(operand):
                raise SqlError("IN (subquery) needs a column operand")
            if self.is_bat(members):
                bit = self.emit("batcalc", "contains", [operand, members],
                                bat_of("bit"))
            else:
                bit = self._emit_calc("eq", [operand, members])
            if expr.negated:
                bit = self._emit_calc("not", [bit])
            return bit
        if isinstance(expr, ScalarSubquery):
            value = self._compile_sub_select(expr)
            if self.is_bat(value):
                value = self.emit("sql", "single", [value],
                                  scalar_of("int"), is_bat=False)
            return value
        if isinstance(expr, CaseWhen):
            return self._compile_case(expr, rowmaps)
        if isinstance(expr, Cast):
            operand = self._compile_expr(expr.operand, rowmaps)
            mal_type = _sql_type_to_mal(expr.type_name)
            return self._emit_calc(mal_type.name, [operand])
        if isinstance(expr, ExtractYear):
            operand = self._compile_expr(expr.operand, rowmaps)
            if self.is_bat(operand):
                return self.emit("batmtime", "year", [operand], bat_of("int"))
            return self.emit("mtime", "year", [operand], scalar_of("int"),
                             is_bat=False)
        if isinstance(expr, FuncCall):
            raise SqlError(
                f"aggregate {expr.name}() in a non-aggregate context"
            )
        raise SqlError(f"cannot compile expression {expr!r}")

    def _compile_binary(self, expr: BinaryOp, rowmaps: Dict[str, Var]):
        date_arith = self._try_date_arithmetic(expr, rowmaps)
        if date_arith is not None:
            return date_arith
        left = self._compile_expr(expr.left, rowmaps)
        right = self._compile_expr(expr.right, rowmaps)
        if expr.op in _ARITH:
            return self._emit_calc(_ARITH[expr.op], [left, right])
        if expr.op in _CMP:
            return self._emit_calc(_CMP[expr.op], [left, right])
        if expr.op in ("AND", "OR"):
            return self._emit_calc(expr.op.lower(), [left, right])
        raise SqlError(f"unknown operator {expr.op!r}")

    def _try_date_arithmetic(self, expr: BinaryOp, rowmaps: Dict[str, Var]):
        """``date ± interval`` compiles to mtime/batmtime instructions."""
        if expr.op not in ("+", "-"):
            return None
        interval = None
        other = None
        if isinstance(expr.right, Interval):
            interval, other = expr.right, expr.left
        elif isinstance(expr.left, Interval) and expr.op == "+":
            interval, other = expr.left, expr.right
        if interval is None:
            return None
        amount = interval.amount if expr.op == "+" else -interval.amount
        if interval.unit == "day":
            function = "adddays"
        else:
            function = "addmonths"
            if interval.unit == "year":
                amount *= 12
        operand = self._compile_expr(other, rowmaps)
        if self.is_bat(operand):
            return self.emit("batmtime", function, [operand, Const(amount)],
                             bat_of("date"))
        return self.emit("mtime", function, [operand, Const(amount)],
                         scalar_of("date"), is_bat=False)

    def _compile_sub_select(self, expr):
        """Compile an uncorrelated subquery into the enclosing program;
        returns its single output value (BAT var or scalar)."""
        if expr.sub_binder is None:
            raise SqlError("subquery was not bound")
        nested = _SelectCompiler(
            self.catalog, self.schema, expr.select,
            self.program.name, program=self.program,
            bat_vars=self._bat_vars, binder=expr.sub_binder, mvc=self.mvc,
        )
        return nested.compile_subquery().value

    def _compile_case(self, expr: CaseWhen, rowmaps: Dict[str, Var]):
        otherwise = (
            self._compile_expr(expr.otherwise, rowmaps)
            if expr.otherwise is not None else Const(None)
        )
        result = otherwise
        for condition, value in reversed(expr.branches):
            cond = self._compile_expr(condition, rowmaps)
            then = self._compile_expr(value, rowmaps)
            result = self._emit_calc("ifthenelse", [cond, then, result])
        return result

    def _emit_calc(self, function: str, operands: List) -> Var:
        """Scalar ``calc`` or elementwise ``batcalc`` depending on operand
        BAT-ness."""
        if any(self.is_bat(op) for op in operands):
            return self.emit("batcalc", function, operands, bat_of("int"))
        return self.emit("calc", function, operands, scalar_of("int"),
                         is_bat=False)

    # ------------------------------------------------------------------
    # ungrouped output
    # ------------------------------------------------------------------

    def _compile_plain(self):
        outputs: List[OutputColumn] = []
        for item in self.select.items:
            value = self._compile_expr(item.expr, self._rowmaps)
            if isinstance(value, Const) or not self.is_bat(value):
                space = next(iter(self._rowmaps.values()))
                value = self.emit("algebra", "project", [space, value],
                                  bat_of(self.binder.type_of(item.expr)))
            outputs.append(OutputColumn(
                name=item.alias or _display_name(item.expr),
                type_name=self.binder.type_of(item.expr).name,
                value=value, is_scalar=False,
            ))
        order_keys = self._compile_order_keys(
            outputs, lambda e: self._compile_expr(e, self._rowmaps)
        )
        return outputs, order_keys

    # ------------------------------------------------------------------
    # grouped / aggregate output
    # ------------------------------------------------------------------

    def _compile_grouped(self):
        select = self.select
        group_exprs = select.group_by
        if group_exprs:
            key_vars = [
                self._ensure_bat(self._compile_expr(e, self._rowmaps))
                for e in group_exprs
            ]
            groups, extents, _hist = self._emit_grouping(key_vars)
            group_env = _GroupEnv(self, groups, extents, group_exprs,
                                  key_vars)
        else:
            group_env = _GroupEnv(self, None, None, [], [])
        outputs: List[OutputColumn] = []
        for item in select.items:
            value = group_env.compile(item.expr)
            if not group_env.scalar and not self.is_bat(value):
                value = self.emit(
                    "algebra", "project", [group_env.extents, value],
                    bat_of(self.binder.type_of(item.expr)),
                )
            outputs.append(OutputColumn(
                name=item.alias or _display_name(item.expr),
                type_name=self.binder.type_of(item.expr).name,
                value=value,
                is_scalar=group_env.scalar,
            ))
        order_keys = self._compile_order_keys(outputs, group_env.compile)
        if select.having is not None:
            if group_env.scalar:
                raise SqlError("HAVING without GROUP BY is not supported")
            bit = group_env.compile(select.having)
            if not self.is_bat(bit):
                raise SqlError("HAVING must reference the grouping")
            sel = self.emit("algebra", "select", [bit, Const(True)],
                            bat_of("bit"))
            for output in outputs:
                output.value = self.emit(
                    "algebra", "semijoin", [output.value, sel],
                    bat_of(output.type_name),
                )
            order_keys = [
                (self.emit("algebra", "semijoin", [var, sel], bat_of("int")),
                 desc)
                for var, desc in order_keys
            ]
        return outputs, order_keys

    def _ensure_bat(self, value) -> Var:
        if self.is_bat(value):
            return value
        space = next(iter(self._rowmaps.values()))
        return self.emit("algebra", "project", [space, value], bat_of("int"))

    def _emit_grouping(self, key_vars: List[Var]):
        groups = extents = hist = None
        for index, key in enumerate(key_vars):
            results = [
                self.program.new_var(bat_of("oid")),
                self.program.new_var(bat_of("oid")),
                self.program.new_var(bat_of("lng")),
            ]
            if index == 0:
                self.program.add("group", "new", [key], results)
            else:
                self.program.add("group", "derive", [groups, key], results)
            groups, extents, hist = (Var(r) for r in results)
            for var in (groups, extents, hist):
                self._bat_vars.add(var.name)
        return groups, extents, hist

    # ------------------------------------------------------------------
    # ordering / limit / result
    # ------------------------------------------------------------------

    def _compile_order_keys(self, outputs: List[OutputColumn], compile_fn):
        keys = []
        aliases = {o.name: o for o in outputs}
        item_reprs = {
            repr(item.expr): output
            for item, output in zip(self.select.items, outputs)
        }
        for order in self.select.order_by:
            expr = order.expr
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if not (0 <= index < len(outputs)):
                    raise SqlError(f"ORDER BY position {expr.value} out of range")
                keys.append((outputs[index].value, order.descending))
                continue
            if (isinstance(expr, ColumnRef) and expr.qualifier is None
                    and expr.table_key is None and expr.column in aliases):
                keys.append((aliases[expr.column].value, order.descending))
                continue
            matched = item_reprs.get(repr(expr))
            if matched is not None:
                keys.append((matched.value, order.descending))
                continue
            keys.append((self._ensure_bat(compile_fn(expr)), order.descending))
        return keys

    def _apply_ordering(self, outputs: List[OutputColumn], order_keys):
        if not order_keys or all(o.is_scalar for o in outputs):
            return outputs
        perm: Optional[Var] = None
        for key_var, descending in reversed(order_keys):
            source = key_var if perm is None else self.emit(
                "algebra", "leftjoin", [perm, key_var], bat_of("int")
            )
            function = "sortReverseTail" if descending else "sortTail"
            sorted_var = self.emit("algebra", function, [source], bat_of("int"))
            mirrored = self.emit("bat", "mirror", [sorted_var], bat_of("oid"))
            this_perm = self.emit("algebra", "markT", [mirrored, Const(0)],
                                  bat_of("oid"))
            perm = this_perm if perm is None else self.emit(
                "algebra", "leftjoin", [this_perm, perm], bat_of("oid")
            )
        for output in outputs:
            output.value = self.emit(
                "algebra", "leftjoin", [perm, output.value],
                bat_of(output.type_name),
            )
        return outputs

    def _apply_limit(self, outputs: List[OutputColumn]):
        limit = self.select.limit
        if limit is None or all(o.is_scalar for o in outputs):
            return outputs
        first = self.select.offset
        last = first + limit - 1
        for output in outputs:
            output.value = self.emit(
                "algebra", "slice",
                [output.value, Const(first), Const(last)],
                bat_of(output.type_name),
            )
        return outputs

    def _emit_result(self, outputs: List[OutputColumn]) -> None:
        rs = self.emit(
            "sql", "resultSet", [Const(len(outputs)), Const(-1)],
            scalar_of("oid"), is_bat=False,
        )
        table_label = ".".join(
            [self.schema] + [self.select.tables[0].table]
        )
        for output in outputs:
            rs = self.emit(
                "sql", "rsColumn",
                [rs, Const(table_label), Const(output.name),
                 Const(output.type_name), output.value],
                scalar_of("oid"), is_bat=False,
            )
        self.program.add("sql", "exportResult", [rs])


class _GroupEnv:
    """Expression compilation in group space (after GROUP BY) or scalar
    aggregate space (aggregates without GROUP BY)."""

    def __init__(self, compiler: _SelectCompiler, groups, extents,
                 group_exprs: List[Expression], key_vars: List[Var]) -> None:
        self.compiler = compiler
        self.groups = groups
        self.extents = extents
        self.scalar = groups is None
        self._key_by_repr = {
            repr(e): var for e, var in zip(group_exprs, key_vars)
        }
        self._key_projection_cache: Dict[str, Var] = {}
        self._aggregate_cache: Dict[str, Any] = {}

    def compile(self, expr: Expression):
        c = self.compiler
        key = repr(expr)
        if key in self._key_by_repr:
            return self._project_key(key)
        if isinstance(expr, FuncCall):
            return self._aggregate(expr)
        if isinstance(expr, Literal):
            return Const(expr.value)
        if isinstance(expr, BinaryOp):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if expr.op in _ARITH:
                return c._emit_calc(_ARITH[expr.op], [left, right])
            if expr.op in _CMP:
                return c._emit_calc(_CMP[expr.op], [left, right])
            if expr.op in ("AND", "OR"):
                return c._emit_calc(expr.op.lower(), [left, right])
            raise SqlError(f"unknown operator {expr.op!r}")
        if isinstance(expr, UnaryOp):
            operand = self.compile(expr.operand)
            return c._emit_calc("not" if expr.op == "NOT" else "neg",
                                [operand])
        if isinstance(expr, Cast):
            operand = self.compile(expr.operand)
            return c._emit_calc(_sql_type_to_mal(expr.type_name).name,
                                [operand])
        if isinstance(expr, ScalarSubquery):
            value = c._compile_sub_select(expr)
            if c.is_bat(value):
                value = c.emit("sql", "single", [value], scalar_of("int"),
                               is_bat=False)
            return value
        if isinstance(expr, ColumnRef):
            raise SqlError(
                f"column {expr.display()!r} is neither grouped nor aggregated"
            )
        raise SqlError(f"cannot compile {type(expr).__name__} in group space")

    def _project_key(self, key_repr: str) -> Var:
        cached = self._key_projection_cache.get(key_repr)
        if cached is not None:
            return cached
        c = self.compiler
        var = c.emit(
            "algebra", "leftjoin", [self.extents, self._key_by_repr[key_repr]],
            bat_of("int"),
        )
        self._key_projection_cache[key_repr] = var
        return var

    def _aggregate(self, call: FuncCall):
        key = repr(call)
        cached = self._aggregate_cache.get(key)
        if cached is not None:
            return cached
        c = self.compiler
        if call.star or not call.args:
            source = next(iter(c._rowmaps.values()))
        else:
            source = c._ensure_bat(c._compile_expr(call.args[0], c._rowmaps))
        if self.scalar:
            result_type = scalar_of("lng" if call.name == "count" else "dbl")
            var = c.emit("aggr", call.name, [source], result_type,
                         is_bat=False)
        else:
            var = c.emit(
                "aggr", call.name, [source, self.groups, self.extents],
                bat_of("lng" if call.name == "count" else "dbl"),
            )
        self._aggregate_cache[key] = var
        return var


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


_NOT_CONST = object()


def _const_eval(expr: Expression):
    """Evaluate a literal-only expression at compile time; returns
    ``_NOT_CONST`` when the expression involves columns or aggregates."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-":
        value = _const_eval(expr.operand)
        if value is _NOT_CONST or value is None:
            return _NOT_CONST
        return -value
    if isinstance(expr, Cast):
        value = _const_eval(expr.operand)
        if value is _NOT_CONST or value is None:
            return _NOT_CONST
        from repro.storage.types import cast_value

        return cast_value(value, _sql_type_to_mal(expr.type_name))
    if isinstance(expr, BinaryOp) and expr.op in ("+", "-", "*", "/", "%"):
        if isinstance(expr.right, Interval) or isinstance(expr.left, Interval):
            return _const_interval_arith(expr)
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        if left is _NOT_CONST or right is _NOT_CONST:
            return _NOT_CONST
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right if right else None
            return left % right if right else None
        except TypeError:
            return _NOT_CONST
    return _NOT_CONST


def _const_interval_arith(expr: BinaryOp):
    if isinstance(expr.right, Interval):
        base = _const_eval(expr.left)
        interval = expr.right
    elif expr.op == "+":
        base = _const_eval(expr.right)
        interval = expr.left
    else:
        return _NOT_CONST
    if base is _NOT_CONST or not isinstance(base, datetime.date):
        return _NOT_CONST
    amount = interval.amount if expr.op == "+" else -interval.amount
    if interval.unit == "day":
        return base + datetime.timedelta(days=amount)
    months = amount * (12 if interval.unit == "year" else 1)
    from repro.mal.modules.mtime import addmonths

    return addmonths(None, None, [base, months])


def _split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _tables_of(expr: Expression) -> Set[str]:
    found: Set[str] = set()

    def walk(node) -> None:
        if isinstance(node, ColumnRef):
            if node.table_key:
                found.add(node.table_key)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, (IsNull, Like, Cast, ExtractYear)):
            walk(node.operand)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, InSubquery):
            walk(node.operand)  # the subquery itself is uncorrelated
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, CaseWhen):
            for condition, value in node.branches:
                walk(condition)
                walk(value)
            if node.otherwise is not None:
                walk(node.otherwise)

    walk(expr)
    return found


def _display_name(expr: Expression) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        return f"{expr.name}({_display_name(expr.args[0])})"
    if isinstance(expr, BinaryOp):
        return (
            f"{_display_name(expr.left)}{expr.op}{_display_name(expr.right)}"
        )
    if isinstance(expr, Literal):
        return str(expr.value)
    if isinstance(expr, Cast):
        return _display_name(expr.operand)
    if isinstance(expr, ExtractYear):
        return f"year({_display_name(expr.operand)})"
    return "expr"
