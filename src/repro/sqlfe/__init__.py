"""SQL front end: text → AST → relational algebra → MAL plan.

This mirrors MonetDB's compilation pipeline as the paper describes it:
"a SQL query gets parsed and is converted into a relational algebra
representation.  This algebra representation is then converted to a MAL
plan.  Subsequently, optimizers work on the generated MAL plan."

The dialect covers what TPC-H style analytics need: multi-table SELECT
with WHERE / GROUP BY / HAVING / ORDER BY / LIMIT, arithmetic and boolean
expressions, aggregates, BETWEEN / IN / LIKE, date literals and interval
arithmetic — plus CREATE TABLE and INSERT for data definition in examples.
"""

from repro.sqlfe.compiler import SqlCompiler, compile_sql
from repro.sqlfe.parser import parse_sql

__all__ = ["SqlCompiler", "compile_sql", "parse_sql"]
