"""The embedded execution environment: catalog, compiler, optimizer,
interpreter and profiler in one object.

``Database.execute`` is the single entry point for SQL: DDL and INSERT
apply directly to the catalog; SELECT compiles to MAL, runs through the
configured optimizer pipeline, executes on the configured scheduler and
returns rows.  Every compiled plan and its dot file are kept for the
Stethoscope to pick up.
"""

from __future__ import annotations

import datetime
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.dot.writer import plan_to_dot
from repro.errors import (
    CatalogError, CheckpointError, SqlError, StorageError, TypeMismatchError,
    WalError,
)
from repro.metrics.families import (
    ADAPTIVE_DEADLINE_REROUTES, PLAN_CACHE_EVICTIONS, PLAN_CACHE_HITS,
    PLAN_CACHE_MISSES, PLAN_CACHE_SIZE,
)
from repro.stats import StatsStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.lifecycle import QueryContext
from repro.mal.ast import MalProgram
from repro.mal.dataflow import SimulatedScheduler, ThreadedScheduler
from repro.mal.interpreter import ExecutionResult, Interpreter, RunListener
from repro.mal.mpool import DEFAULT_MIN_ROWS, PartitionWorkerPool
from repro.mal.optimizer import (
    AdaptiveOrder, Mitosis, Pipeline, pipeline_by_name,
)
from repro.mal.printer import format_program
from repro.sqlfe.ast import CreateTable, DropTable, Insert, Literal, Select, UnaryOp
from repro.sqlfe.compiler import SqlCompiler
from repro.sqlfe.parser import parse_sql
from repro.storage.catalog import Catalog, Column, Table, _sql_type_to_mal
from repro.storage.durable import (
    CheckpointReport, DurableEngine, RecoveryReport,
)


def normalize_sql(sql: str) -> str:
    """Collapse insignificant whitespace for plan-cache keying.

    Runs of whitespace *outside* single-quoted string literals become
    one space (and a trailing semicolon plus surrounding blanks are
    dropped), so reformatted but textually equivalent statements share
    a cache entry.  Whitespace inside literals is preserved — collapsing
    it would make ``'a  b'`` and ``'a b'`` collide on different plans.
    """
    out: List[str] = []
    in_literal = False
    pending_space = False
    for ch in sql:
        if in_literal:
            out.append(ch)
            if ch == "'":
                in_literal = False
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space:
            if out:
                out.append(" ")
            pending_space = False
        out.append(ch)
        if ch == "'":
            in_literal = True
    text = "".join(out)
    if text.endswith(";"):
        text = text[:-1].rstrip()
    return text


#: Latency drift factor that evicts a cached plan: an entry observed
#: running at >= 2x (or <= 1/2x) the latency recorded when it was
#: cached no longer describes the data it was optimized for.
PLAN_DRIFT_FACTOR = 2.0


class _PlanEntry:
    """One cached plan plus the observations drift detection needs."""

    __slots__ = ("program", "recorded_usec", "last_usec", "hits",
                 "created_monotonic")

    def __init__(self, program: MalProgram) -> None:
        self.program = program
        #: latency of the first post-caching execution — the cost the
        #: plan was effectively "recorded at"; None until observed
        self.recorded_usec: Optional[float] = None
        self.last_usec: Optional[float] = None
        self.hits = 0
        self.created_monotonic = time.monotonic()


class PlanCache:
    """A thread-safe LRU cache of optimized MAL plans.

    Keys are built by :meth:`Database._plan_key`: the normalized SQL
    text plus everything else that shapes the compiled plan — optimizer
    pipeline, worker count (mitosis partitioning), and the catalog
    fingerprint (schema version, table count, total rows).  Folding the
    fingerprint into the key makes stale entries unreachable the moment
    the catalog changes; DDL/DML paths additionally call
    :meth:`clear` so invalidated plans free their memory immediately
    instead of waiting for LRU pressure.

    Each entry remembers the latency of its first post-caching
    execution; :meth:`observe` compares later executions against it and
    evicts the plan when the observed latency drifts by
    :data:`PLAN_DRIFT_FACTOR` in either direction — the in-place data
    skew it was optimized for no longer holds, so the next execution
    recompiles against fresh statistics.

    A ``capacity`` of 0 disables caching entirely (every ``get`` is a
    silent miss and ``put`` is a no-op) — useful for benchmarking cold
    compiles and for workloads of one-off statements.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _PlanEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.drift_evictions = 0

    @property
    def enabled(self) -> bool:
        """False when constructed with capacity 0."""
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[MalProgram]:
        """The cached plan for ``key``, or None (counts a hit/miss)."""
        if not self.capacity:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                PLAN_CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            entry.hits += 1
            PLAN_CACHE_HITS.inc()
            return entry.program

    def put(self, key: tuple, program: MalProgram) -> None:
        """Insert ``key`` → ``program``, evicting the LRU entry if full."""
        if not self.capacity:
            return
        with self._lock:
            self._entries[key] = _PlanEntry(program)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                PLAN_CACHE_EVICTIONS.labels(reason="lru").inc()
            PLAN_CACHE_SIZE.set(len(self._entries))

    def observe(self, key: tuple, usec: float) -> bool:
        """Fold one observed execution latency into ``key``'s entry.

        The first observation after caching records the plan's baseline
        cost; each later one is compared against it.  Returns True when
        the entry was evicted for drift (the caller's next execution of
        this statement will recompile).
        """
        if not self.capacity:
            return False
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.last_usec = usec
            if entry.recorded_usec is None:
                entry.recorded_usec = usec
                return False
            recorded = entry.recorded_usec
            if usec >= recorded * PLAN_DRIFT_FACTOR or \
                    usec * PLAN_DRIFT_FACTOR <= recorded:
                del self._entries[key]
                self.evictions += 1
                self.drift_evictions += 1
                PLAN_CACHE_EVICTIONS.labels(reason="drift").inc()
                PLAN_CACHE_SIZE.set(len(self._entries))
                return True
            return False

    def clear(self) -> int:
        """Drop every entry (explicit DDL/DML invalidation); returns count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.evictions += dropped
                PLAN_CACHE_EVICTIONS.labels(reason="invalidate").inc(dropped)
            PLAN_CACHE_SIZE.set(0)
            return dropped

    def stats(self) -> Dict[str, int]:
        """Counters and occupancy, for the CLI/server ``stats`` surface."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "drift_evictions": self.drift_evictions,
            }

    def entries(self) -> List[Dict[str, Any]]:
        """Per-entry diagnostics for the ``stats`` verb: what is cached,
        how hot it is, and how far its cost has moved since caching."""
        now = time.monotonic()
        with self._lock:
            out = []
            for key, entry in self._entries.items():
                nsql, pipeline, workers = key[0], key[1], key[2]
                drift = None
                if entry.recorded_usec and entry.last_usec is not None:
                    drift = round(entry.last_usec / entry.recorded_usec, 4)
                out.append({
                    "sql": nsql,
                    "pipeline": pipeline,
                    "workers": workers,
                    "hits": entry.hits,
                    "age_s": round(now - entry.created_monotonic, 3),
                    "recorded_usec": entry.recorded_usec,
                    "last_usec": entry.last_usec,
                    "drift": drift,
                })
            return out


@dataclass
class QueryOutcome:
    """What one SQL statement produced."""

    kind: str  # "rows" | "ddl" | "insert"
    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    affected: int = 0
    program: Optional[MalProgram] = None
    execution: Optional[ExecutionResult] = None


class Database:
    """An embedded database instance.

    Args:
        catalog: existing catalog (a fresh one when omitted).
        workers: dataflow worker count (also the mitosis partition count).
        pipeline_name: optimizer pipeline (``default_pipe``,
            ``sequential_pipe``, ``minimal_pipe``).
        scheduler: ``"simulated"`` (deterministic virtual time, default)
            or ``"threaded"`` (real threads).  Both run kernels
            *in-process* by default — see ``parallel_workers``.
        plan_cache_size: maximum optimized plans kept by the LRU plan
            cache; 0 disables plan caching.
        parallel_workers: partition worker *processes*.  0 or 1 (the
            default) keeps all kernel execution in-process; >= 2 forks a
            :class:`~repro.mal.mpool.PartitionWorkerPool` that executes
            mitosis partition fragments one-per-core and hands the
            results back to whichever scheduler runs the plan.
        parallel_min_rows: plans shipping fewer partition rows than this
            stay in-process (pool overhead floor); 0 forces the pool.
        wal_dir: directory for the write-ahead log and checkpoints.
            When given, opening the database *recovers* whatever the
            directory holds (newest valid checkpoint + WAL replay; see
            :attr:`recovery`), and every DDL/INSERT is write-ahead
            logged and fsynced before it is acknowledged.  None (the
            default) keeps the catalog purely in-memory, as before.
        commit_window_ms: group-commit window — how long the first
            committer waits for concurrent writers to share its fsync.
            0 degenerates to one fsync per statement.
        checkpoint_interval: write a checkpoint (and truncate the WAL)
            every this many logged statements; 0 disables automatic
            checkpoints (:meth:`checkpoint` still works).
        stats_store: runtime statistics store feeding the adaptive
            optimizer; a fresh one when omitted.  Durable databases
            persist it as ``<wal_dir>/stats.json`` on close and reload
            it on open (a missing or corrupt snapshot just starts the
            feedback loop cold).
    """

    STATS_FILENAME = "stats.json"

    def __init__(self, catalog: Optional[Catalog] = None, workers: int = 4,
                 pipeline_name: str = "default_pipe",
                 scheduler: str = "simulated",
                 mitosis_threshold: int = 1000,
                 plan_cache_size: int = 64,
                 parallel_workers: int = 0,
                 parallel_min_rows: int = DEFAULT_MIN_ROWS,
                 wal_dir: Optional[str] = None,
                 commit_window_ms: float = 2.0,
                 checkpoint_interval: int = 0,
                 stats_store: Optional[StatsStore] = None) -> None:
        #: the durable engine (WAL + checkpoints), or None when opened
        #: without a ``wal_dir``.
        self.durability: Optional[DurableEngine] = None
        #: what opening the ``wal_dir`` recovered, or None.
        self.recovery: Optional[RecoveryReport] = None
        if wal_dir:
            self.durability = DurableEngine(
                wal_dir, commit_window_ms=commit_window_ms,
                checkpoint_interval=checkpoint_interval)
            self.recovery = self.durability.report
            if self.recovery.recovered_anything:
                if catalog is not None:
                    self.durability.close()
                    raise StorageError(
                        f"wal directory {wal_dir!r} already holds a "
                        f"database; open it with catalog=None to "
                        f"recover it")
                catalog = self.durability.catalog
            elif catalog is not None:
                # seed catalog (e.g. the data generator's): make the
                # baseline durable before the first statement runs
                try:
                    self.durability.adopt(catalog)
                except Exception:
                    self.durability.close()
                    raise
            else:
                catalog = self.durability.catalog
        self.catalog = catalog or Catalog()
        self.workers = workers
        self.pipeline_name = pipeline_name
        self.scheduler = scheduler
        self.mitosis_threshold = mitosis_threshold
        self.compiler = SqlCompiler(self.catalog)
        #: LRU cache of optimized plans, shared by every session on this
        #: database; per-session pipeline/worker overrides are part of
        #: the key, so sessions never see each other's plans.
        self.plan_cache = PlanCache(plan_cache_size)
        #: last compiled (optimized) plan, for explain/dot consumers
        self.last_program: Optional[MalProgram] = None
        #: partition worker pool, or None for in-process execution.
        #: Forked eagerly, before the server spins up executor threads —
        #: forking a threaded process is where fork goes wrong.
        self.pool: Optional[PartitionWorkerPool] = None
        if parallel_workers and parallel_workers > 1:
            self.pool = PartitionWorkerPool(
                workers=parallel_workers,
                min_rows=parallel_min_rows).start()
        #: runtime statistics feeding the adaptive optimizer; durable
        #: databases reload the previous run's snapshot so the feedback
        #: loop survives restarts
        self._stats_path: Optional[str] = (
            os.path.join(wal_dir, self.STATS_FILENAME) if wal_dir else None)
        if stats_store is not None:
            self.stats_store = stats_store
        else:
            self.stats_store = StatsStore()
            if self._stats_path and os.path.exists(self._stats_path):
                try:
                    self.stats_store = StatsStore.load(self._stats_path)
                except (StorageError, OSError):
                    pass  # cold stats beat refusing to open

    def close(self) -> None:
        """Release owned resources (worker pool, WAL); idempotent.

        Closing the WAL fsyncs it, so a *graceful* shutdown preserves
        every applied statement even if none were checkpointed."""
        if self.pool is not None:
            self.pool.close()
        if self._stats_path is not None and len(self.stats_store):
            try:
                self.stats_store.save(self._stats_path)
            except OSError:
                pass  # stats are advisory; never fail shutdown on them
        if self.durability is not None:
            self.durability.close()

    def checkpoint(self) -> CheckpointReport:
        """Force a checkpoint now (durable databases only).

        Raises:
            StorageError: the database was opened without a ``wal_dir``.
            CheckpointError: the checkpoint could not be written (the
                WAL is left intact, so nothing is lost).
        """
        if self.durability is None:
            raise StorageError(
                "checkpoint requires a database opened with a wal_dir")
        return self.durability.checkpoint()

    def _maybe_checkpoint(self) -> None:
        """Post-statement periodic checkpoint hook.

        A failed checkpoint (injected fault or real I/O error) never
        fails the statement — it was already fsynced to the WAL, and an
        unharvested WAL only means a longer replay on the next open.
        """
        if self.durability is None:
            return
        try:
            self.durability.maybe_checkpoint()
        except (CheckpointError, WalError):
            pass

    # ------------------------------------------------------------------

    def set_pipeline(self, name: str) -> None:
        """Switch the optimizer pipeline (validated immediately)."""
        pipeline_by_name(name)  # raises on unknown names
        self.pipeline_name = name

    def _pipeline(self, name: Optional[str] = None,
                  workers: Optional[int] = None) -> Pipeline:
        name = name or self.pipeline_name
        workers = workers or self.workers
        if name in ("default_pipe", "static_pipe"):
            pipeline = pipeline_by_name(
                name, nparts=workers,
                mitosis_threshold=self.mitosis_threshold,
            )
            for opt_pass in pipeline.passes:
                if isinstance(opt_pass, Mitosis):
                    opt_pass.catalog = self.catalog
                elif isinstance(opt_pass, AdaptiveOrder):
                    opt_pass.stats = self.stats_store
                    opt_pass.fingerprint = self.catalog.fingerprint()
            return pipeline
        return pipeline_by_name(name)

    # ------------------------------------------------------------------

    def _plan_key(self, sql: str, pipeline_name: Optional[str] = None,
                  workers: Optional[int] = None) -> tuple:
        """Plan-cache key: everything that shapes the compiled plan.

        Normalized SQL text, the effective pipeline and worker count
        (mitosis partitions by both), and the catalog fingerprint
        (version, table count, total rows).  The scheduler is
        deliberately absent: a compiled plan is scheduler-independent —
        the same program object runs on any of them.
        """
        return (
            normalize_sql(sql),
            pipeline_name or self.pipeline_name,
            workers or self.workers,
            self.catalog.fingerprint(),
        )

    def _invalidate_plans(self) -> None:
        """DDL/DML hook: bump the catalog version, drop cached plans."""
        self.catalog.invalidate()
        self.plan_cache.clear()

    def swap_catalog(self, catalog: Catalog) -> None:
        """Replace the live catalog wholesale (replication only).

        Used when a node's state is rebuilt from disk — a replica
        installing a bootstrap snapshot, or a promotion re-running
        recovery.  The compiler binds to the new catalog and every
        cached plan is dropped; in-flight reads keep executing against
        the old catalog object they already resolved, exactly like a
        read racing a concurrent write.
        """
        self.catalog = catalog
        self.compiler = SqlCompiler(catalog)
        self.plan_cache.clear()

    def install_replica_snapshot(self, catalog: Catalog, lsn: int) -> None:
        """Adopt a bootstrap checkpoint shipped from the primary.

        The checkpoint directory for ``lsn`` must already be valid on
        disk (the replication layer lands and CRC-verifies it first);
        this swaps it into both the durable engine and the execution
        surface atomically with respect to the write path.
        """
        if self.durability is None:
            raise StorageError(
                "snapshot install requires a durable database")
        self.durability.install_snapshot(catalog, lsn)
        self.swap_catalog(catalog)

    def compile(self, sql: str, pipeline_name: Optional[str] = None,
                workers: Optional[int] = None) -> MalProgram:
        """Compile a SELECT to its optimized MAL plan.

        ``pipeline_name``/``workers`` override the instance defaults for
        this one compilation — how the server applies per-session
        settings without mutating the shared database.  Warm plan-cache
        hits skip lexing, parsing, binding and the optimizer pipeline
        entirely.
        """
        key = None
        program = None
        if self.plan_cache.enabled:
            key = self._plan_key(sql, pipeline_name, workers)
            program = self.plan_cache.get(key)
        if program is None:
            program = self.compiler.compile_text(sql)
            program = self._pipeline(pipeline_name, workers).apply(program)
            if key is not None:
                self.plan_cache.put(key, program)
        self.last_program = program
        return program

    def explain(self, sql: str, pipeline_name: Optional[str] = None,
                workers: Optional[int] = None) -> str:
        """The optimized MAL plan as text (``EXPLAIN``)."""
        return format_program(self.compile(sql, pipeline_name, workers))

    def dot(self, sql: str, pipeline_name: Optional[str] = None,
            workers: Optional[int] = None) -> str:
        """The optimized plan's dot file."""
        return plan_to_dot(self.compile(sql, pipeline_name, workers))

    def execute(self, sql: str,
                listener: Optional[RunListener] = None,
                context: Optional["QueryContext"] = None,
                pipeline_name: Optional[str] = None,
                workers: Optional[int] = None,
                scheduler: Optional[str] = None) -> QueryOutcome:
        """Execute one SQL statement.

        ``listener`` (usually a :class:`~repro.profiler.Profiler`)
        receives the instruction run records of SELECT execution.
        ``context`` is an optional
        :class:`~repro.server.lifecycle.QueryContext` checked at every
        instruction boundary (cancellation, deadline, RSS budget).
        ``pipeline_name``/``workers``/``scheduler`` are per-call
        overrides of the instance defaults; the server uses them to
        apply per-session settings without mutating shared state.

        MonetDB's statement modifiers are supported: ``EXPLAIN SELECT
        ...`` returns the optimized MAL plan as one text column instead
        of executing, and ``TRACE SELECT ...`` executes the query and
        returns its profiler trace as rows.
        """
        if context is not None:
            context.check()
        stripped = sql.lstrip()
        head = stripped[:8].lower()
        if head.startswith("explain "):
            plan_text = self.explain(stripped[len("explain "):],
                                     pipeline_name, workers)
            outcome = QueryOutcome(kind="rows", columns=["mal"],
                                   rows=[(line,) for line in
                                         plan_text.splitlines()])
            outcome.program = self.last_program
            return outcome
        if head.startswith("trace "):
            return self._execute_traced(stripped[len("trace "):], context,
                                        pipeline_name, workers, scheduler)
        # Deadline-carrying SELECTs compile against a Maliva-style
        # cheapest-feasible target: when the stats store has seen this
        # statement under several pipelines and predicts the default one
        # will blow the deadline, reroute to the cheapest variant.
        if head.startswith("select") and context is not None and \
                getattr(context, "deadline_s", None):
            chosen, rerouted = self.stats_store.choose_pipeline(
                normalize_sql(sql), workers or self.workers,
                self.catalog.fingerprint(),
                deadline_usec=context.deadline_s * 1_000_000.0,
                default=pipeline_name or self.pipeline_name)
            if rerouted:
                pipeline_name = chosen
                ADAPTIVE_DEADLINE_REROUTES.inc()
        # Plan-cache fast path: only SELECTs are cached, so a hit means
        # the statement can run without being lexed or parsed at all.
        key = None
        program: Optional[MalProgram] = None
        if self.plan_cache.enabled and head.startswith("select"):
            key = self._plan_key(sql, pipeline_name, workers)
            program = self.plan_cache.get(key)
        if program is None:
            statement = parse_sql(sql)
            if isinstance(statement, CreateTable):
                self._execute_create(statement)
                self._invalidate_plans()
                self._maybe_checkpoint()
                return QueryOutcome(kind="ddl")
            if isinstance(statement, DropTable):
                self._execute_drop(statement)
                self._invalidate_plans()
                self._maybe_checkpoint()
                return QueryOutcome(kind="ddl")
            if isinstance(statement, Insert):
                outcome = self._execute_insert(statement)
                self._maybe_checkpoint()
                return outcome
            if not isinstance(statement, Select):
                raise SqlError(
                    f"unsupported statement {type(statement).__name__}")
            program = self.compiler.compile(statement)
            program = self._pipeline(pipeline_name, workers).apply(program)
            if key is not None:
                self.plan_cache.put(key, program)
        self.last_program = program
        execution = self.run_program(program, listener, context,
                                     workers, scheduler)
        # Close the feedback loop: fold the completed trace into the
        # stats store and check the cached plan for cost drift.
        fingerprint = self.catalog.fingerprint()
        self.stats_store.observe_program(program, execution.runs,
                                         fingerprint)
        self.stats_store.observe_query(
            normalize_sql(sql), pipeline_name or self.pipeline_name,
            workers or self.workers, execution.total_usec, fingerprint)
        if key is not None:
            self.plan_cache.observe(key, execution.total_usec)
        result_set = execution.first
        return QueryOutcome(
            kind="rows",
            columns=list(result_set.names) if result_set else [],
            rows=execution.rows(),
            program=program,
            execution=execution,
        )

    def run_program(self, program: MalProgram,
                    listener: Optional[RunListener] = None,
                    context: Optional["QueryContext"] = None,
                    workers: Optional[int] = None,
                    scheduler: Optional[str] = None) -> ExecutionResult:
        """Execute an already-compiled plan on the configured scheduler."""
        workers = workers or self.workers
        scheduler = scheduler or self.scheduler
        if scheduler == "threaded":
            return ThreadedScheduler(
                self.catalog, workers=workers, listener=listener,
                realtime_scale=1e-4, pool=self.pool,
            ).run(program, context)
        if program.dataflow_enabled:
            return SimulatedScheduler(
                self.catalog, workers=workers, listener=listener,
                pool=self.pool,
            ).run(program, context)
        return Interpreter(self.catalog, listener=listener,
                           pool=self.pool).run(program, context)

    def _execute_traced(self, sql: str,
                        context: Optional["QueryContext"] = None,
                        pipeline_name: Optional[str] = None,
                        workers: Optional[int] = None,
                        scheduler: Optional[str] = None) -> QueryOutcome:
        """``TRACE SELECT ...``: run the query, return its trace rows."""
        from repro.profiler import Profiler

        profiler = Profiler()
        inner = self.execute(sql, listener=profiler, context=context,
                             pipeline_name=pipeline_name, workers=workers,
                             scheduler=scheduler)
        rows = [
            (e.event, e.clock_usec, e.status, e.pc, e.thread, e.usec,
             e.rss_bytes, e.stmt)
            for e in profiler.events
        ]
        outcome = QueryOutcome(
            kind="rows",
            columns=["event", "clock", "status", "pc", "thread", "usec",
                     "rss", "stmt"],
            rows=rows,
        )
        outcome.program = inner.program
        outcome.execution = inner.execution
        return outcome

    # ------------------------------------------------------------------
    # the write path (DDL / INSERT): validate, then apply — through the
    # WAL when the database is durable
    # ------------------------------------------------------------------

    def _execute_create(self, statement: CreateTable) -> None:
        schema = self.catalog.schema()
        if self.durability is None:
            self.catalog.create_table_from_sql_types(
                statement.table, statement.columns)
            return
        # Validate fully before logging: the WAL record must be
        # replayable, so apply() is not allowed to fail.
        resolved = [(name, _sql_type_to_mal(type_name))
                    for name, type_name in statement.columns]
        key = statement.table.lower()
        if key in schema.tables:
            raise CatalogError(
                f"table {statement.table!r} already exists in "
                f"{schema.name!r}")
        table = Table(statement.table, resolved)
        data = {"op": "create", "schema": schema.name,
                "table": statement.table,
                "columns": [[name, mal_type.name]
                            for name, mal_type in resolved]}

        def apply() -> None:
            schema.tables[key] = table

        def undo() -> None:
            schema.tables.pop(key, None)

        self.durability.log("ddl", data, apply, undo)

    def _execute_drop(self, statement: DropTable) -> None:
        schema = self.catalog.schema()
        if self.durability is None:
            schema.drop_table(statement.table)
            return
        key = statement.table.lower()
        table = schema.tables.get(key)
        if table is None:
            raise CatalogError(
                f"no table {statement.table!r} in {schema.name!r}")
        data = {"op": "drop", "schema": schema.name,
                "table": statement.table}

        def apply() -> None:
            del schema.tables[key]

        def undo() -> None:
            schema.tables[key] = table

        self.durability.log("ddl", data, apply, undo)

    def _execute_insert(self, statement: Insert) -> QueryOutcome:
        table = self.catalog.table(statement.table)
        columns = list(table.columns.values())
        rows: List[List[Any]] = []
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SqlError(
                    f"INSERT row has {len(row_exprs)} value(s); table "
                    f"{statement.table!r} has {len(columns)} column(s)")
            rows.append([
                self._bind_insert_value(expr, column)
                for expr, column in zip(row_exprs, columns)
            ])
        if self.durability is None:
            inserted = table.insert_many(rows)
            self._invalidate_plans()
            return QueryOutcome(kind="insert", affected=inserted)
        data = {"schema": self.catalog.schema().name, "table": table.name,
                "rows": rows}
        # Pre-insert lengths for rollback.  Captured inside apply() —
        # i.e. under the engine's order lock, immediately before the
        # insert — never out here: the server runs statements on a
        # thread pool, so a concurrent INSERT into the same table could
        # commit between an early snapshot and our apply, and our undo
        # would then truncate its acknowledged, WAL-durable rows away.
        snapshots: List[int] = []

        def apply() -> int:
            snapshots[:] = [column.bat.count() for column in columns]
            return table.insert_many(rows)

        def undo() -> None:
            # truncate-to-length: idempotent and safe under any
            # interleaving of same-batch rollbacks
            for column, length in zip(columns, snapshots):
                del column.bat.tail[length:]
                column.bat._invalidate_caches()

        inserted = self.durability.log("insert", data, apply, undo)
        self._invalidate_plans()
        return QueryOutcome(kind="insert", affected=inserted)

    def _bind_insert_value(self, expr: Any, column: Column) -> Any:
        """Evaluate one INSERT literal and type-check it at bind time.

        A literal whose type cannot losslessly land in the column's atom
        type is rejected with a typed :class:`SqlError` *before* any
        column is touched (and, for durable databases, before the row is
        write-ahead logged) — previously a mistyped literal could land
        in a BAT and only fail later inside a kernel.
        """
        if isinstance(expr, Literal):
            value = expr.value
        elif isinstance(expr, UnaryOp) and expr.op == "-" and \
                isinstance(expr.operand, Literal):
            operand = expr.operand.value
            if isinstance(operand, bool) or \
                    not isinstance(operand, (int, float)):
                raise SqlError(
                    f"cannot negate non-numeric literal {operand!r}")
            value = -operand
        else:
            raise SqlError("INSERT supports literal values only")
        if value is None:
            return None
        type_name = column.mal_type.name
        target = f"column {column.name!r} ({type_name})"
        if isinstance(value, bool):
            if type_name != "bit":
                raise SqlError(
                    f"cannot insert boolean {value!r} into {target}")
            return value
        if isinstance(value, int):
            if type_name not in ("int", "lng", "oid", "flt", "dbl"):
                raise SqlError(
                    f"cannot insert integer {value!r} into {target}")
        elif isinstance(value, float):
            if type_name not in ("flt", "dbl"):
                raise SqlError(
                    f"cannot insert float {value!r} into {target}")
        elif isinstance(value, datetime.date):
            if type_name != "date":
                raise SqlError(
                    f"cannot insert date {value!r} into {target}")
        elif isinstance(value, str):
            if type_name == "date":
                try:
                    return datetime.date.fromisoformat(value.strip())
                except ValueError:
                    raise SqlError(
                        f"bad date literal {value!r} for {target}: "
                        f"expected YYYY-MM-DD") from None
            if type_name != "str":
                raise SqlError(
                    f"cannot insert string {value!r} into {target}")
        else:
            raise SqlError(
                f"unsupported literal {value!r} for {target}")
        try:
            return column.mal_type.caster(value)
        except TypeMismatchError as exc:
            raise SqlError(str(exc)) from None
