"""The embedded execution environment: catalog, compiler, optimizer,
interpreter and profiler in one object.

``Database.execute`` is the single entry point for SQL: DDL and INSERT
apply directly to the catalog; SELECT compiles to MAL, runs through the
configured optimizer pipeline, executes on the configured scheduler and
returns rows.  Every compiled plan and its dot file are kept for the
Stethoscope to pick up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.dot.writer import plan_to_dot
from repro.errors import SqlError

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.lifecycle import QueryContext
from repro.mal.ast import MalProgram
from repro.mal.dataflow import SimulatedScheduler, ThreadedScheduler
from repro.mal.interpreter import ExecutionResult, Interpreter, RunListener
from repro.mal.optimizer import Mitosis, Pipeline, pipeline_by_name
from repro.mal.printer import format_program
from repro.sqlfe.ast import CreateTable, DropTable, Insert, Literal, Select, UnaryOp
from repro.sqlfe.compiler import SqlCompiler
from repro.sqlfe.parser import parse_sql
from repro.storage.catalog import Catalog


@dataclass
class QueryOutcome:
    """What one SQL statement produced."""

    kind: str  # "rows" | "ddl" | "insert"
    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    affected: int = 0
    program: Optional[MalProgram] = None
    execution: Optional[ExecutionResult] = None


class Database:
    """An embedded database instance.

    Args:
        catalog: existing catalog (a fresh one when omitted).
        workers: dataflow worker count (also the mitosis partition count).
        pipeline_name: optimizer pipeline (``default_pipe``,
            ``sequential_pipe``, ``minimal_pipe``).
        scheduler: ``"simulated"`` (deterministic virtual time, default)
            or ``"threaded"`` (real threads).
    """

    def __init__(self, catalog: Optional[Catalog] = None, workers: int = 4,
                 pipeline_name: str = "default_pipe",
                 scheduler: str = "simulated",
                 mitosis_threshold: int = 1000) -> None:
        self.catalog = catalog or Catalog()
        self.workers = workers
        self.pipeline_name = pipeline_name
        self.scheduler = scheduler
        self.mitosis_threshold = mitosis_threshold
        self.compiler = SqlCompiler(self.catalog)
        #: last compiled (optimized) plan, for explain/dot consumers
        self.last_program: Optional[MalProgram] = None

    # ------------------------------------------------------------------

    def set_pipeline(self, name: str) -> None:
        """Switch the optimizer pipeline (validated immediately)."""
        pipeline_by_name(name)  # raises on unknown names
        self.pipeline_name = name

    def _pipeline(self, name: Optional[str] = None,
                  workers: Optional[int] = None) -> Pipeline:
        name = name or self.pipeline_name
        workers = workers or self.workers
        if name == "default_pipe":
            pipeline = pipeline_by_name(
                "default_pipe", nparts=workers,
                mitosis_threshold=self.mitosis_threshold,
            )
            for opt_pass in pipeline.passes:
                if isinstance(opt_pass, Mitosis):
                    opt_pass.catalog = self.catalog
            return pipeline
        return pipeline_by_name(name)

    # ------------------------------------------------------------------

    def compile(self, sql: str, pipeline_name: Optional[str] = None,
                workers: Optional[int] = None) -> MalProgram:
        """Compile a SELECT to its optimized MAL plan.

        ``pipeline_name``/``workers`` override the instance defaults for
        this one compilation — how the server applies per-session
        settings without mutating the shared database.
        """
        program = self.compiler.compile_text(sql)
        program = self._pipeline(pipeline_name, workers).apply(program)
        self.last_program = program
        return program

    def explain(self, sql: str, pipeline_name: Optional[str] = None,
                workers: Optional[int] = None) -> str:
        """The optimized MAL plan as text (``EXPLAIN``)."""
        return format_program(self.compile(sql, pipeline_name, workers))

    def dot(self, sql: str, pipeline_name: Optional[str] = None,
            workers: Optional[int] = None) -> str:
        """The optimized plan's dot file."""
        return plan_to_dot(self.compile(sql, pipeline_name, workers))

    def execute(self, sql: str,
                listener: Optional[RunListener] = None,
                context: Optional["QueryContext"] = None,
                pipeline_name: Optional[str] = None,
                workers: Optional[int] = None,
                scheduler: Optional[str] = None) -> QueryOutcome:
        """Execute one SQL statement.

        ``listener`` (usually a :class:`~repro.profiler.Profiler`)
        receives the instruction run records of SELECT execution.
        ``context`` is an optional
        :class:`~repro.server.lifecycle.QueryContext` checked at every
        instruction boundary (cancellation, deadline, RSS budget).
        ``pipeline_name``/``workers``/``scheduler`` are per-call
        overrides of the instance defaults; the server uses them to
        apply per-session settings without mutating shared state.

        MonetDB's statement modifiers are supported: ``EXPLAIN SELECT
        ...`` returns the optimized MAL plan as one text column instead
        of executing, and ``TRACE SELECT ...`` executes the query and
        returns its profiler trace as rows.
        """
        if context is not None:
            context.check()
        stripped = sql.lstrip()
        head = stripped[:8].lower()
        if head.startswith("explain "):
            plan_text = self.explain(stripped[len("explain "):],
                                     pipeline_name, workers)
            outcome = QueryOutcome(kind="rows", columns=["mal"],
                                   rows=[(line,) for line in
                                         plan_text.splitlines()])
            outcome.program = self.last_program
            return outcome
        if head.startswith("trace "):
            return self._execute_traced(stripped[len("trace "):], context,
                                        pipeline_name, workers, scheduler)
        statement = parse_sql(sql)
        if isinstance(statement, CreateTable):
            self.catalog.create_table_from_sql_types(
                statement.table, statement.columns
            )
            return QueryOutcome(kind="ddl")
        if isinstance(statement, DropTable):
            self.catalog.schema().drop_table(statement.table)
            return QueryOutcome(kind="ddl")
        if isinstance(statement, Insert):
            return self._execute_insert(statement)
        if isinstance(statement, Select):
            program = self.compiler.compile(statement)
            program = self._pipeline(pipeline_name, workers).apply(program)
            self.last_program = program
            execution = self.run_program(program, listener, context,
                                         workers, scheduler)
            result_set = execution.first
            return QueryOutcome(
                kind="rows",
                columns=list(result_set.names) if result_set else [],
                rows=execution.rows(),
                program=program,
                execution=execution,
            )
        raise SqlError(f"unsupported statement {type(statement).__name__}")

    def run_program(self, program: MalProgram,
                    listener: Optional[RunListener] = None,
                    context: Optional["QueryContext"] = None,
                    workers: Optional[int] = None,
                    scheduler: Optional[str] = None) -> ExecutionResult:
        """Execute an already-compiled plan on the configured scheduler."""
        workers = workers or self.workers
        scheduler = scheduler or self.scheduler
        if scheduler == "threaded":
            return ThreadedScheduler(
                self.catalog, workers=workers, listener=listener,
                realtime_scale=1e-4,
            ).run(program, context)
        if program.dataflow_enabled:
            return SimulatedScheduler(
                self.catalog, workers=workers, listener=listener
            ).run(program, context)
        return Interpreter(self.catalog, listener=listener).run(program,
                                                                context)

    def _execute_traced(self, sql: str,
                        context: Optional["QueryContext"] = None,
                        pipeline_name: Optional[str] = None,
                        workers: Optional[int] = None,
                        scheduler: Optional[str] = None) -> QueryOutcome:
        """``TRACE SELECT ...``: run the query, return its trace rows."""
        from repro.profiler import Profiler

        profiler = Profiler()
        inner = self.execute(sql, listener=profiler, context=context,
                             pipeline_name=pipeline_name, workers=workers,
                             scheduler=scheduler)
        rows = [
            (e.event, e.clock_usec, e.status, e.pc, e.thread, e.usec,
             e.rss_bytes, e.stmt)
            for e in profiler.events
        ]
        outcome = QueryOutcome(
            kind="rows",
            columns=["event", "clock", "status", "pc", "thread", "usec",
                     "rss", "stmt"],
            rows=rows,
        )
        outcome.program = inner.program
        outcome.execution = inner.execution
        return outcome

    def _execute_insert(self, statement: Insert) -> QueryOutcome:
        table = self.catalog.table(statement.table)
        inserted = 0
        for row_exprs in statement.rows:
            row = []
            for expr in row_exprs:
                if isinstance(expr, Literal):
                    row.append(expr.value)
                elif isinstance(expr, UnaryOp) and expr.op == "-" and \
                        isinstance(expr.operand, Literal):
                    row.append(-expr.operand.value)
                else:
                    raise SqlError("INSERT supports literal values only")
            table.insert(row)
            inserted += 1
        return QueryOutcome(kind="insert", affected=inserted)
