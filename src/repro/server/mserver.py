"""The Mserver TCP server: a background process listening for clients.

Each accepted client gets its own handler thread and its own session
state (optimizer pipeline choice, profiler streaming target and filter).
When a profiler target is set, every subsequent SELECT first ships its
plan's dot file over the UDP stream, then streams the execution trace
events, then an end marker — exactly the online-mode contract the
Stethoscope expects (paper §4.2).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, Optional

from repro.errors import ReproError, ServerError
from repro.faults.plan import ACTIVE
from repro.metrics import snapshot as metrics_snapshot
from repro.metrics.families import (
    SERVER_CONNECTIONS,
    SERVER_CONNECTIONS_ACTIVE,
    SERVER_QUERY_USEC,
    SERVER_REQUESTS,
    SERVER_REQUEST_ERRORS,
)
from repro.profiler.events import TraceEvent
from repro.profiler.filters import EventFilter
from repro.profiler.profiler import Profiler
from repro.profiler.stream import UdpEmitter
from repro.server.database import Database
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    decode_message,
    encode_message,
    encode_rows,
)


class Mserver:
    """A TCP server around one :class:`~repro.server.database.Database`.

    Args:
        database: the execution environment to serve.
        host/port: listen address (port 0 → ephemeral; read
            :attr:`port` after :meth:`start`).
    """

    def __init__(self, database: Database, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.database = database
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._socket: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()  # serialises query execution

    # ------------------------------------------------------------------

    def start(self) -> "Mserver":
        """Bind, listen, and serve in a background thread."""
        if self._socket is not None:
            raise ServerError("server already started")
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((self.host, self._requested_port))
        self._socket.listen(16)
        self._socket.settimeout(0.2)
        self.port = self._socket.getsockname()[1]
        self._accept_thread = threading.Thread(target=self._serve,
                                               daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listen socket."""
        self._stopping.set()
        if self._socket is not None:
            self._socket.close()
            self._socket = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def __enter__(self) -> "Mserver":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        listen_socket = self._socket
        while not self._stopping.is_set():
            try:
                client, _addr = listen_socket.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle_client, args=(client,), daemon=True
            ).start()

    def _handle_client(self, client: socket.socket) -> None:
        session = _ClientSession(self)
        buffered = b""
        SERVER_CONNECTIONS.inc()
        SERVER_CONNECTIONS_ACTIVE.inc()
        try:
            client.settimeout(30.0)
            while not self._stopping.is_set():
                while b"\n" not in buffered:
                    if len(buffered) > MAX_MESSAGE_BYTES:
                        client.sendall(encode_message({
                            "ok": False,
                            "error": "request exceeds "
                                     f"{MAX_MESSAGE_BYTES} bytes without "
                                     "a newline",
                        }))
                        return
                    chunk = client.recv(65536)
                    if not chunk:
                        return
                    buffered += chunk
                line, buffered = buffered.split(b"\n", 1)
                if not line.strip():
                    continue
                op = "invalid"
                try:
                    request = decode_message(line)
                    if request.get("op") is not None:
                        op = str(request["op"])
                    response = session.handle(request)
                except ReproError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception as exc:  # surface, do not kill server
                    response = {"ok": False,
                                "error": f"internal error: {exc}"}
                SERVER_REQUESTS.labels(op=op).inc()
                if not response.get("ok"):
                    SERVER_REQUEST_ERRORS.labels(op=op).inc()
                plan = ACTIVE.plan
                if plan is not None:
                    decision = plan.decide("server.loop", detail=op)
                    if decision is not None:
                        if decision.action == "latency":
                            delay_ms = decision.value if decision.value \
                                else 25.0
                            time.sleep(min(delay_ms, 2000.0) / 1000.0)
                        elif decision.action == "reset":
                            # drop the connection without answering
                            return
                client.sendall(encode_message(response))
                if response.get("bye"):
                    return
        except OSError:
            return
        finally:
            SERVER_CONNECTIONS_ACTIVE.dec()
            session.close()
            client.close()


class _ClientSession:
    """Per-connection state and request dispatch."""

    def __init__(self, server: Mserver) -> None:
        self.server = server
        self.emitter: Optional[UdpEmitter] = None
        self.event_filter = EventFilter()

    def close(self) -> None:
        if self.emitter is not None:
            self.emitter.close()
            self.emitter = None

    # ------------------------------------------------------------------

    def handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "quit":
            return {"ok": True, "bye": True}
        if op == "stats":
            return {"ok": True, "metrics": metrics_snapshot()}
        if op == "set":
            return self._handle_set(request)
        if op == "profiler":
            return self._handle_profiler(request)
        if op == "query":
            return self._handle_query(request)
        if op == "explain":
            with self.server._lock:
                return {"ok": True,
                        "plan": self.server.database.explain(
                            request.get("sql", ""))}
        if op == "dot":
            with self.server._lock:
                return {"ok": True,
                        "dot": self.server.database.dot(
                            request.get("sql", ""))}
        raise ServerError(f"unknown op {op!r}")

    def _handle_set(self, request: Dict) -> Dict:
        if "pipeline" in request:
            self.server.database.set_pipeline(request["pipeline"])
        if "workers" in request:
            workers = int(request["workers"])
            if workers < 1:
                raise ServerError("workers must be >= 1")
            self.server.database.workers = workers
        return {"ok": True}

    def _handle_profiler(self, request: Dict) -> Dict:
        self.close()
        if request.get("off"):
            return {"ok": True}
        host = request.get("host", "127.0.0.1")
        port = int(request["port"])
        self.emitter = UdpEmitter(host=host, port=port)
        options = request.get("filter", {})
        self.event_filter = EventFilter(
            statuses=set(options["statuses"]) if "statuses" in options
            else None,
            modules=set(options["modules"]) if "modules" in options
            else None,
            min_usec=int(options.get("min_usec", 0)),
        )
        return {"ok": True}

    def _handle_query(self, request: Dict) -> Dict:
        sql = request.get("sql", "")
        database = self.server.database
        began = time.perf_counter()
        with self.server._lock:
            if self.emitter is None:
                outcome = database.execute(sql)
            else:
                profiler = Profiler(self.event_filter, keep_events=False)
                profiler.add_sink(self.emitter)
                # ship the plan's dot file before execution begins
                statement_kind = sql.lstrip()[:6].lower()
                if statement_kind.startswith("select"):
                    self.emitter.send_dot(database.dot(sql))
                outcome = database.execute(sql, listener=profiler)
                self.emitter.send_end()
        SERVER_QUERY_USEC.observe((time.perf_counter() - began) * 1e6)
        response = {"ok": True, "kind": outcome.kind,
                    "affected": outcome.affected}
        if outcome.kind == "rows":
            response["columns"] = outcome.columns
            response["rows"] = encode_rows(outcome.rows)
        return response
