"""The Mserver TCP server: a background process listening for clients.

Each accepted client gets its own handler thread and its own session
state (optimizer pipeline choice, worker count, scheduler, profiler
streaming target and filter — all per-session, applied at execute time).
When a profiler target is set, every subsequent SELECT first ships its
plan's dot file over the UDP stream, then streams the execution trace
events, then an end marker — exactly the online-mode contract the
Stethoscope expects (paper §4.2).

Query execution is supervised by the lifecycle layer
(:mod:`repro.server.lifecycle`): every query gets a server-assigned id
and a cancellation token threaded down to the schedulers, admission
control bounds concurrency with typed load-shedding instead of one
global lock, a watchdog force-cancels queries past their deadline, and
``stop()`` drains gracefully — stops accepting, lets in-flight queries
finish inside the drain budget, cancels stragglers and closes every
tracked client socket instead of abandoning handler threads.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ReproError, ServerError
from repro.faults.plan import ACTIVE
from repro.mal.optimizer import pipeline_by_name
from repro.metrics import snapshot as metrics_snapshot
from repro.metrics.families import (
    SERVER_CONNECTIONS,
    SERVER_CONNECTIONS_ACTIVE,
    SERVER_QUERY_USEC,
    SERVER_REQUESTS,
    SERVER_REQUEST_ERRORS,
)
from repro.profiler.filters import EventFilter
from repro.profiler.profiler import Profiler
from repro.profiler.stream import UdpEmitter
from repro.server.database import Database
from repro.server.lifecycle import (
    AdmissionController,
    QueryRegistry,
    StuckQueryWatchdog,
    record_drain,
)
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    decode_message,
    encode_message,
    encode_rows,
    error_payload,
)

#: Statement heads that only read — they share execution slots; anything
#: else (DDL, INSERT) admits exclusively.
_READ_HEADS = ("select", "explain", "trace")


class Mserver:
    """A TCP server around one :class:`~repro.server.database.Database`.

    Args:
        database: the execution environment to serve.
        host/port: listen address (port 0 → ephemeral; read
            :attr:`port` after :meth:`start`).
        max_concurrent: execution slots shared by concurrent SELECTs
            (writes are exclusive).
        max_queue: queries allowed to wait for a slot before admission
            sheds with :class:`~repro.errors.ServerOverloadedError`.
        queue_wait_s: longest a query may wait in the admission queue.
        default_deadline_s: server-side deadline applied to queries
            that do not carry their own ``deadline_s``.
        drain_seconds: default drain budget :meth:`stop` grants
            in-flight queries before cancelling them.
    """

    def __init__(self, database: Database, host: str = "127.0.0.1",
                 port: int = 0, max_concurrent: int = 4,
                 max_queue: int = 16, queue_wait_s: float = 5.0,
                 default_deadline_s: Optional[float] = None,
                 drain_seconds: float = 2.0,
                 watchdog_interval_s: float = 0.05) -> None:
        self.database = database
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.default_deadline_s = default_deadline_s
        self.drain_seconds = drain_seconds
        self.registry = QueryRegistry()
        self.admission = AdmissionController(
            max_concurrent=max_concurrent, max_queue=max_queue,
            queue_wait_s=queue_wait_s)
        self.watchdog = StuckQueryWatchdog(
            self.registry, interval_s=watchdog_interval_s)
        self._socket: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._clients_lock = threading.Lock()
        self._clients: Dict[socket.socket, threading.Thread] = {}

    # ------------------------------------------------------------------

    def start(self) -> "Mserver":
        """Bind, listen, and serve in a background thread."""
        if self._socket is not None:
            raise ServerError("server already started")
        self._stopping.clear()
        self.admission.end_drain()
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((self.host, self._requested_port))
        self._socket.listen(16)
        self._socket.settimeout(0.2)
        self.port = self._socket.getsockname()[1]
        self.watchdog.start()
        self._accept_thread = threading.Thread(target=self._serve,
                                               daemon=True)
        self._accept_thread.start()
        return self

    def stop(self, drain_seconds: Optional[float] = None) -> None:
        """Graceful drain shutdown.

        Stops accepting (new queries shed as ``stopping``), waits up to
        ``drain_seconds`` for in-flight queries to finish, force-cancels
        the stragglers, then closes every tracked client socket and
        joins the handler threads — nothing is left behind for a socket
        timeout to reap.
        """
        budget = self.drain_seconds if drain_seconds is None \
            else drain_seconds
        self._stopping.set()
        self.admission.begin_drain()
        if self._socket is not None:
            self._socket.close()
            self._socket = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        deadline = time.monotonic() + max(0.0, budget)
        while self.registry.active_count() and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        forced = self.registry.cancel_all(
            f"server draining (budget {budget:g}s exhausted)",
            source="drain")
        record_drain(forced=bool(forced))
        # give cancelled queries a moment to unwind and answer their
        # clients with the typed error before the sockets close
        grace = time.monotonic() + 1.0
        while self.registry.active_count() and time.monotonic() < grace:
            time.sleep(0.02)
        with self._clients_lock:
            clients = list(self._clients.items())
        for client, _thread in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        for _client, thread in clients:
            thread.join(timeout=2.0)
        self.watchdog.stop()

    def __enter__(self) -> "Mserver":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        listen_socket = self._socket
        while not self._stopping.is_set():
            try:
                client, _addr = listen_socket.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle_client, args=(client,), daemon=True
            )
            with self._clients_lock:
                self._clients[client] = thread
            thread.start()

    def _handle_client(self, client: socket.socket) -> None:
        session = _ClientSession(self)
        buffered = b""
        SERVER_CONNECTIONS.inc()
        SERVER_CONNECTIONS_ACTIVE.inc()
        try:
            client.settimeout(30.0)
            while not self._stopping.is_set():
                while b"\n" not in buffered:
                    if len(buffered) > MAX_MESSAGE_BYTES:
                        client.sendall(encode_message({
                            "ok": False,
                            "error": "request exceeds "
                                     f"{MAX_MESSAGE_BYTES} bytes without "
                                     "a newline",
                        }))
                        return
                    chunk = client.recv(65536)
                    if not chunk:
                        return
                    buffered += chunk
                line, buffered = buffered.split(b"\n", 1)
                if not line.strip():
                    continue
                op = "invalid"
                try:
                    request = decode_message(line)
                    if request.get("op") is not None:
                        op = str(request["op"])
                    response = session.handle(request)
                except ReproError as exc:
                    response = error_payload(exc)
                except Exception as exc:  # surface, do not kill server
                    response = {"ok": False,
                                "error": f"internal error: {exc}"}
                SERVER_REQUESTS.labels(op=op).inc()
                if not response.get("ok"):
                    SERVER_REQUEST_ERRORS.labels(op=op).inc()
                plan = ACTIVE.plan
                if plan is not None:
                    decision = plan.decide("server.loop", detail=op)
                    if decision is not None:
                        if decision.action == "latency":
                            delay_ms = decision.value if decision.value \
                                else 25.0
                            time.sleep(min(delay_ms, 2000.0) / 1000.0)
                        elif decision.action == "reset":
                            # drop the connection without answering
                            return
                client.sendall(encode_message(response))
                if response.get("bye"):
                    return
        except OSError:
            return
        finally:
            SERVER_CONNECTIONS_ACTIVE.dec()
            session.close()
            try:
                client.close()
            except OSError:
                pass
            with self._clients_lock:
                self._clients.pop(client, None)


class _ClientSession:
    """Per-connection state and request dispatch.

    ``pipeline_name``/``workers``/``scheduler`` are session-local
    overrides applied at execute time — ``op=set`` never mutates the
    shared :class:`~repro.server.database.Database`, so one client's
    settings cannot leak into another's queries.
    """

    def __init__(self, server: Mserver) -> None:
        self.server = server
        self.emitter: Optional[UdpEmitter] = None
        self.event_filter = EventFilter()
        self.pipeline_name: Optional[str] = None
        self.workers: Optional[int] = None
        self.scheduler: Optional[str] = None

    def close(self) -> None:
        if self.emitter is not None:
            self.emitter.close()
            self.emitter = None

    # ------------------------------------------------------------------

    def handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "quit":
            return {"ok": True, "bye": True}
        if op == "stats":
            return {"ok": True, "metrics": metrics_snapshot(),
                    "plan_cache": self.server.database.plan_cache.stats()}
        if op == "set":
            return self._handle_set(request)
        if op == "profiler":
            return self._handle_profiler(request)
        if op == "query":
            return self._handle_query(request)
        if op == "cancel":
            return self._handle_cancel(request)
        if op == "queries":
            return {"ok": True,
                    "queries": self.server.registry.list(),
                    "recent": self.server.registry.recent()}
        # explain/dot/stats never enter admission, so they stay
        # responsive while the execution slots are busy
        if op == "explain":
            return {"ok": True,
                    "plan": self.server.database.explain(
                        request.get("sql", ""),
                        self.pipeline_name, self.workers)}
        if op == "dot":
            return {"ok": True,
                    "dot": self.server.database.dot(
                        request.get("sql", ""),
                        self.pipeline_name, self.workers)}
        raise ServerError(f"unknown op {op!r}")

    def _handle_set(self, request: Dict) -> Dict:
        if "pipeline" in request:
            pipeline_by_name(request["pipeline"])  # validate eagerly
            self.pipeline_name = request["pipeline"]
        if "workers" in request:
            workers = int(request["workers"])
            if workers < 1:
                raise ServerError("workers must be >= 1")
            self.workers = workers
        if "scheduler" in request:
            scheduler = str(request["scheduler"])
            if scheduler not in ("simulated", "threaded"):
                raise ServerError(
                    f"unknown scheduler {scheduler!r}; valid: "
                    "simulated, threaded")
            self.scheduler = scheduler
        return {"ok": True}

    def _handle_profiler(self, request: Dict) -> Dict:
        self.close()
        if request.get("off"):
            return {"ok": True}
        host = request.get("host", "127.0.0.1")
        port = int(request["port"])
        self.emitter = UdpEmitter(host=host, port=port)
        options = request.get("filter", {})
        self.event_filter = EventFilter(
            statuses=set(options["statuses"]) if "statuses" in options
            else None,
            modules=set(options["modules"]) if "modules" in options
            else None,
            min_usec=int(options.get("min_usec", 0)),
        )
        return {"ok": True}

    def _handle_cancel(self, request: Dict) -> Dict:
        query_id = str(request.get("query_id", ""))
        verdict = self.server.registry.cancel(query_id, source="client")
        return {"ok": True, "query_id": query_id, **verdict}

    def _handle_query(self, request: Dict) -> Dict:
        sql = request.get("sql", "")
        server = self.server
        database = server.database
        deadline_s = request.get("deadline_s", server.default_deadline_s)
        context = server.registry.register(
            sql, deadline_s=deadline_s,
            rss_budget_bytes=request.get("max_rss_bytes"))
        head = sql.lstrip()[:8].lower()
        exclusive = not head.startswith(_READ_HEADS)
        state = "failed"
        began = time.perf_counter()
        try:
            with server.admission.slot(context, exclusive=exclusive):
                context.mark_running()
                if self.emitter is None:
                    outcome = database.execute(
                        sql, context=context,
                        pipeline_name=self.pipeline_name,
                        workers=self.workers, scheduler=self.scheduler)
                else:
                    profiler = Profiler(self.event_filter,
                                        keep_events=False)
                    profiler.add_sink(self.emitter)
                    # ship the plan's dot file before execution begins
                    if head.startswith("select"):
                        self.emitter.send_dot(database.dot(
                            sql, self.pipeline_name, self.workers))
                    outcome = database.execute(
                        sql, listener=profiler, context=context,
                        pipeline_name=self.pipeline_name,
                        workers=self.workers, scheduler=self.scheduler)
                    self.emitter.send_end()
            state = "done"
        except ReproError as exc:
            state = "cancelled" if context.cancelled else "failed"
            if not getattr(exc, "query_id", ""):
                exc.query_id = context.query_id
            raise
        finally:
            server.registry.finish(context, state)
            SERVER_QUERY_USEC.observe((time.perf_counter() - began) * 1e6)
        response = {"ok": True, "kind": outcome.kind,
                    "affected": outcome.affected,
                    "query_id": context.query_id}
        if outcome.kind == "rows":
            response["columns"] = outcome.columns
            response["rows"] = encode_rows(outcome.rows)
        return response
