"""The Mserver TCP server: an asyncio front-end over executor-run queries.

The front-end is a single event loop (running in a background thread)
that accepts connections, frames line-delimited JSON requests, and
dispatches them.  Each connection gets a reader task that feeds a
bounded queue and a processor task that answers requests **in order**
— so clients may pipeline requests without waiting for responses, and
ten thousand idle viewers cost ten thousand coroutines, not threads.

Blocking work (SQL execution, plan explain/dot) runs on a thread-pool
executor so the interpreter, schedulers and admission control are
untouched: every query still gets a server-assigned id and a
cancellation token threaded down to the schedulers, admission control
bounds concurrency with typed load-shedding, a watchdog force-cancels
queries past their deadline, and ``stop()`` drains gracefully.

Session state (optimizer pipeline choice, worker count, scheduler,
profiler streaming target and filter) is per-connection, applied at
execute time.  When a profiler target is set, every subsequent SELECT
first ships its plan's dot file over the UDP stream, then streams the
execution trace events, then an end marker — exactly the online-mode
contract the Stethoscope expects (paper §4.2).

New in the asyncio front-end: the **trace broadcast hub**
(:mod:`repro.profiler.broadcast`).  Every profiled line is also
published once into the hub, and any number of connections can
``subscribe`` to follow it live with bounded drop-oldest buffers and
resumable sequence numbers — the full wire contract is specified in
``docs/streaming.md``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.errors import ReadOnlyReplicaError, ReproError, ServerError
from repro.faults.plan import ACTIVE
from repro.mal.optimizer import pipeline_by_name
from repro.metrics import snapshot as metrics_snapshot
from repro.metrics.families import (
    SERVER_CONNECTIONS,
    SERVER_CONNECTIONS_ACTIVE,
    SERVER_QUERY_USEC,
    SERVER_REQUESTS,
    SERVER_REQUEST_ERRORS,
)
from repro.profiler.broadcast import HubPipe, Subscription, TraceBroadcastHub
from repro.profiler.filters import EventFilter
from repro.profiler.profiler import Profiler
from repro.profiler.stream import UdpEmitter
from repro.server.database import Database
from repro.server.lifecycle import (
    AdmissionController,
    QueryRegistry,
    StuckQueryWatchdog,
    record_drain,
)
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    decode_message,
    encode_message,
    encode_rows,
    error_payload,
)

#: Statement heads that only read — they share execution slots; anything
#: else (DDL, INSERT) admits exclusively.
_READ_HEADS = ("select", "explain", "trace")

#: Seconds an idle connection may sit between requests before the
#: server hangs up.  Connections with an active hub subscription are
#: exempt — a viewer legitimately reads for minutes without writing.
_IDLE_TIMEOUT_S = 30.0

#: Pipelined requests buffered per connection before the reader stops
#: pulling from the socket (TCP backpressure does the rest).
_PIPELINE_DEPTH = 64


class Mserver:
    """A TCP server around one :class:`~repro.server.database.Database`.

    Args:
        database: the execution environment to serve.
        host/port: listen address (port 0 → ephemeral; read
            :attr:`port` after :meth:`start`).
        max_concurrent: execution slots shared by concurrent SELECTs
            (writes are exclusive).
        max_queue: queries allowed to wait for a slot before admission
            sheds with :class:`~repro.errors.ServerOverloadedError`.
        queue_wait_s: longest a query may wait in the admission queue.
        default_deadline_s: server-side deadline applied to queries
            that do not carry their own ``deadline_s``.
        drain_seconds: default drain budget :meth:`stop` grants
            in-flight queries before cancelling them.
        subscriber_buffer: default per-subscriber hub buffer (entries);
            a laggard past it loses oldest entries, never slows the
            query.
        max_subscribers: hub subscriptions beyond this are refused
            with a typed overload error.
        trace_history: hub entries retained for ``subscribe
            from=<seq>`` resume.
    """

    def __init__(self, database: Database, host: str = "127.0.0.1",
                 port: int = 0, max_concurrent: int = 4,
                 max_queue: int = 16, queue_wait_s: float = 5.0,
                 default_deadline_s: Optional[float] = None,
                 drain_seconds: float = 2.0,
                 watchdog_interval_s: float = 0.05,
                 subscriber_buffer: int = 512,
                 max_subscribers: int = 1024,
                 trace_history: int = 8192) -> None:
        self.database = database
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.default_deadline_s = default_deadline_s
        self.drain_seconds = drain_seconds
        self.registry = QueryRegistry()
        self.admission = AdmissionController(
            max_concurrent=max_concurrent, max_queue=max_queue,
            queue_wait_s=queue_wait_s)
        self.watchdog = StuckQueryWatchdog(
            self.registry, interval_s=watchdog_interval_s)
        self.hub = TraceBroadcastHub(
            history=trace_history, default_buffer=subscriber_buffer,
            max_subscribers=max_subscribers)
        # the executor must be wide enough that concurrent queries reach
        # the admission controller (which is what bounds execution) —
        # otherwise overload sheds would never trigger under load tests
        self._executor_workers = max(32, max_concurrent + max_queue + 8)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._aserver: Optional[asyncio.AbstractServer] = None
        self._stopping = threading.Event()
        self._conns_lock = threading.Lock()
        self._conns: Dict[int, "_Connection"] = {}
        #: the node's :class:`~repro.replication.ReplicationManager`,
        #: attached after :meth:`start` (it advertises the bound port);
        #: None on standalone servers.
        self.replication: Optional[Any] = None

    # ------------------------------------------------------------------

    def start(self) -> "Mserver":
        """Bind, listen, and serve on a background event loop."""
        if self._loop is not None:
            raise ServerError("server already started")
        self._stopping.clear()
        self.admission.end_drain()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="mserver-exec")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list = []

        def run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._aserver = self._loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection, host=self.host,
                        port=self._requested_port,
                        limit=MAX_MESSAGE_BYTES,
                        reuse_address=True))
                sockets = self._aserver.sockets or []
                self.port = sockets[0].getsockname()[1]
            except Exception as exc:  # bind failure surfaces in start()
                failure.append(exc)
                self._loop.close()
                started.set()
                return
            started.set()
            try:
                self._loop.run_forever()
            finally:
                # drain pending callbacks (transport close notifications
                # etc.), then release the loop's self-pipe fds so the
                # test leak guard sees a clean socket table
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens())
                self._loop.close()

        self._loop_thread = threading.Thread(
            target=run_loop, name="mserver-loop", daemon=True)
        self._loop_thread.start()
        started.wait(timeout=5.0)
        if failure:
            self._loop_thread.join(timeout=2.0)
            self._loop = None
            self._loop_thread = None
            self._executor.shutdown(wait=False)
            self._executor = None
            raise ServerError(f"could not start server: {failure[0]}")
        self.watchdog.start()
        return self

    def stop(self, drain_seconds: Optional[float] = None) -> None:
        """Graceful drain shutdown.

        Stops accepting (new queries shed as ``stopping``), waits up to
        ``drain_seconds`` for in-flight queries to finish, force-cancels
        the stragglers, then closes every tracked connection and stops
        the event loop — nothing is left behind for a socket timeout to
        reap.
        """
        if self._loop is None:
            return
        budget = self.drain_seconds if drain_seconds is None \
            else drain_seconds
        self._stopping.set()
        if self.replication is not None:
            self.replication.stop()
        self.admission.begin_drain()
        loop = self._loop

        async def close_listener() -> None:
            if self._aserver is not None:
                self._aserver.close()
                await self._aserver.wait_closed()
                self._aserver = None

        _run_on_loop(loop, close_listener(), timeout=2.0)
        deadline = time.monotonic() + max(0.0, budget)
        while self.registry.active_count() and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        forced = self.registry.cancel_all(
            f"server draining (budget {budget:g}s exhausted)",
            source="drain")
        record_drain(forced=bool(forced))
        # give cancelled queries a moment to unwind and answer their
        # clients with the typed error before the connections close
        grace = time.monotonic() + 1.0
        while self.registry.active_count() and time.monotonic() < grace:
            time.sleep(0.02)
        self.hub.close_all()

        async def close_connections() -> None:
            with self._conns_lock:
                conns = list(self._conns.values())
            for conn in conns:
                conn.kill()
            waits = [c.done for c in conns if c.done is not None]
            if waits:
                await asyncio.wait(waits, timeout=2.0)

        _run_on_loop(loop, close_connections(), timeout=4.0)
        loop.call_soon_threadsafe(loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None
        self._loop = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.watchdog.stop()
        self.database.close()

    def __enter__(self) -> "Mserver":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(self, reader, writer)
        with self._conns_lock:
            self._conns[id(conn)] = conn
        try:
            await conn.run()
        finally:
            with self._conns_lock:
                self._conns.pop(id(conn), None)


def _run_on_loop(loop: asyncio.AbstractEventLoop, coro,
                 timeout: float) -> None:
    """Run a coroutine on the server loop from the caller's thread."""
    future = asyncio.run_coroutine_threadsafe(coro, loop)
    try:
        future.result(timeout=timeout)
    except Exception:
        future.cancel()


class _Connection:
    """One client connection: reader task + in-order processor task.

    The reader frames lines into a bounded queue (pipelining up to
    ``_PIPELINE_DEPTH`` requests); the processor answers them one at a
    time so responses arrive in request order.  A hub subscription adds
    a third task streaming broadcast entries; all writes go through one
    lock so entry lines and responses never interleave mid-line.
    """

    def __init__(self, server: Mserver, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.session = _ClientSession(server)
        self.requests: asyncio.Queue = asyncio.Queue(
            maxsize=_PIPELINE_DEPTH)
        self.write_lock = asyncio.Lock()
        self.subscription: Optional[Subscription] = None
        self._stream_task: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self.done: Optional[asyncio.Future] = None
        self._closing = False

    # -- lifecycle ------------------------------------------------------

    async def run(self) -> None:
        loop = asyncio.get_event_loop()
        self.done = loop.create_future()
        SERVER_CONNECTIONS.inc()
        SERVER_CONNECTIONS_ACTIVE.inc()
        reader_task = loop.create_task(self._read_requests())
        try:
            await self._process_requests()
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):
                pass
            await self._teardown()
            SERVER_CONNECTIONS_ACTIVE.dec()
            if not self.done.done():
                self.done.set_result(None)

    async def _teardown(self) -> None:
        self._closing = True
        if self.subscription is not None:
            self.subscription.close()
            self.subscription = None
        if self._stream_task is not None:
            self._wake.set()
            self._stream_task.cancel()
            try:
                await self._stream_task
            except (asyncio.CancelledError, Exception):
                pass
            self._stream_task = None
        self.session.close()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except Exception:
            pass

    def kill(self) -> None:
        """Force-close from the server loop thread (shutdown path)."""
        self._closing = True
        try:
            self.writer.close()
        except Exception:
            pass

    # -- reader ---------------------------------------------------------

    async def _read_requests(self) -> None:
        """Frame lines off the socket into the pipeline queue."""
        while not self._closing:
            try:
                if self.subscription is None:
                    line = await asyncio.wait_for(
                        self.reader.readline(), timeout=_IDLE_TIMEOUT_S)
                else:
                    # a subscriber legitimately idles while reading the
                    # stream — no inbound timeout while subscribed
                    line = await self.reader.readline()
            except asyncio.TimeoutError:
                # re-check before hanging up: a pipelined `subscribe`
                # may have activated after this timed wait was armed —
                # the exemption must hold even though the reader raced
                # ahead of the processor
                if self.subscription is not None:
                    continue
                await self.requests.put(_HANGUP)
                return
            except ValueError:
                # StreamReader limit overrun: request line too long
                await self.requests.put(_OVERSIZED)
                return
            except (ConnectionError, OSError):
                await self.requests.put(_HANGUP)
                return
            if not line:
                await self.requests.put(_HANGUP)
                return
            if not line.strip():
                continue
            await self.requests.put(line)

    # -- processor ------------------------------------------------------

    async def _process_requests(self) -> None:
        while not self._closing:
            line = await self.requests.get()
            if line is _HANGUP:
                return
            if line is _OVERSIZED:
                await self._send({
                    "ok": False,
                    "error": f"request exceeds {MAX_MESSAGE_BYTES} "
                             "bytes without a newline",
                })
                return
            op = "invalid"
            try:
                request = decode_message(line)
                if request.get("op") is not None:
                    op = str(request["op"])
                response = await self._dispatch(op, request)
            except ReproError as exc:
                response = error_payload(exc)
            except Exception as exc:  # surface, do not kill server
                response = {"ok": False,
                            "error": f"internal error: {exc}"}
            SERVER_REQUESTS.labels(op=op).inc()
            if not response.get("ok"):
                SERVER_REQUEST_ERRORS.labels(op=op).inc()
            plan = ACTIVE.plan
            if plan is not None:
                decision = plan.decide("server.loop", detail=op)
                if decision is not None:
                    if decision.action == "latency":
                        delay_ms = decision.value if decision.value \
                            else 25.0
                        await asyncio.sleep(
                            min(delay_ms, 2000.0) / 1000.0)
                    elif decision.action == "reset":
                        # drop the connection without answering
                        return
            if not await self._send(response):
                return
            if response.get("bye"):
                return

    async def _dispatch(self, op: str, request: Dict) -> Dict:
        """Route one request: async verbs here, blocking ones offloaded."""
        if op == "subscribe":
            return self._handle_subscribe(request)
        if op == "unsubscribe":
            return await self._handle_unsubscribe()
        if op in ("query", "explain", "dot",
                  "repl.status", "repl.sync", "repl.promote"):
            # repl verbs offload too: sync reads WAL bytes from disk and
            # promote re-runs recovery — neither belongs on the loop
            loop = asyncio.get_event_loop()
            return await loop.run_in_executor(
                self.server._executor,
                lambda: self.session.handle(request))
        return self.session.handle(request)

    async def _send(self, message: Dict[str, Any]) -> bool:
        """Write one message line; False when the peer is gone."""
        async with self.write_lock:
            try:
                self.writer.write(encode_message(message))
                await self.writer.drain()
                return True
            except (ConnectionError, OSError):
                return False

    # -- the subscribe verb ---------------------------------------------

    def _handle_subscribe(self, request: Dict) -> Dict:
        if self.subscription is not None:
            raise ServerError(
                "already subscribed on this connection; unsubscribe "
                "first")
        server = self.server
        query_id = str(request.get("query_id", "") or "")
        from_seq = request.get("from_seq")
        if from_seq is not None:
            from_seq = int(from_seq)
        buffer_size = request.get("buffer")
        if buffer_size is not None:
            buffer_size = int(buffer_size)
        if query_id and from_seq is None:
            # subscribing to a named query: it must be live, or at
            # least still retained in the hub's resume ring
            live = server.registry.get(query_id) is not None
            if not live and not server.hub.has_query(query_id):
                raise ServerError(
                    f"unknown query {query_id!r}: not running and no "
                    "trace retained in the broadcast history")
            if not live:
                # finished but retained — replay its trace from the ring
                from_seq = 0
        loop = asyncio.get_event_loop()
        wake_event = self._wake

        def wake() -> None:
            loop.call_soon_threadsafe(wake_event.set)

        self.subscription = server.hub.subscribe(
            from_seq=from_seq, buffer_size=buffer_size,
            query_id=query_id, wake=wake)
        self._wake.set()  # flush any backfill immediately
        self._stream_task = loop.create_task(self._stream_entries())
        return {"ok": True,
                "subscriber_id": self.subscription.subscriber_id,
                "next_seq": server.hub.next_seq(),
                "missed": self.subscription.missed,
                "buffer": self.subscription.buffer_size}

    async def _handle_unsubscribe(self) -> Dict:
        if self.subscription is None:
            raise ServerError("not subscribed")
        sub = self.subscription
        self.subscription = None
        sub.close()
        task = self._stream_task
        self._stream_task = None
        if task is not None:
            self._wake.set()
            task.cancel()
            # await it so an in-flight batch is accounted (the task's
            # cancellation handler uncredits entries popped but never
            # written) before the summary counters are read
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        summary = sub.describe()
        return {"ok": True, "unsubscribed": True,
                "delivered": summary["delivered"],
                "dropped": summary["dropped"],
                "missed": summary["missed"]}

    async def _stream_entries(self) -> None:
        """Pump hub entries to the peer as they arrive.

        Entry lines carry ``seq`` and never carry ``ok`` — a client
        reading the connection tells them apart from request responses
        by that key (``docs/streaming.md`` §5).
        """
        sub = None
        batch: list = []
        sent = 0
        try:
            while not self._closing:
                sub = self.subscription
                if sub is None:
                    return
                batch = sub.pop_batch(max_entries=256)
                sent = 0
                if not batch:
                    self._wake.clear()
                    if self.subscription is None or \
                            self.subscription.closed:
                        return
                    await self._wake.wait()
                    continue
                for entry in batch:
                    if not await self._send(entry.payload()):
                        return
                    sent += 1
                batch = []
        except asyncio.CancelledError:
            # cancelled mid-batch (unsubscribe/teardown): entries popped
            # but never written must not count as delivered in the
            # summary; the one in flight is conservatively uncounted too
            if sub is not None:
                sub.uncredit(len(batch) - sent)


#: Reader→processor sentinels (peer hung up / oversized request line).
_HANGUP = object()
_OVERSIZED = object()


class _ClientSession:
    """Per-connection state and request dispatch (executor side).

    ``pipeline_name``/``workers``/``scheduler`` are session-local
    overrides applied at execute time — ``op=set`` never mutates the
    shared :class:`~repro.server.database.Database`, so one client's
    settings cannot leak into another's queries.
    """

    def __init__(self, server: Mserver) -> None:
        self.server = server
        self.emitter: Optional[UdpEmitter] = None
        self.event_filter = EventFilter()
        self.pipeline_name: Optional[str] = None
        self.workers: Optional[int] = None
        self.scheduler: Optional[str] = None

    def close(self) -> None:
        if self.emitter is not None:
            self.emitter.close()
            self.emitter = None

    # ------------------------------------------------------------------

    def handle(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "quit":
            return {"ok": True, "bye": True}
        if op == "stats":
            database = self.server.database
            return {"ok": True, "metrics": metrics_snapshot(),
                    "plan_cache": database.plan_cache.stats(),
                    "plan_entries": database.plan_cache.entries(),
                    "stats_store": database.stats_store.summary(),
                    "stats_top": database.stats_store.top_entries(),
                    "broadcast": self.server.hub.stats()}
        if op == "set":
            return self._handle_set(request)
        if op == "profiler":
            return self._handle_profiler(request)
        if op == "query":
            return self._handle_query(request)
        if op == "cancel":
            return self._handle_cancel(request)
        if op == "queries":
            return {"ok": True,
                    "queries": self.server.registry.list(),
                    "recent": self.server.registry.recent()}
        if op in ("repl.status", "repl.sync", "repl.promote"):
            return self._handle_repl(op, request)
        # explain/dot/stats never enter admission, so they stay
        # responsive while the execution slots are busy
        if op == "explain":
            return {"ok": True,
                    "plan": self.server.database.explain(
                        request.get("sql", ""),
                        self.pipeline_name, self.workers)}
        if op == "dot":
            return {"ok": True,
                    "dot": self.server.database.dot(
                        request.get("sql", ""),
                        self.pipeline_name, self.workers)}
        raise ServerError(f"unknown op {op!r}")

    def _handle_set(self, request: Dict) -> Dict:
        if "pipeline" in request:
            pipeline_by_name(request["pipeline"])  # validate eagerly
            self.pipeline_name = request["pipeline"]
        if "workers" in request:
            workers = int(request["workers"])
            if workers < 1:
                raise ServerError("workers must be >= 1")
            self.workers = workers
        if "scheduler" in request:
            scheduler = str(request["scheduler"])
            if scheduler not in ("simulated", "threaded"):
                raise ServerError(
                    f"unknown scheduler {scheduler!r}; valid: "
                    "simulated, threaded")
            self.scheduler = scheduler
        return {"ok": True}

    def _handle_profiler(self, request: Dict) -> Dict:
        self.close()
        if request.get("off"):
            return {"ok": True}
        host = request.get("host", "127.0.0.1")
        port = int(request["port"])
        self.emitter = UdpEmitter(host=host, port=port)
        options = request.get("filter", {})
        self.event_filter = EventFilter(
            statuses=set(options["statuses"]) if "statuses" in options
            else None,
            modules=set(options["modules"]) if "modules" in options
            else None,
            min_usec=int(options.get("min_usec", 0)),
        )
        return {"ok": True}

    def _handle_repl(self, op: str, request: Dict) -> Dict:
        manager = self.server.replication
        if manager is None:
            if op == "repl.status":
                # standalone servers still answer status probes, so
                # tooling can tell "not replicated" from "unreachable"
                durability = self.server.database.durability
                return {
                    "ok": True, "role": "standalone", "addr": "",
                    "primary": "", "peers": [],
                    "epoch": durability.epoch if durability else 0,
                    "durable_lsn":
                        durability.wal.durable_lsn if durability else 0,
                    "checkpoint_lsn":
                        durability.checkpoint_lsn if durability else 0,
                }
            raise ServerError(
                f"{op} requires replication; start the server with "
                f"--replicate-from or --peers")
        if op == "repl.status":
            return manager.status()
        if op == "repl.sync":
            return manager.handle_sync(request)
        return manager.handle_promote(request)

    def _handle_cancel(self, request: Dict) -> Dict:
        query_id = str(request.get("query_id", ""))
        verdict = self.server.registry.cancel(query_id, source="client")
        return {"ok": True, "query_id": query_id, **verdict}

    def _handle_query(self, request: Dict) -> Dict:
        sql = request.get("sql", "")
        server = self.server
        database = server.database
        deadline_s = request.get("deadline_s", server.default_deadline_s)
        context = server.registry.register(
            sql, deadline_s=deadline_s,
            rss_budget_bytes=request.get("max_rss_bytes"))
        head = sql.lstrip()[:8].lower()
        exclusive = not head.startswith(_READ_HEADS)
        replication = server.replication
        if exclusive and replication is not None and \
                not replication.accepts_writes():
            server.registry.finish(context, "failed")
            raise ReadOnlyReplicaError(
                "this node is a read-only replica; send writes to the "
                "primary", primary=replication.primary_hint())
        state = "failed"
        began = time.perf_counter()
        try:
            with server.admission.slot(context, exclusive=exclusive):
                context.mark_running()
                traced = self.emitter is not None or server.hub.active()
                if not traced:
                    outcome = database.execute(
                        sql, context=context,
                        pipeline_name=self.pipeline_name,
                        workers=self.workers, scheduler=self.scheduler)
                else:
                    profiler = Profiler(self.event_filter,
                                        keep_events=False)
                    sinks = []
                    if self.emitter is not None:
                        sinks.append(self.emitter)
                    if server.hub.active():
                        sinks.append(
                            HubPipe(server.hub, context.query_id))
                    for sink in sinks:
                        profiler.add_sink(sink)
                    # ship the plan's dot file before execution begins
                    if head.startswith("select"):
                        dot_text = database.dot(
                            sql, self.pipeline_name, self.workers)
                        for sink in sinks:
                            sink.send_dot(dot_text)
                    outcome = database.execute(
                        sql, listener=profiler, context=context,
                        pipeline_name=self.pipeline_name,
                        workers=self.workers, scheduler=self.scheduler)
                    for sink in sinks:
                        sink.send_end()
            state = "done"
        except ReproError as exc:
            state = "cancelled" if context.cancelled else "failed"
            if not getattr(exc, "query_id", ""):
                exc.query_id = context.query_id
            raise
        finally:
            server.registry.finish(context, state)
            SERVER_QUERY_USEC.observe((time.perf_counter() - began) * 1e6)
        response = {"ok": True, "kind": outcome.kind,
                    "affected": outcome.affected,
                    "query_id": context.query_id}
        if outcome.kind == "rows":
            response["columns"] = outcome.columns
            response["rows"] = encode_rows(outcome.rows)
        return response
