"""MClient: the TCP client for Mserver (what Stethoscope connects with)."""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServerError
from repro.server.protocol import decode_message, decode_rows, encode_message


class MClient:
    """A blocking client over the JSON line protocol.

    Usage::

        with MClient(port=server.port) as client:
            rows = client.query("select count(*) from lineitem").rows
    """

    class Result:
        """One statement's outcome as seen by the client."""

        def __init__(self, payload: Dict[str, Any]) -> None:
            self.kind: str = payload.get("kind", "rows")
            self.columns: List[str] = payload.get("columns", [])
            self.rows: List[Tuple[Any, ...]] = decode_rows(
                payload.get("rows", [])
            )
            self.affected: int = payload.get("affected", 0)

    def __init__(self, host: str = "127.0.0.1", port: int = 50000,
                 timeout: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""

    # ------------------------------------------------------------------

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._socket.sendall(encode_message(request))
        while b"\n" not in self._buffer:
            chunk = self._socket.recv(65536)
            if not chunk:
                raise ServerError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        response = decode_message(line)
        if not response.get("ok"):
            raise ServerError(response.get("error", "request failed"))
        return response

    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def stats(self) -> Dict[str, Any]:
        """The server's engine-metrics snapshot (the ``stats`` verb).

        Returns the plain dict form of every metric family in the
        server's ``repro.metrics`` registry; render it locally with
        :func:`repro.metrics.render_snapshot`, or see
        ``docs/metrics_reference.md`` for the families."""
        return self._call({"op": "stats"})["metrics"]

    def query(self, sql: str) -> "MClient.Result":
        """Execute one SQL statement."""
        return MClient.Result(self._call({"op": "query", "sql": sql}))

    def explain(self, sql: str) -> str:
        """The optimized MAL plan text of a SELECT."""
        return self._call({"op": "explain", "sql": sql})["plan"]

    def dot(self, sql: str) -> str:
        """The optimized plan's dot file of a SELECT."""
        return self._call({"op": "dot", "sql": sql})["dot"]

    def set_pipeline(self, name: str) -> None:
        """Choose the optimizer pipeline for subsequent queries."""
        self._call({"op": "set", "pipeline": name})

    def set_workers(self, workers: int) -> None:
        """Choose the dataflow worker count."""
        self._call({"op": "set", "workers": workers})

    def set_profiler(self, port: int, host: str = "127.0.0.1",
                     filter_options: Optional[Dict[str, Any]] = None) -> None:
        """Stream profiler events (and plan dot files) to a UDP endpoint.

        ``filter_options`` supports ``statuses``, ``modules`` and
        ``min_usec`` — the server-side filter options the Stethoscope
        sets (paper §3: "The profiler accepts filter options set through
        Stethoscope")."""
        request: Dict[str, Any] = {"op": "profiler", "host": host,
                                   "port": port}
        if filter_options:
            request["filter"] = filter_options
        self._call(request)

    def profiler_off(self) -> None:
        """Stop streaming profiler events."""
        self._call({"op": "profiler", "off": True})

    def close(self) -> None:
        try:
            self._call({"op": "quit"})
        except (ServerError, OSError):
            pass
        self._socket.close()

    def __enter__(self) -> "MClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
