"""MClient: the TCP client for Mserver (what Stethoscope connects with).

Hardened against the failures the chaos harness injects: connection
setup raises a typed :class:`~repro.errors.ConnectionFailedError`,
requests that die mid-flight are retried with exponential backoff and
jitter (reconnecting and replaying session state first), and every
request observes a per-request deadline that converts into a
:class:`~repro.errors.RequestTimeoutError` instead of blocking forever.

Server responses carrying an error ``code`` are re-raised as the typed
lifecycle error they encode (``QueryCancelledError``,
``QueryDeadlineError``, ``QueryBudgetError``, ``ServerOverloadedError``)
with the server-assigned ``query_id`` attached.  Overload sheds get
their own retry classification: the query never ran, so it is safe to
re-send after backoff — without reconnecting — even for writes.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    ConnectionFailedError,
    ConnectionLostError,
    ReproError,
    RequestTimeoutError,
    ServerOverloadedError,
)
from repro.metrics.families import CLIENT_DEADLINE_EXCEEDED, CLIENT_RETRIES
from repro.server.protocol import (
    decode_message,
    decode_rows,
    encode_message,
    error_from_payload,
)


class MClient:
    """A blocking client over the JSON line protocol.

    Usage::

        with MClient(port=server.port) as client:
            rows = client.query("select count(*) from lineitem").rows

    Args:
        host/port: where the Mserver listens.
        timeout: socket-level timeout for connect and each recv.
        retries: how many times a failed *retryable* request is re-sent
            after reconnecting (0 disables retry).
        backoff_base_s/backoff_max_s: exponential backoff bounds; each
            delay is jittered to half-to-full of the nominal value.
        deadline_s: default per-request wall-clock budget (covers all
            retries); ``None`` means no deadline beyond socket timeouts.
        retry_seed: seeds the jitter PRNG so retry timing is
            reproducible under test.
        handshake: ping the server during construction; on failure the
            socket is closed and ``ConnectionFailedError`` raised.
    """

    class Result:
        """One statement's outcome as seen by the client."""

        def __init__(self, payload: Dict[str, Any]) -> None:
            self.kind: str = payload.get("kind", "rows")
            self.columns: List[str] = payload.get("columns", [])
            self.rows: List[Tuple[Any, ...]] = decode_rows(
                payload.get("rows", [])
            )
            self.affected: int = payload.get("affected", 0)
            self.query_id: str = payload.get("query_id", "")

    def __init__(self, host: str = "127.0.0.1", port: int = 50000,
                 timeout: float = 30.0, retries: int = 2,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 1.0,
                 deadline_s: Optional[float] = None,
                 retry_seed: Optional[int] = None,
                 handshake: bool = False) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.deadline_s = deadline_s
        self._rng = random.Random(retry_seed)
        self._socket: Optional[socket.socket] = None
        self._buffer = b""
        # session-state requests replayed after a reconnect, keyed so a
        # later profiler/pipeline choice replaces the earlier one
        self._session_state: Dict[str, Dict[str, Any]] = {}
        self._connect()
        if handshake:
            try:
                self._call({"op": "ping"}, retryable=False)
            except ReproError as exc:
                self._teardown()
                raise ConnectionFailedError(
                    f"handshake with {host}:{port} failed: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # connection management

    def _connect(self) -> None:
        try:
            self._socket = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            self._socket = None
            raise ConnectionFailedError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        self._buffer = b""

    def _teardown(self) -> None:
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None
        self._buffer = b""

    def _reconnect(self) -> None:
        self._teardown()
        self._connect()
        # replay session state (pipeline, workers, profiler target) so
        # the fresh connection behaves like the one that died
        for request in self._session_state.values():
            self._call_once(dict(request), deadline=None)

    @staticmethod
    def _state_key(request: Dict[str, Any]) -> Optional[str]:
        op = request.get("op")
        if op == "profiler":
            return "profiler"
        if op == "set":
            # pipeline and workers are independent settings
            return "set:" + ",".join(sorted(k for k in request
                                            if k != "op"))
        return None

    # ------------------------------------------------------------------
    # request plumbing

    def _call(self, request: Dict[str, Any],
              deadline_s: Optional[float] = None,
              retryable: bool = True) -> Dict[str, Any]:
        budget = self.deadline_s if deadline_s is None else deadline_s
        deadline = None if budget is None else time.monotonic() + budget
        op = str(request.get("op", "?"))
        attempt = 0
        while True:
            try:
                if self._socket is None:
                    self._connect()
                response = self._call_once(request, deadline)
            except RequestTimeoutError:
                raise
            except ServerOverloadedError as exc:
                # the shed query never ran, so re-sending is safe even
                # for writes — back off on the same connection and let
                # the admission queue clear
                attempt += 1
                if attempt > self.retries:
                    raise
                CLIENT_RETRIES.labels(op=op).inc()
                nominal = min(self.backoff_max_s,
                              self.backoff_base_s * (2 ** (attempt - 1)))
                delay = nominal * (0.5 + self._rng.random() / 2.0)
                if deadline is not None and \
                        time.monotonic() + delay >= deadline:
                    CLIENT_DEADLINE_EXCEEDED.inc()
                    raise RequestTimeoutError(
                        f"{op} to {self.host}:{self.port} exceeded its "
                        f"{budget:g}s deadline after {attempt} "
                        "overloaded attempt(s)"
                    ) from exc
                time.sleep(delay)
                continue
            except (ConnectionFailedError, ConnectionLostError,
                    OSError) as exc:
                self._teardown()
                attempt += 1
                if not retryable or attempt > self.retries:
                    if isinstance(exc, (ConnectionFailedError,
                                        ConnectionLostError)):
                        raise
                    raise ConnectionLostError(
                        f"{op} to {self.host}:{self.port} failed: {exc}"
                    ) from exc
                CLIENT_RETRIES.labels(op=op).inc()
                nominal = min(self.backoff_max_s,
                              self.backoff_base_s * (2 ** (attempt - 1)))
                delay = nominal * (0.5 + self._rng.random() / 2.0)
                if deadline is not None and \
                        time.monotonic() + delay >= deadline:
                    CLIENT_DEADLINE_EXCEEDED.inc()
                    raise RequestTimeoutError(
                        f"{op} to {self.host}:{self.port} exceeded its "
                        f"{budget:g}s deadline after {attempt} attempt(s)"
                    ) from exc
                time.sleep(delay)
                try:
                    self._reconnect()
                except (ConnectionFailedError, ConnectionLostError,
                        RequestTimeoutError, OSError):
                    continue  # charged as the next attempt
                continue
            key = self._state_key(request)
            if key is not None:
                self._session_state[key] = dict(request)
            return response

    def _call_once(self, request: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        assert self._socket is not None
        try:
            self._socket.settimeout(self._slice(deadline))
            self._socket.sendall(encode_message(request))
            while b"\n" not in self._buffer:
                self._socket.settimeout(self._slice(deadline))
                chunk = self._socket.recv(65536)
                if not chunk:
                    raise ConnectionLostError(
                        f"{self.host}:{self.port} closed the connection")
                self._buffer += chunk
        except socket.timeout as exc:
            if deadline is not None and time.monotonic() >= deadline:
                CLIENT_DEADLINE_EXCEEDED.inc()
                raise RequestTimeoutError(
                    f"request to {self.host}:{self.port} exceeded its "
                    "deadline") from exc
            raise ConnectionLostError(
                f"{self.host}:{self.port} timed out mid-request"
            ) from exc
        line, self._buffer = self._buffer.split(b"\n", 1)
        response = decode_message(line)
        if not response.get("ok"):
            raise error_from_payload(response)
        return response

    def _slice(self, deadline: Optional[float]) -> float:
        """Socket timeout for the next operation under ``deadline``."""
        if deadline is None:
            return self.timeout
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            CLIENT_DEADLINE_EXCEEDED.inc()
            raise RequestTimeoutError(
                f"request to {self.host}:{self.port} exceeded its "
                "deadline")
        return min(self.timeout, remaining)

    # ------------------------------------------------------------------
    # verbs

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def stats(self) -> Dict[str, Any]:
        """The server's engine-metrics snapshot (the ``stats`` verb).

        Returns the plain dict form of every metric family in the
        server's ``repro.metrics`` registry; render it locally with
        :func:`repro.metrics.render_snapshot`, or see
        ``docs/metrics_reference.md`` for the families."""
        return self._call({"op": "stats"})["metrics"]

    def query(self, sql: str,
              deadline_s: Optional[float] = None,
              server_deadline_s: Optional[float] = None,
              max_rss_bytes: Optional[int] = None) -> "MClient.Result":
        """Execute one SQL statement.

        ``server_deadline_s`` asks the server to cancel the query when
        its wall clock exceeds the budget (typed
        ``QueryDeadlineError``); ``max_rss_bytes`` bounds the query's
        simulated resident set (``QueryBudgetError``).  ``deadline_s``
        is the *client-side* budget covering transport and retries.

        Only SELECTs are retried after a connection loss — a data
        statement may already have applied on the server side, so
        re-sending it is not safe.  Overload sheds are retried for any
        statement: a shed query never started.
        """
        request: Dict[str, Any] = {"op": "query", "sql": sql}
        if server_deadline_s is not None:
            request["deadline_s"] = server_deadline_s
        if max_rss_bytes is not None:
            request["max_rss_bytes"] = max_rss_bytes
        retryable = sql.lstrip()[:6].lower().startswith("select")
        return MClient.Result(self._call(request, deadline_s=deadline_s,
                                         retryable=retryable))

    def cancel(self, query_id: str) -> bool:
        """Cancel a running query by its server-assigned id.

        Returns True when the cancel landed on a live query; False when
        the id is unknown or the query already finished.
        """
        return bool(self._call({"op": "cancel",
                                "query_id": query_id}).get("cancelled"))

    def queries(self) -> Dict[str, Any]:
        """Queued/running queries plus recently finished ones."""
        response = self._call({"op": "queries"})
        return {"queries": response.get("queries", []),
                "recent": response.get("recent", [])}

    def explain(self, sql: str) -> str:
        """The optimized MAL plan text of a SELECT."""
        return self._call({"op": "explain", "sql": sql})["plan"]

    def dot(self, sql: str) -> str:
        """The optimized plan's dot file of a SELECT."""
        return self._call({"op": "dot", "sql": sql})["dot"]

    def set_pipeline(self, name: str) -> None:
        """Choose the optimizer pipeline for subsequent queries."""
        self._call({"op": "set", "pipeline": name})

    def set_workers(self, workers: int) -> None:
        """Choose the dataflow worker count."""
        self._call({"op": "set", "workers": workers})

    def set_scheduler(self, name: str) -> None:
        """Choose the execution scheduler (simulated or threaded)."""
        self._call({"op": "set", "scheduler": name})

    def set_profiler(self, port: int, host: str = "127.0.0.1",
                     filter_options: Optional[Dict[str, Any]] = None) -> None:
        """Stream profiler events (and plan dot files) to a UDP endpoint.

        ``filter_options`` supports ``statuses``, ``modules`` and
        ``min_usec`` — the server-side filter options the Stethoscope
        sets (paper §3: "The profiler accepts filter options set through
        Stethoscope")."""
        request: Dict[str, Any] = {"op": "profiler", "host": host,
                                   "port": port}
        if filter_options:
            request["filter"] = filter_options
        self._call(request)

    def profiler_off(self) -> None:
        """Stop streaming profiler events."""
        self._call({"op": "profiler", "off": True})
        self._session_state.pop("profiler", None)

    def close(self) -> None:
        if self._socket is None:
            return
        try:
            self._call({"op": "quit"}, deadline_s=1.0, retryable=False)
        except (ReproError, OSError):
            pass
        self._teardown()

    def __enter__(self) -> "MClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
