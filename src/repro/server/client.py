"""MClient: the TCP client for Mserver (what Stethoscope connects with).

Hardened against the failures the chaos harness injects: connection
setup raises a typed :class:`~repro.errors.ConnectionFailedError`,
requests that die mid-flight are retried with exponential backoff and
jitter (reconnecting and replaying session state first), and every
request observes a per-request deadline that converts into a
:class:`~repro.errors.RequestTimeoutError` instead of blocking forever.

Server responses carrying an error ``code`` are re-raised as the typed
lifecycle error they encode (``QueryCancelledError``,
``QueryDeadlineError``, ``QueryBudgetError``, ``ServerOverloadedError``)
with the server-assigned ``query_id`` attached.  Overload sheds get
their own retry classification: the query never ran, so it is safe to
re-send after backoff — without reconnecting — even for writes.

Replication-aware routing (``peers=[...]``): the client probes the
peer set's ``repl.status``, sends writes to the primary and
load-balances SELECTs across replicas.  A write answered with
:class:`~repro.errors.ReadOnlyReplicaError` (the topology changed under
us) re-resolves the primary — following the error's ``primary`` hint
when it carries one — and re-sends: the rejected write never executed,
so this is safe even for non-retryable statements.  Connection losses
likewise re-resolve through the same backoff machinery.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConnectionFailedError,
    ConnectionLostError,
    ReadOnlyReplicaError,
    ReproError,
    RequestTimeoutError,
    ServerError,
    ServerOverloadedError,
)
from repro.metrics.families import CLIENT_DEADLINE_EXCEEDED, CLIENT_RETRIES
from repro.server.protocol import (
    decode_message,
    decode_rows,
    encode_message,
    error_from_payload,
)


def _probe_status(addr: str, timeout: float = 0.75
                  ) -> Optional[Dict[str, Any]]:
    """One-shot ``repl.status`` probe of ``"host:port"``.

    Deliberately not an :class:`MClient`: no retries, no handshake, one
    bounded connect + one request — routing probes a whole peer set and
    must stay cheap even when half of it is down.  None on any failure.
    """
    host, sep, port_text = addr.rpartition(":")
    if not sep or not host:
        return None
    try:
        port = int(port_text)
    except ValueError:
        return None
    try:
        with socket.create_connection((host, port),
                                      timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(encode_message({"op": "repl.status"}))
            buffer = b""
            while b"\n" not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    return None
                buffer += chunk
        response = decode_message(buffer.split(b"\n", 1)[0])
        return response if response.get("ok") else None
    except (ReproError, OSError, ValueError):
        return None


class MClient:
    """A blocking client over the JSON line protocol.

    Usage::

        with MClient(port=server.port) as client:
            rows = client.query("select count(*) from lineitem").rows

    Args:
        host/port: where the Mserver listens.
        timeout: socket-level timeout for connect and each recv.
        retries: how many times a failed *retryable* request is re-sent
            after reconnecting (0 disables retry).
        backoff_base_s/backoff_max_s: exponential backoff bounds; each
            delay is jittered to half-to-full of the nominal value.
        deadline_s: default per-request wall-clock budget (covers all
            retries); ``None`` means no deadline beyond socket timeouts.
        retry_seed: seeds the jitter PRNG so retry timing is
            reproducible under test.
        handshake: ping the server during construction; on failure the
            socket is closed and ``ConnectionFailedError`` raised.
        peers: ``"host:port"`` addresses of a replicated topology.  When
            non-empty the client routes by role — SELECTs to a replica,
            everything else to the primary — re-resolving on failover.
            The constructor's ``host``/``port`` remain the first
            connection; routing moves it as needed.
        route_ttl_s: how long one round of status probes stays fresh
            before routing re-probes the peer set.
    """

    class Result:
        """One statement's outcome as seen by the client."""

        def __init__(self, payload: Dict[str, Any]) -> None:
            self.kind: str = payload.get("kind", "rows")
            self.columns: List[str] = payload.get("columns", [])
            self.rows: List[Tuple[Any, ...]] = decode_rows(
                payload.get("rows", [])
            )
            self.affected: int = payload.get("affected", 0)
            self.query_id: str = payload.get("query_id", "")

    def __init__(self, host: str = "127.0.0.1", port: int = 50000,
                 timeout: float = 30.0, retries: int = 2,
                 backoff_base_s: float = 0.05, backoff_max_s: float = 1.0,
                 deadline_s: Optional[float] = None,
                 retry_seed: Optional[int] = None,
                 handshake: bool = False,
                 peers: Optional[Sequence[str]] = None,
                 route_ttl_s: float = 1.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.deadline_s = deadline_s
        self.peers: List[str] = list(peers or [])
        self.route_ttl_s = route_ttl_s
        self._routes: Optional[Dict[str, Any]] = None
        self._routes_at = 0.0
        self._rng = random.Random(retry_seed)
        self._socket: Optional[socket.socket] = None
        self._buffer = b""
        self._subscription: Optional["ClientSubscription"] = None
        # session-state requests replayed after a reconnect, keyed so a
        # later profiler/pipeline choice replaces the earlier one
        self._session_state: Dict[str, Dict[str, Any]] = {}
        self._connect()
        if handshake:
            try:
                self._call({"op": "ping"}, retryable=False)
            except ReproError as exc:
                self._teardown()
                raise ConnectionFailedError(
                    f"handshake with {host}:{port} failed: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # connection management

    def _connect(self, deadline: Optional[float] = None) -> None:
        # the connect timeout is capped by the caller's deadline (via
        # _slice, which raises RequestTimeoutError once it is spent) —
        # a default 30s socket timeout must never outlive a 0.5s budget
        try:
            self._socket = socket.create_connection(
                (self.host, self.port), timeout=self._slice(deadline))
        except OSError as exc:
            self._socket = None
            raise ConnectionFailedError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        self._buffer = b""

    def _teardown(self) -> None:
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None
        self._buffer = b""

    def _reconnect(self, deadline: Optional[float] = None) -> None:
        self._teardown()
        self._connect(deadline)
        # replay session state (pipeline, workers, profiler target) so
        # the fresh connection behaves like the one that died — under
        # the caller's deadline: replays against a stalled server must
        # fail fast, not sleep out the whole socket timeout
        for request in self._session_state.values():
            self._call_once(dict(request), deadline=deadline)

    # -- replication-aware routing --------------------------------------

    def _refresh_routes(self) -> None:
        """One probe round over the peer set → primary + replica lists."""
        primary: Optional[str] = None
        hinted: Optional[str] = None
        replicas: List[str] = []
        for addr in self.peers:
            status = _probe_status(addr, timeout=min(self.timeout, 0.75))
            if status is None:
                continue
            role = status.get("role")
            if role in ("primary", "standalone"):
                primary = primary or addr
            elif role == "replica":
                replicas.append(addr)
                hinted = hinted or str(status.get("primary", "")) or None
        if primary is None and hinted and hinted not in self.peers:
            # every probed node is a replica but one names its primary
            status = _probe_status(hinted, timeout=min(self.timeout, 0.75))
            if status is not None and status.get("role") == "primary":
                primary = hinted
        self._routes = {"primary": primary, "replicas": replicas}
        self._routes_at = time.monotonic()

    def _resolve(self, role: str, refresh: bool = False) -> Optional[str]:
        """The address to talk to for ``role`` ("primary"/"replica")."""
        if not self.peers:
            return None
        stale = self._routes is None or \
            time.monotonic() - self._routes_at > self.route_ttl_s
        if refresh or stale:
            self._refresh_routes()
        assert self._routes is not None
        if role == "replica" and self._routes["replicas"]:
            return self._rng.choice(self._routes["replicas"])
        return self._routes["primary"]

    def _ensure_route(self, role: str, deadline: Optional[float],
                      refresh: bool = False) -> None:
        """Point the connection at a node serving ``role``.

        Unknown topology (all probes failed) keeps the current
        connection — the request itself will surface the failure.
        """
        addr = self._resolve(role, refresh=refresh)
        if addr is None:
            return
        host, _, port_text = addr.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ConnectionFailedError(
                f"bad peer address {addr!r}: want host:port") from None
        if self._socket is not None and \
                (host, port) == (self.host, self.port):
            return
        self.host, self.port = host, port
        self._reconnect(deadline)

    @staticmethod
    def _state_key(request: Dict[str, Any]) -> Optional[str]:
        op = request.get("op")
        if op == "profiler":
            return "profiler"
        if op == "set":
            # pipeline and workers are independent settings
            return "set:" + ",".join(sorted(k for k in request
                                            if k != "op"))
        return None

    # ------------------------------------------------------------------
    # request plumbing

    def _call(self, request: Dict[str, Any],
              deadline_s: Optional[float] = None,
              retryable: bool = True,
              route: Optional[str] = None) -> Dict[str, Any]:
        if self._subscription is not None:
            raise ServerError(
                "a subscription is active on this connection; stop() it "
                "before issuing other requests (or use a second client)")
        budget = self.deadline_s if deadline_s is None else deadline_s
        deadline = None if budget is None else time.monotonic() + budget
        op = str(request.get("op", "?"))
        attempt = 0
        if route is not None and self.peers:
            try:
                self._ensure_route(route, deadline)
            except RequestTimeoutError:
                raise
            except (ReproError, OSError):
                pass  # routing is best-effort; the request surfaces it
        while True:
            try:
                if self._socket is None:
                    self._connect(deadline)
                response = self._call_once(request, deadline)
            except RequestTimeoutError:
                raise
            except ReadOnlyReplicaError as exc:
                # our primary view is stale (a failover happened): the
                # rejected write never executed, so re-resolving and
                # re-sending is safe even for non-retryable statements
                attempt += 1
                if not self.peers or attempt > self.retries:
                    raise
                CLIENT_RETRIES.labels(op=op).inc()
                if exc.primary:
                    self._routes = {"primary": exc.primary,
                                    "replicas": []}
                    self._routes_at = time.monotonic()
                else:
                    self._routes = None
                try:
                    self._ensure_route("primary", deadline, refresh=False)
                except RequestTimeoutError:
                    raise
                except (ReproError, OSError):
                    pass
                continue
            except ServerOverloadedError as exc:
                # the shed query never ran, so re-sending is safe even
                # for writes — back off on the same connection and let
                # the admission queue clear
                attempt += 1
                if attempt > self.retries:
                    raise
                CLIENT_RETRIES.labels(op=op).inc()
                nominal = min(self.backoff_max_s,
                              self.backoff_base_s * (2 ** (attempt - 1)))
                delay = nominal * (0.5 + self._rng.random() / 2.0)
                if deadline is not None and \
                        time.monotonic() + delay >= deadline:
                    CLIENT_DEADLINE_EXCEEDED.inc()
                    raise RequestTimeoutError(
                        f"{op} to {self.host}:{self.port} exceeded its "
                        f"{budget:g}s deadline after {attempt} "
                        "overloaded attempt(s)"
                    ) from exc
                time.sleep(delay)
                continue
            except (ConnectionFailedError, ConnectionLostError,
                    OSError) as exc:
                self._teardown()
                attempt += 1
                if not retryable or attempt > self.retries:
                    if isinstance(exc, (ConnectionFailedError,
                                        ConnectionLostError)):
                        raise
                    raise ConnectionLostError(
                        f"{op} to {self.host}:{self.port} failed: {exc}"
                    ) from exc
                CLIENT_RETRIES.labels(op=op).inc()
                nominal = min(self.backoff_max_s,
                              self.backoff_base_s * (2 ** (attempt - 1)))
                delay = nominal * (0.5 + self._rng.random() / 2.0)
                if deadline is not None and \
                        time.monotonic() + delay >= deadline:
                    CLIENT_DEADLINE_EXCEEDED.inc()
                    raise RequestTimeoutError(
                        f"{op} to {self.host}:{self.port} exceeded its "
                        f"{budget:g}s deadline after {attempt} attempt(s)"
                    ) from exc
                time.sleep(delay)
                try:
                    if route is not None and self.peers:
                        # the node may be gone for good (failover):
                        # re-probe the topology instead of hammering it
                        self._ensure_route(route, deadline, refresh=True)
                        if self._socket is None:
                            self._reconnect(deadline)
                    else:
                        self._reconnect(deadline)
                except RequestTimeoutError:
                    raise
                except (ConnectionFailedError, ConnectionLostError,
                        OSError):
                    continue  # charged as the next attempt
                continue
            key = self._state_key(request)
            if key is not None:
                self._session_state[key] = dict(request)
            return response

    def _call_once(self, request: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        assert self._socket is not None
        try:
            self._socket.settimeout(self._slice(deadline))
            self._socket.sendall(encode_message(request))
            while b"\n" not in self._buffer:
                self._socket.settimeout(self._slice(deadline))
                chunk = self._socket.recv(65536)
                if not chunk:
                    raise ConnectionLostError(
                        f"{self.host}:{self.port} closed the connection")
                self._buffer += chunk
        except socket.timeout as exc:
            if deadline is not None and time.monotonic() >= deadline:
                CLIENT_DEADLINE_EXCEEDED.inc()
                raise RequestTimeoutError(
                    f"request to {self.host}:{self.port} exceeded its "
                    "deadline") from exc
            raise ConnectionLostError(
                f"{self.host}:{self.port} timed out mid-request"
            ) from exc
        line, self._buffer = self._buffer.split(b"\n", 1)
        response = decode_message(line)
        if not response.get("ok"):
            raise error_from_payload(response)
        return response

    def _slice(self, deadline: Optional[float]) -> float:
        """Socket timeout for the next operation under ``deadline``."""
        if deadline is None:
            return self.timeout
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            CLIENT_DEADLINE_EXCEEDED.inc()
            raise RequestTimeoutError(
                f"request to {self.host}:{self.port} exceeded its "
                "deadline")
        return min(self.timeout, remaining)

    # ------------------------------------------------------------------
    # verbs

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def stats(self) -> Dict[str, Any]:
        """The server's engine-metrics snapshot (the ``stats`` verb).

        Returns the plain dict form of every metric family in the
        server's ``repro.metrics`` registry; render it locally with
        :func:`repro.metrics.render_snapshot`, or see
        ``docs/metrics_reference.md`` for the families."""
        return self._call({"op": "stats"})["metrics"]

    def stats_payload(self) -> Dict[str, Any]:
        """The full ``stats`` verb response: ``metrics`` plus the
        adaptive feedback state — ``stats_store`` / ``stats_top``
        (runtime statistics store summary and hottest signatures),
        ``plan_cache`` counters and per-entry ``plan_entries``
        diagnostics (hits, age, recorded cost, observed drift)."""
        return self._call({"op": "stats"})

    def query(self, sql: str,
              deadline_s: Optional[float] = None,
              server_deadline_s: Optional[float] = None,
              max_rss_bytes: Optional[int] = None) -> "MClient.Result":
        """Execute one SQL statement.

        ``server_deadline_s`` asks the server to cancel the query when
        its wall clock exceeds the budget (typed
        ``QueryDeadlineError``); ``max_rss_bytes`` bounds the query's
        simulated resident set (``QueryBudgetError``).  ``deadline_s``
        is the *client-side* budget covering transport and retries.

        Only SELECTs are retried after a connection loss — a data
        statement may already have applied on the server side, so
        re-sending it is not safe.  Overload sheds are retried for any
        statement: a shed query never started.
        """
        request: Dict[str, Any] = {"op": "query", "sql": sql}
        if server_deadline_s is not None:
            request["deadline_s"] = server_deadline_s
        if max_rss_bytes is not None:
            request["max_rss_bytes"] = max_rss_bytes
        retryable = sql.lstrip()[:6].lower().startswith("select")
        route = None
        if self.peers:
            route = "replica" if retryable else "primary"
        return MClient.Result(self._call(request, deadline_s=deadline_s,
                                         retryable=retryable,
                                         route=route))

    def cancel(self, query_id: str) -> bool:
        """Cancel a running query by its server-assigned id.

        Returns True when the cancel landed on a live query; False when
        the id is unknown or the query already finished.
        """
        return bool(self._call({"op": "cancel",
                                "query_id": query_id}).get("cancelled"))

    def queries(self) -> Dict[str, Any]:
        """Queued/running queries plus recently finished ones."""
        response = self._call({"op": "queries"})
        return {"queries": response.get("queries", []),
                "recent": response.get("recent", [])}

    def explain(self, sql: str) -> str:
        """The optimized MAL plan text of a SELECT."""
        return self._call({"op": "explain", "sql": sql})["plan"]

    def dot(self, sql: str) -> str:
        """The optimized plan's dot file of a SELECT."""
        return self._call({"op": "dot", "sql": sql})["dot"]

    def repl_status(self) -> Dict[str, Any]:
        """The connected node's replication status (``repl.status``)."""
        return self._call({"op": "repl.status"})

    def repl_sync(self, **fields: Any) -> Dict[str, Any]:
        """One replication pull (``repl.sync``) — used by replicas'
        puller threads; exposed for tooling and tests."""
        return self._call({"op": "repl.sync", **fields},
                          retryable=False)

    def promote(self,
                deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Promote the connected node to primary (``repl.promote``)."""
        return self._call({"op": "repl.promote"},
                          deadline_s=deadline_s, retryable=False)

    def set_pipeline(self, name: str) -> None:
        """Choose the optimizer pipeline for subsequent queries."""
        self._call({"op": "set", "pipeline": name})

    def set_workers(self, workers: int) -> None:
        """Choose the dataflow worker count."""
        self._call({"op": "set", "workers": workers})

    def set_scheduler(self, name: str) -> None:
        """Choose the execution scheduler (simulated or threaded)."""
        self._call({"op": "set", "scheduler": name})

    def set_profiler(self, port: int, host: str = "127.0.0.1",
                     filter_options: Optional[Dict[str, Any]] = None) -> None:
        """Stream profiler events (and plan dot files) to a UDP endpoint.

        ``filter_options`` supports ``statuses``, ``modules`` and
        ``min_usec`` — the server-side filter options the Stethoscope
        sets (paper §3: "The profiler accepts filter options set through
        Stethoscope")."""
        request: Dict[str, Any] = {"op": "profiler", "host": host,
                                   "port": port}
        if filter_options:
            request["filter"] = filter_options
        self._call(request)

    def profiler_off(self) -> None:
        """Stop streaming profiler events."""
        self._call({"op": "profiler", "off": True})
        self._session_state.pop("profiler", None)

    def subscribe(self, from_seq: Optional[int] = None,
                  query_id: str = "",
                  buffer: Optional[int] = None) -> "ClientSubscription":
        """Attach to the server's live trace broadcast hub.

        The connection switches to streaming mode: the returned
        :class:`ClientSubscription` reads hub entries (dot lines, trace
        events, end markers — each carrying a monotonic ``seq``) until
        :meth:`ClientSubscription.stop` detaches.  While subscribed,
        other requests on this client raise — attach a second
        ``MClient`` to query concurrently.  Pass ``from_seq`` (usually
        a previous subscription's ``last_seq + 1``) to resume a broken
        session without losing entries still in the server's history.
        """
        request: Dict[str, Any] = {"op": "subscribe"}
        if from_seq is not None:
            request["from_seq"] = int(from_seq)
        if query_id:
            request["query_id"] = query_id
        if buffer is not None:
            request["buffer"] = int(buffer)
        ack = self._call(request, retryable=False)
        subscription = ClientSubscription(self, ack)
        self._subscription = subscription
        return subscription

    def _recv_message(self, timeout: float) -> Optional[Dict[str, Any]]:
        """Read one message line; None on timeout, raises on EOF."""
        assert self._socket is not None
        while b"\n" not in self._buffer:
            try:
                self._socket.settimeout(timeout)
                chunk = self._socket.recv(65536)
            except socket.timeout:
                return None
            if not chunk:
                raise ConnectionLostError(
                    f"{self.host}:{self.port} closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return decode_message(line)

    def close(self) -> None:
        if self._socket is None:
            return
        if self._subscription is not None:
            try:
                self._subscription.stop()
            except (ReproError, OSError):
                self._subscription = None
        try:
            self._call({"op": "quit"}, deadline_s=1.0, retryable=False)
        except (ReproError, OSError):
            pass
        self._teardown()

    def __enter__(self) -> "MClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ClientSubscription:
    """The client-side view of one ``subscribe`` session.

    Iterate :meth:`entries` to read hub entries (dicts with ``seq``,
    ``kind`` ∈ {event, dot, end}, ``query_id`` and the raw ``line``) as
    the server streams them; :attr:`last_seq` always holds the newest
    sequence number seen, so after a disconnect a fresh client can
    ``subscribe(from_seq=sub.last_seq + 1)`` to resume without gaps
    (as long as the server's history ring still covers the range).
    """

    def __init__(self, client: MClient, ack: Dict[str, Any]) -> None:
        self.client = client
        self.subscriber_id: str = ack.get("subscriber_id", "")
        self.next_seq: int = int(ack.get("next_seq", 0))
        self.missed: int = int(ack.get("missed", 0))
        self.buffer: int = int(ack.get("buffer", 0))
        self.last_seq: int = -1
        self.received = 0
        self.summary: Optional[Dict[str, Any]] = None
        self._active = True

    def next_entry(self, timeout: float = 1.0) -> Optional[Dict[str, Any]]:
        """One hub entry, or None when nothing arrives in ``timeout``."""
        if not self._active:
            return None
        message = self.client._recv_message(timeout=timeout)
        if message is None:
            return None
        if "seq" in message:
            self.last_seq = max(self.last_seq, int(message["seq"]))
            self.received += 1
        return message

    def entries(self, idle_timeout: float = 1.0,
                max_seconds: Optional[float] = None,
                until_end: bool = False):
        """Yield hub entries until idle, deadline, or an ``end`` marker.

        ``idle_timeout`` bounds the wait for each next entry;
        ``max_seconds`` bounds the whole iteration; ``until_end`` stops
        (after yielding it) at the first end-of-query marker — the
        natural way to follow exactly one query to completion.
        """
        began = time.monotonic()
        while self._active:
            budget = idle_timeout
            if max_seconds is not None:
                remaining = max_seconds - (time.monotonic() - began)
                if remaining <= 0:
                    return
                budget = min(budget, remaining)
            entry = self.next_entry(timeout=budget)
            if entry is None:
                if max_seconds is None:
                    return
                continue
            yield entry
            if until_end and entry.get("kind") == "end":
                return

    def stop(self, timeout: float = 5.0) -> Dict[str, Any]:
        """Detach from the hub and return the delivery summary.

        Entries still in flight between the ``unsubscribe`` request and
        its response are consumed (and counted) on the way out, so the
        connection is clean for ordinary requests afterwards.
        """
        if not self._active:
            return self.summary or {}
        self._active = False
        client = self.client
        assert client._socket is not None
        try:
            client._socket.settimeout(timeout)
            client._socket.sendall(encode_message({"op": "unsubscribe"}))
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RequestTimeoutError(
                        "unsubscribe response did not arrive in time")
                message = client._recv_message(timeout=remaining)
                if message is None:
                    continue
                if "seq" in message:
                    self.last_seq = max(self.last_seq,
                                        int(message["seq"]))
                    self.received += 1
                    continue
                if not message.get("ok"):
                    raise error_from_payload(message)
                self.summary = message
                # only now is the connection out of streaming mode —
                # clearing the guard earlier would let ordinary
                # requests read stray entry lines as their responses
                client._subscription = None
                return message
        except (ReproError, OSError):
            # handshake failed: the connection may still be streaming,
            # so drop it — the next request reconnects cleanly instead
            # of misreading broadcast entries as its response
            client._subscription = None
            client._teardown()
            raise

    def __enter__(self) -> "ClientSubscription":
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.stop()
        except (ReproError, OSError):
            pass
