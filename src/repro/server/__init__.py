"""Mserver: the MonetDB-server stand-in.

"Mserver is the MonetDB database server.  It is the main component which
encapsulates the entire MonetDB execution environment.  Mserver works as
a background process.  It listens for the incoming client connections on
user defined ports.  Stethoscope connects to Mserver as a client."

This package provides :class:`~repro.server.database.Database` (the
embedded execution environment: catalog + SQL compiler + optimizer +
interpreter + profiler), :class:`~repro.server.mserver.Mserver` (a TCP
server around it) and :class:`~repro.server.client.MClient` (the client
used by examples and the online Stethoscope).  The wire protocol is
line-delimited JSON — a simplification of MonetDB's MAPI protocol that
keeps the same request/response structure (documented in DESIGN.md).
"""

from repro.server.client import ClientSubscription, MClient
from repro.server.database import Database
from repro.server.mserver import Mserver

__all__ = ["ClientSubscription", "Database", "MClient", "Mserver"]
