"""Server-side query lifecycle supervision.

Every query the Mserver admits gets a server-assigned id and a
:class:`QueryContext` — a cancellation token plus optional deadline and
simulated-RSS budget — which is threaded through
:meth:`~repro.server.database.Database.execute`, the interpreter and
both dataflow schedulers.  Execution engines call
:meth:`QueryContext.check` at every instruction boundary, so a
``cancel`` issued from another connection (or by the stuck-query
watchdog) stops a running plan within one instruction instead of
waiting for the whole plan to finish.

Three cooperating pieces:

* :class:`QueryRegistry` — assigns query ids, tracks queued/running
  queries (the ``queries`` protocol op reads it) and keeps a short
  history of finished ones, including watchdog kills.
* :class:`AdmissionController` — replaces the old single global query
  lock: a bounded concurrency limit plus a bounded wait queue with a
  queue-wait deadline.  Overflow sheds load with a typed
  :class:`~repro.errors.ServerOverloadedError` instead of queueing
  unboundedly, so ``explain``/``dot``/``stats`` stay responsive while
  queries run.  Writes (DDL/INSERT) admit *exclusively* — they wait for
  running readers and block new ones — preserving the old serialised
  semantics where it matters.
* :class:`StuckQueryWatchdog` — a background thread that force-cancels
  queries past their deadline and records them in the registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from contextlib import contextmanager

from repro.errors import (
    QueryBudgetError,
    QueryCancelledError,
    QueryDeadlineError,
    ServerOverloadedError,
)
from repro.metrics.families import (
    SERVER_ADMISSION_QUEUE_DEPTH,
    SERVER_DRAINS,
    SERVER_QUERIES_ACTIVE,
    SERVER_QUERIES_ADMITTED,
    SERVER_QUERIES_CANCELLED,
    SERVER_QUERIES_SHED,
    SERVER_QUERY_DEADLINE_EXCEEDED,
)


class QueryContext:
    """Cancellation token, deadline and RSS budget for one query.

    Execution engines call :meth:`check` between instructions; the
    server and watchdog call :meth:`cancel` from other threads.  All
    state transitions are guarded by one lock, and a cancel of an
    already-finished query is a no-op, so metrics count each cancelled
    query exactly once.
    """

    def __init__(self, query_id: str, sql: str = "",
                 deadline_s: Optional[float] = None,
                 rss_budget_bytes: Optional[int] = None) -> None:
        self.query_id = query_id
        self.sql = sql
        self.submitted = time.monotonic()
        self.deadline = (None if deadline_s is None
                         else self.submitted + float(deadline_s))
        self.deadline_s = deadline_s
        self.rss_budget_bytes = rss_budget_bytes
        #: queued | running | done | failed | cancelled
        self.state = "queued"
        self.cancel_reason = ""
        self.cancel_source = ""
        self._lock = threading.Lock()
        self._cancelled = threading.Event()

    # -- transitions ----------------------------------------------------

    def mark_running(self) -> None:
        """Record that the query got its execution slot."""
        with self._lock:
            if self.state == "queued":
                self.state = "running"

    def finish(self, state: str) -> None:
        """Record the terminal state (``done``/``failed``/``cancelled``)."""
        with self._lock:
            if self.state in ("queued", "running"):
                self.state = state

    def cancel(self, reason: str = "cancel requested",
               source: str = "client") -> bool:
        """Request cancellation; returns True if this call caused it.

        ``source`` labels the metrics: ``client`` (the ``cancel`` op),
        ``watchdog`` / ``deadline`` (deadline enforcement), ``drain``
        (shutdown) or ``rss-budget``.
        """
        with self._lock:
            if self.state not in ("queued", "running") or \
                    self._cancelled.is_set():
                return False
            self._cancelled.set()
            self.cancel_reason = reason
            self.cancel_source = source
        SERVER_QUERIES_CANCELLED.labels(source=source).inc()
        if source in ("watchdog", "deadline"):
            SERVER_QUERY_DEADLINE_EXCEEDED.inc()
        return True

    # -- queries --------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once cancellation has been requested."""
        return self._cancelled.is_set()

    def elapsed_s(self) -> float:
        """Seconds since the query was submitted."""
        return time.monotonic() - self.submitted

    def check(self, rss_bytes: int = 0) -> None:
        """Raise the typed cancellation error if this query must stop.

        Called by the execution engines at every instruction boundary
        (and by admission while queued).  Also discovers an expired
        deadline or a blown RSS budget inline, without waiting for the
        watchdog tick.
        """
        if not self._cancelled.is_set():
            if self.deadline is not None and \
                    time.monotonic() >= self.deadline:
                self.cancel(f"deadline of {self.deadline_s:g}s exceeded",
                            source="deadline")
            elif self.rss_budget_bytes is not None and \
                    rss_bytes > self.rss_budget_bytes:
                self.cancel(
                    f"rss {rss_bytes} bytes exceeds budget of "
                    f"{self.rss_budget_bytes} bytes", source="rss-budget")
            else:
                return
        reason = self.cancel_reason or "cancelled"
        message = f"query {self.query_id} cancelled: {reason}"
        if self.cancel_source in ("watchdog", "deadline"):
            raise QueryDeadlineError(message, query_id=self.query_id)
        if self.cancel_source == "rss-budget":
            raise QueryBudgetError(message, query_id=self.query_id)
        raise QueryCancelledError(message, query_id=self.query_id)

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary for the ``queries`` protocol op."""
        return {
            "query_id": self.query_id,
            "sql": self.sql,
            "state": self.state,
            "elapsed_s": round(self.elapsed_s(), 4),
            "deadline_s": self.deadline_s,
            "cancel_reason": self.cancel_reason,
        }


class QueryRegistry:
    """Id assignment plus the live and recently-finished query tables."""

    def __init__(self, history: int = 32) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._active: Dict[str, QueryContext] = {}
        self._recent: Deque[Dict[str, object]] = deque(maxlen=history)

    def register(self, sql: str, deadline_s: Optional[float] = None,
                 rss_budget_bytes: Optional[int] = None) -> QueryContext:
        """Assign the next query id and start tracking the query."""
        with self._lock:
            self._seq += 1
            context = QueryContext(f"q{self._seq}", sql=sql,
                                   deadline_s=deadline_s,
                                   rss_budget_bytes=rss_budget_bytes)
            self._active[context.query_id] = context
        return context

    def finish(self, context: QueryContext, state: str) -> None:
        """Move a query to the history with its terminal state."""
        context.finish(state)
        with self._lock:
            self._active.pop(context.query_id, None)
            self._recent.append(context.describe())

    def get(self, query_id: str) -> Optional[QueryContext]:
        """The live context for ``query_id`` (None when not running)."""
        with self._lock:
            return self._active.get(query_id)

    def cancel(self, query_id: str, reason: str = "cancel requested",
               source: str = "client") -> Dict[str, object]:
        """Cancel a live query by id; reports what happened either way."""
        context = self.get(query_id)
        if context is None:
            return {"cancelled": False, "state": "unknown"}
        fired = context.cancel(reason, source=source)
        return {"cancelled": fired, "state": context.state}

    def cancel_all(self, reason: str, source: str) -> int:
        """Cancel every live query; returns how many were cancelled."""
        return sum(1 for context in self.active_contexts()
                   if context.cancel(reason, source=source))

    def active_contexts(self) -> List[QueryContext]:
        """Snapshot of the live contexts (safe to iterate)."""
        with self._lock:
            return list(self._active.values())

    def active_count(self) -> int:
        """How many queries are queued or running right now."""
        with self._lock:
            return len(self._active)

    def list(self) -> List[Dict[str, object]]:
        """Live queries as JSON-safe dicts, oldest first."""
        contexts = sorted(self.active_contexts(),
                          key=lambda c: c.submitted)
        return [context.describe() for context in contexts]

    def recent(self) -> List[Dict[str, object]]:
        """The most recently finished queries (includes watchdog kills)."""
        with self._lock:
            return list(self._recent)


class AdmissionController:
    """Bounded concurrency plus a bounded wait queue with load-shedding.

    ``max_concurrent`` execution slots are shared by readers (SELECT,
    EXPLAIN, TRACE); a write admits exclusively — it waits for all
    readers to drain and holds the only slot.  A query that cannot run
    immediately waits in a queue bounded by ``max_queue``; overflow, a
    queue wait longer than ``queue_wait_s``, or a draining server all
    shed the query with :class:`~repro.errors.ServerOverloadedError`.
    """

    def __init__(self, max_concurrent: int = 4, max_queue: int = 16,
                 queue_wait_s: float = 5.0) -> None:
        self._cv = threading.Condition(threading.Lock())
        self._active = 0
        self._exclusive_active = False
        self._waiting = 0
        self._exclusive_waiting = 0
        self._draining = False
        self.configure(max_concurrent=max_concurrent, max_queue=max_queue,
                       queue_wait_s=queue_wait_s)

    def configure(self, max_concurrent: Optional[int] = None,
                  max_queue: Optional[int] = None,
                  queue_wait_s: Optional[float] = None) -> None:
        """Adjust the limits (used by tests and the chaos harness)."""
        with self._cv:
            if max_concurrent is not None:
                self.max_concurrent = max(1, int(max_concurrent))
            if max_queue is not None:
                self.max_queue = max(0, int(max_queue))
            if queue_wait_s is not None:
                self.queue_wait_s = float(queue_wait_s)
            self._cv.notify_all()

    def begin_drain(self) -> None:
        """Stop admitting; subsequent queries shed with ``stopping``."""
        with self._cv:
            self._draining = True
            self._cv.notify_all()

    def end_drain(self) -> None:
        """Re-open admission (a stopped server being restarted)."""
        with self._cv:
            self._draining = False

    # -- the slot protocol ---------------------------------------------

    def _can_admit(self, exclusive: bool) -> bool:
        if self._exclusive_active:
            return False
        if exclusive:
            return self._active == 0
        # writer priority: queued writes block new readers
        return (self._exclusive_waiting == 0
                and self._active < self.max_concurrent)

    def _shed(self, reason: str, detail: str) -> None:
        SERVER_QUERIES_SHED.labels(reason=reason).inc()
        raise ServerOverloadedError(
            f"server overloaded ({reason}): {detail}")

    @contextmanager
    def slot(self, context: QueryContext,
             exclusive: bool = False) -> Iterator[None]:
        """Hold one execution slot for the duration of the block.

        Raises :class:`~repro.errors.ServerOverloadedError` when the
        query is shed, or the context's typed cancellation error when
        it is cancelled while queued.
        """
        self._admit(context, exclusive)
        try:
            yield
        finally:
            self._release(exclusive)

    def _admit(self, context: QueryContext, exclusive: bool) -> None:
        deadline = time.monotonic() + self.queue_wait_s
        with self._cv:
            if self._draining:
                self._shed("stopping", "server is draining")
            if not self._can_admit(exclusive) and \
                    self._waiting >= self.max_queue:
                self._shed(
                    "queue-full",
                    f"{self._active} running, {self._waiting} queued "
                    f"(max_queue={self.max_queue})")
            self._waiting += 1
            if exclusive:
                self._exclusive_waiting += 1
            SERVER_ADMISSION_QUEUE_DEPTH.set(self._waiting)
            try:
                while not self._can_admit(exclusive):
                    context.check()  # cancelled / deadline while queued
                    if self._draining:
                        self._shed("stopping", "server is draining")
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._shed(
                            "queue-wait",
                            f"no slot within {self.queue_wait_s:g}s")
                    self._cv.wait(min(remaining, 0.05))
                if exclusive:
                    self._exclusive_active = True
                else:
                    self._active += 1
                SERVER_QUERIES_ACTIVE.set(
                    self._active + (1 if self._exclusive_active else 0))
            finally:
                self._waiting -= 1
                if exclusive:
                    self._exclusive_waiting -= 1
                SERVER_ADMISSION_QUEUE_DEPTH.set(self._waiting)
        SERVER_QUERIES_ADMITTED.inc()

    def _release(self, exclusive: bool) -> None:
        with self._cv:
            if exclusive:
                self._exclusive_active = False
            else:
                self._active -= 1
            SERVER_QUERIES_ACTIVE.set(
                self._active + (1 if self._exclusive_active else 0))
            self._cv.notify_all()


class StuckQueryWatchdog:
    """Background thread force-cancelling queries past their deadline.

    Runs on a short interval; a query whose wall-clock deadline has
    passed is cancelled with source ``watchdog`` and shows up in the
    registry history with its cancel reason — the operator's record of
    what was killed and why.
    """

    def __init__(self, registry: QueryRegistry,
                 interval_s: float = 0.05) -> None:
        self.registry = registry
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "StuckQueryWatchdog":
        """Start the watchdog thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-watchdog", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the watchdog thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def sweep(self) -> int:
        """One scan: cancel every live query past its deadline."""
        cancelled = 0
        now = time.monotonic()
        for context in self.registry.active_contexts():
            if context.deadline is not None and now >= context.deadline \
                    and not context.cancelled:
                if context.cancel(
                        f"deadline of {context.deadline_s:g}s exceeded "
                        f"(watchdog after {context.elapsed_s():.2f}s)",
                        source="watchdog"):
                    cancelled += 1
        return cancelled

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sweep()


def record_drain(forced: bool) -> None:
    """Count one drain shutdown by outcome."""
    SERVER_DRAINS.labels(outcome="forced" if forced else "clean").inc()
