"""The line-delimited JSON wire protocol between MClient and Mserver.

One JSON object per line in each direction.  Requests carry an ``op``:

===========  ==========================================================
``ping``     liveness check → ``{"ok": true}``
``query``    execute SQL → rows / ddl / insert outcome, plus the
             server-assigned ``query_id``; accepts optional
             ``deadline_s`` (server-side wall-clock budget) and
             ``max_rss_bytes`` (simulated-RSS budget)
``cancel``   cancel a running query by ``query_id`` → ``{"ok": true,
             "cancelled": bool, "state": ...}``
``queries``  list queued/running queries (id, sql, state, elapsed) and
             the recently finished ones
``explain``  optimized MAL plan text for a SELECT
``dot``      optimized plan's dot file for a SELECT
``set``      per-session settings: ``pipeline`` (optimizer pipe name),
             ``workers``, ``scheduler`` — applied at execute time, the
             shared database is never mutated
``profiler`` stream trace events (and dot files) to a UDP endpoint;
             carries optional filter options (statuses, modules,
             min_usec)
``stats``    engine metrics snapshot → ``{"ok": true, "metrics":
             {...}}`` — every family in the ``repro.metrics`` registry
             (see ``docs/metrics_reference.md``)
``subscribe``  attach to the live trace broadcast hub; optional
             ``from_seq`` resumes from a sequence number, ``query_id``
             narrows to one query, ``buffer`` bounds the server-side
             queue.  The connection then interleaves entry lines
             (objects carrying ``seq``) with responses to pipelined
             requests — see ``docs/streaming.md``
``unsubscribe``  detach from the hub → delivery summary (``delivered``,
             ``dropped``, ``missed``)
``quit``     close the connection
``repl.status``  replication snapshot → role, epoch, durable LSN,
             primary address, lag (see ``docs/operations.md`` §11)
``repl.sync``  follower pull: committed WAL records past ``from_lsn``
             (or a checkpoint bootstrap for lagging followers),
             fenced by ``epoch``
``repl.promote``  promote this server to primary: bump the epoch and
             truncate any unacked divergent tail
===========  ==========================================================

Error responses are ``{"ok": false, "error": msg}`` plus an optional
``code`` that transports the lifecycle error *type* across the wire
(``cancelled``, ``deadline``, ``rss-budget``, ``overloaded``) and a
``query_id`` when the error concerns one query — so a cancelled query
surfaces client-side as a typed
:class:`~repro.errors.QueryCancelledError`, not a generic failure.

This replaces MonetDB's binary MAPI protocol; the substitution is
documented in DESIGN.md.  Values that are not JSON-native (dates) are
serialised as ISO strings tagged with ``"@date:"`` so they survive the
round trip.
"""

from __future__ import annotations

import datetime
import json
from typing import Any, Dict

from repro.errors import (
    PartitionShipError,
    QueryBudgetError,
    QueryCancelledError,
    QueryDeadlineError,
    ReadOnlyReplicaError,
    ReplicationFencedError,
    ReproError,
    ServerError,
    ServerOverloadedError,
    WorkerCrashError,
)

_DATE_TAG = "@date:"

#: Every request verb the server dispatches on.  ``docs/streaming.md``
#: must document each of these — the docs-consistency gate
#: (``tests/test_docs.py``) checks the doc against this tuple.
VERBS = (
    "ping", "query", "cancel", "queries", "explain", "dot", "set",
    "profiler", "stats", "subscribe", "unsubscribe", "quit",
    "repl.status", "repl.sync", "repl.promote",
)

#: Upper bound on one protocol line.  A peer that buffers more than
#: this without seeing a newline is framing garbage (or hostile); the
#: server answers with an error and drops the connection.
MAX_MESSAGE_BYTES = 1 << 20


def encode_value(value: Any) -> Any:
    """JSON-encode one cell value (dates are tagged strings)."""
    if isinstance(value, datetime.date):
        return _DATE_TAG + value.isoformat()
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, str) and value.startswith(_DATE_TAG):
        return datetime.date.fromisoformat(value[len(_DATE_TAG):])
    return value


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message as a line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line.

    Raises:
        ServerError: on malformed JSON or a non-object payload.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServerError(f"bad protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ServerError("protocol message must be a JSON object")
    return message


#: Wire code ↔ typed lifecycle error.  Order matters for encoding:
#: subclasses before their bases so the most precise code wins.
_ERROR_CODES = (
    ("deadline", QueryDeadlineError),
    ("rss-budget", QueryBudgetError),
    ("cancelled", QueryCancelledError),
    ("overloaded", ServerOverloadedError),
    ("worker-crash", WorkerCrashError),
    ("ship-corrupt", PartitionShipError),
    ("read-only-replica", ReadOnlyReplicaError),
    ("repl-fenced", ReplicationFencedError),
)
_CODE_TO_ERROR = {code: cls for code, cls in _ERROR_CODES}

#: The wire error codes, in encoding-priority order — the docs gate
#: checks ``docs/streaming.md`` documents every one of these.
ERROR_CODES = tuple(code for code, _cls in _ERROR_CODES)


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Encode an exception as an error response, keeping its type.

    Lifecycle errors carry a ``code`` (and ``query_id`` when set) so
    the client can re-raise the same class; anything else becomes a
    plain ``{"ok": false, "error": ...}``.
    """
    payload: Dict[str, Any] = {"ok": False, "error": str(exc)}
    for code, cls in _ERROR_CODES:
        if isinstance(exc, cls):
            payload["code"] = code
            break
    query_id = getattr(exc, "query_id", "")
    if query_id:
        payload["query_id"] = query_id
    primary = getattr(exc, "primary", "")
    if primary:
        payload["primary"] = primary
    return payload


def error_from_payload(payload: Dict[str, Any]) -> ReproError:
    """Rebuild the typed error an ``{"ok": false}`` response encodes."""
    message = payload.get("error", "request failed")
    cls = _CODE_TO_ERROR.get(payload.get("code", ""))
    if cls is None:
        return ServerError(message)
    if issubclass(cls, QueryCancelledError):
        return cls(message, query_id=payload.get("query_id", ""))
    if issubclass(cls, ReadOnlyReplicaError):
        return cls(message, primary=payload.get("primary", ""))
    return cls(message)


def encode_rows(rows) -> list:
    """Encode a row list for transport."""
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows) -> list:
    """Decode a transported row list back to tuples."""
    return [tuple(decode_value(v) for v in row) for row in rows]
