"""The line-delimited JSON wire protocol between MClient and Mserver.

One JSON object per line in each direction.  Requests carry an ``op``:

===========  ==========================================================
``ping``     liveness check → ``{"ok": true}``
``query``    execute SQL → rows / ddl / insert outcome
``explain``  optimized MAL plan text for a SELECT
``dot``      optimized plan's dot file for a SELECT
``set``      session settings: ``pipeline`` (optimizer pipe name)
``profiler`` stream trace events (and dot files) to a UDP endpoint;
             carries optional filter options (statuses, modules,
             min_usec)
``stats``    engine metrics snapshot → ``{"ok": true, "metrics":
             {...}}`` — every family in the ``repro.metrics`` registry
             (see ``docs/metrics_reference.md``)
``quit``     close the connection
===========  ==========================================================

This replaces MonetDB's binary MAPI protocol; the substitution is
documented in DESIGN.md.  Values that are not JSON-native (dates) are
serialised as ISO strings tagged with ``"@date:"`` so they survive the
round trip.
"""

from __future__ import annotations

import datetime
import json
from typing import Any, Dict

from repro.errors import ServerError

_DATE_TAG = "@date:"

#: Upper bound on one protocol line.  A peer that buffers more than
#: this without seeing a newline is framing garbage (or hostile); the
#: server answers with an error and drops the connection.
MAX_MESSAGE_BYTES = 1 << 20


def encode_value(value: Any) -> Any:
    """JSON-encode one cell value (dates are tagged strings)."""
    if isinstance(value, datetime.date):
        return _DATE_TAG + value.isoformat()
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, str) and value.startswith(_DATE_TAG):
        return datetime.date.fromisoformat(value[len(_DATE_TAG):])
    return value


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message as a line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line.

    Raises:
        ServerError: on malformed JSON or a non-object payload.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServerError(f"bad protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ServerError("protocol message must be a JSON object")
    return message


def encode_rows(rows) -> list:
    """Encode a row list for transport."""
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows) -> list:
    """Decode a transported row list back to tuples."""
    return [tuple(decode_value(v) for v in row) for row in rows]
