"""Trace event model and its textual wire/file format.

One line per event, bracketed and tab-separated, mirroring the structure
of the MonetDB profiler stream shown in the paper's Figure 3::

    [ 7,	123456,	"done",	3,	0,	145,	18432,	"X_23 := algebra.select(X_10,1);"	]

Fields, in order:

=========  ===================================================
``event``  monotonically increasing sequence number
``clock``  microseconds since query start (event timestamp)
``status`` ``"start"`` or ``"done"``
``pc``     program counter of the instruction (maps to dot node ``n<pc>``)
``thread`` worker thread that executed the instruction
``usec``   elapsed microseconds (0 on start events)
``rss``    simulated resident set in bytes
``stmt``   the MAL statement text
=========  ===================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import TraceFormatError


@dataclass(frozen=True)
class TraceEvent:
    """One profiler event (an instruction starting or finishing)."""

    event: int
    clock_usec: int
    status: str  # "start" | "done"
    pc: int
    thread: int
    usec: int
    rss_bytes: int
    stmt: str

    @property
    def module(self) -> str:
        """MAL module of the statement (parsed from the text)."""
        match = _QNAME_RE.search(self.stmt)
        return match.group(1) if match else ""

    @property
    def function(self) -> str:
        """MAL function of the statement (parsed from the text)."""
        match = _QNAME_RE.search(self.stmt)
        return match.group(2) if match else ""


_QNAME_RE = re.compile(r"(?:^|:=\s*)([A-Za-z_][\w]*)\.([A-Za-z_][\w]*)\(")

_LINE_RE = re.compile(
    r"^\[\s*(\d+),\s*(\d+),\s*\"(start|done)\",\s*(\d+),\s*(\d+),"
    r"\s*(\d+),\s*(\d+),\s*\"(.*)\"\s*\]$",
    re.DOTALL,
)


def format_event(event: TraceEvent) -> str:
    """Render an event as one trace line."""
    stmt = event.stmt.replace("\\", "\\\\").replace('"', '\\"')
    return (
        f"[ {event.event},\t{event.clock_usec},\t\"{event.status}\","
        f"\t{event.pc},\t{event.thread},\t{event.usec},"
        f"\t{event.rss_bytes},\t\"{stmt}\"\t]"
    )


def parse_event(line: str) -> TraceEvent:
    """Parse one trace line back into a :class:`TraceEvent`.

    Raises:
        TraceFormatError: when the line does not match the format.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise TraceFormatError(f"bad trace line: {line!r}")
    stmt = match.group(8).replace('\\"', '"').replace("\\\\", "\\")
    return TraceEvent(
        event=int(match.group(1)),
        clock_usec=int(match.group(2)),
        status=match.group(3),
        pc=int(match.group(4)),
        thread=int(match.group(5)),
        usec=int(match.group(6)),
        rss_bytes=int(match.group(7)),
        stmt=stmt,
    )
