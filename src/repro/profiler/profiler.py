"""The profiler proper: turns interpreter run records into trace events.

A :class:`Profiler` is handed to an interpreter/scheduler as its run
listener.  Each instruction yields a *start* and a *done*
:class:`~repro.profiler.events.TraceEvent`; events passing the configured
:class:`~repro.profiler.filters.EventFilter` are fanned out to every
attached sink (in-memory buffer, trace file, UDP stream, callbacks).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.mal.interpreter import InstructionRun
from repro.profiler.events import TraceEvent, format_event
from repro.profiler.filters import EventFilter

EventSink = Callable[[TraceEvent], None]


class Profiler:
    """Collects, filters and distributes trace events.

    Args:
        event_filter: server-side filter; only matching events reach sinks.
        keep_events: retain matching events in :attr:`events` (on by
            default; turn off for pure streaming to bound memory).
    """

    def __init__(self, event_filter: Optional[EventFilter] = None,
                 keep_events: bool = True) -> None:
        self.event_filter = event_filter or EventFilter()
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self._sinks: List[EventSink] = []
        self._sequence = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def add_sink(self, sink: EventSink) -> None:
        """Attach a sink receiving every matching event."""
        self._sinks.append(sink)

    def attach_file(self, path: str) -> None:
        """Stream matching events to a trace file (line per event)."""
        handle = open(path, "w")

        def sink(event: TraceEvent) -> None:
            handle.write(format_event(event) + "\n")
            handle.flush()

        sink.close = handle.close  # type: ignore[attr-defined]
        self.add_sink(sink)

    # ------------------------------------------------------------------
    # listener protocol (plugs into Interpreter / schedulers)
    # ------------------------------------------------------------------

    def __call__(self, phase: str, run: InstructionRun) -> None:
        """RunListener interface: convert one run record into an event."""
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
        if phase == "start":
            event = TraceEvent(
                event=sequence, clock_usec=run.start_usec, status="start",
                pc=run.pc, thread=run.thread, usec=0,
                rss_bytes=run.rss_bytes, stmt=run.stmt,
            )
        else:
            event = TraceEvent(
                event=sequence, clock_usec=run.end_usec, status="done",
                pc=run.pc, thread=run.thread, usec=run.usec,
                rss_bytes=run.rss_bytes, stmt=run.stmt,
            )
        self.emit(event)

    def emit(self, event: TraceEvent) -> None:
        """Filter and distribute one event."""
        if not self.event_filter.matches(event):
            return
        if self.keep_events:
            with self._lock:
                self.events.append(event)
        for sink in self._sinks:
            sink(event)

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop collected events and restart the sequence numbering."""
        with self._lock:
            self.events = []
            self._sequence = 0

    def done_events(self) -> List[TraceEvent]:
        """Only the done-events, in emission order."""
        return [e for e in self.events if e.status == "done"]

    def total_usec(self) -> int:
        """Clock of the latest event seen (query makespan so far)."""
        return max((e.clock_usec for e in self.events), default=0)
