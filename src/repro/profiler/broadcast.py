"""The live trace broadcast hub: one profiler stream, many viewers.

The UDP stream (:mod:`repro.profiler.stream`) is point-to-point — one
receiver per session, exactly what the original Stethoscope did.  The
hub is the fan-out layer on top of the same line vocabulary: the server
publishes each trace line (event, framed dot content, end marker)
**once**, and the hub distributes it to any number of concurrent
subscribers, each with its own bounded buffer.  This is the paper's
"many analysts watching one query" scenario at production concurrency
(`docs/streaming.md` specifies the wire protocol around it).

Design rules, in order of importance:

1. **Publishing never blocks.**  The query being watched must not slow
   down because a viewer is slow.  Every subscriber owns a bounded
   drop-oldest deque; a laggard loses its *oldest* undelivered entries
   (counted in ``repro_broadcast_dropped_total``) while the publisher
   only ever pays one lock + one append per subscriber.
2. **Sequence numbers are hub-global and monotonic.**  Every published
   entry gets the next sequence number; subscribers can detect their
   own gaps, and ``subscribe from=<seq>`` resumes a broken session from
   the hub's retained history ring (gaps older than the ring surface
   as an explicit ``missed`` count, never silently).
3. **Delivery is in sequence order per subscriber.**  Fan-out happens
   under the hub lock, so two concurrent publishers cannot interleave
   out of order into one subscriber's buffer.

The hub itself is transport-agnostic and thread-safe: the asyncio
server drains subscriptions via a wake callback
(``loop.call_soon_threadsafe``), tests and in-process viewers use the
blocking :meth:`Subscription.wait_batch`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import ServerOverloadedError
from repro.metrics.families import (
    BROADCAST_DELIVERED,
    BROADCAST_DROPPED,
    BROADCAST_PUBLISHED,
    BROADCAST_SUBSCRIBER_LAG,
    BROADCAST_SUBSCRIBERS_ACTIVE,
    BROADCAST_SUBSCRIPTIONS,
)


@dataclass(frozen=True)
class BroadcastEntry:
    """One published trace line with its hub-assigned sequence number."""

    seq: int
    kind: str          # "event" | "dot" | "end"
    query_id: str      # server-assigned id of the query that produced it
    line: str          # the trace/dot/end line, exactly as the UDP stream

    def payload(self) -> Dict[str, object]:
        """The JSON-safe wire form streamed to protocol subscribers."""
        return {"seq": self.seq, "kind": self.kind,
                "query_id": self.query_id, "line": self.line}


class Subscription:
    """One subscriber's bounded, drop-oldest view of the hub stream.

    Created through :meth:`TraceBroadcastHub.subscribe`; not meant to be
    constructed directly.  Consumers either block on :meth:`wait_batch`
    (threads, tests) or register a ``wake`` callback at subscribe time
    and drain with :meth:`pop_batch` when woken (the asyncio server).
    """

    def __init__(self, hub: "TraceBroadcastHub", subscriber_id: str,
                 buffer_size: int, query_id: str = "",
                 wake: Optional[Callable[[], None]] = None) -> None:
        self.hub = hub
        self.subscriber_id = subscriber_id
        self.buffer_size = buffer_size
        self.query_id = query_id      # "" subscribes to every query
        self._wake = wake
        self._cv = threading.Condition(threading.Lock())
        self._entries: Deque[BroadcastEntry] = deque()
        self.delivered = 0
        self.dropped = 0              # drop-oldest evictions (slow consumer)
        self.missed = 0               # resume gap older than the hub ring
        self.last_seq = -1            # newest sequence number delivered
        self.closed = False

    # -- hub side -------------------------------------------------------

    def _offer(self, entry: BroadcastEntry) -> None:
        """Append one entry (hub thread); never blocks the publisher."""
        if self.query_id and entry.query_id != self.query_id:
            return
        with self._cv:
            if self.closed:
                return
            self._entries.append(entry)
            if len(self._entries) > self.buffer_size:
                self._entries.popleft()
                self.dropped += 1
                BROADCAST_DROPPED.labels(reason="slow-subscriber").inc()
            self._cv.notify_all()
            wake = self._wake
        if wake is not None:
            wake()

    # -- consumer side --------------------------------------------------

    def pop_batch(self, max_entries: Optional[int] = None) \
            -> List[BroadcastEntry]:
        """Drain buffered entries without blocking (oldest first)."""
        with self._cv:
            count = len(self._entries)
            if max_entries is not None:
                count = min(count, max_entries)
            batch = [self._entries.popleft() for _ in range(count)]
        if batch:
            self.delivered += len(batch)
            self.last_seq = batch[-1].seq
            BROADCAST_DELIVERED.inc(len(batch))
            BROADCAST_SUBSCRIBER_LAG.observe(float(self.lag()))
        return batch

    def wait_batch(self, timeout: Optional[float] = None,
                   max_entries: Optional[int] = None) \
            -> List[BroadcastEntry]:
        """Block until at least one entry is buffered, then drain.

        Returns an empty list on timeout or when the subscription is
        closed while waiting.
        """
        with self._cv:
            if not self._entries and not self.closed:
                self._cv.wait(timeout)
        return self.pop_batch(max_entries)

    def uncredit(self, count: int) -> None:
        """Take back delivery credit for popped-but-never-sent entries.

        The asyncio server pops a batch and then writes it to the
        socket; if the stream task is cancelled between the two, the
        popped entries were counted by :meth:`pop_batch` but the peer
        never received them — the unsubscribe summary must not claim
        they were delivered.
        """
        if count > 0:
            self.delivered = max(0, self.delivered - count)

    def pending(self) -> int:
        """Entries buffered but not yet popped."""
        with self._cv:
            return len(self._entries)

    def lag(self) -> int:
        """How far behind the hub's newest sequence this subscriber is."""
        return max(0, self.hub.latest_seq() - self.last_seq)

    def describe(self) -> Dict[str, object]:
        """JSON-safe counters for the unsubscribe summary and tests."""
        return {"subscriber_id": self.subscriber_id,
                "delivered": self.delivered, "dropped": self.dropped,
                "missed": self.missed, "pending": self.pending(),
                "lag": self.lag(), "buffer": self.buffer_size}

    def close(self) -> None:
        """Detach from the hub and wake any blocked consumer."""
        self.hub.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceBroadcastHub:
    """Fan-out of the profiler's trace stream to N bounded subscribers.

    Args:
        history: entries retained in the resume ring (``subscribe
            from=<seq>`` can backfill anything still inside it).
        default_buffer: per-subscriber buffer size when the subscriber
            does not choose one.
        max_subscribers: subscriptions beyond this are refused with a
            typed :class:`~repro.errors.ServerOverloadedError`.
    """

    def __init__(self, history: int = 8192, default_buffer: int = 512,
                 max_subscribers: int = 1024) -> None:
        self.history = max(1, int(history))
        self.default_buffer = max(1, int(default_buffer))
        self.max_subscribers = max(1, int(max_subscribers))
        self._lock = threading.Lock()
        self._ring: Deque[BroadcastEntry] = deque(maxlen=self.history)
        self._next_seq = 0
        self._sub_seq = 0
        self._subs: Dict[str, Subscription] = {}

    # -- publishing -----------------------------------------------------

    def publish(self, kind: str, line: str, query_id: str = "") -> int:
        """Publish one line to every subscriber; returns its sequence.

        Called from executor threads on the query's execution path, so
        the work under the lock is strictly bounded: one ring append
        plus one deque append per subscriber — no waiting on consumers.
        """
        wakes: List[Callable[[], None]] = []
        with self._lock:
            entry = BroadcastEntry(self._next_seq, kind, query_id, line)
            self._next_seq += 1
            self._ring.append(entry)
            for sub in self._subs.values():
                sub._offer(entry)
        BROADCAST_PUBLISHED.labels(kind=kind).inc()
        return entry.seq

    def active(self) -> bool:
        """True when at least one subscription is attached."""
        with self._lock:
            return bool(self._subs)

    def subscriber_count(self) -> int:
        """How many subscriptions are currently attached."""
        with self._lock:
            return len(self._subs)

    def latest_seq(self) -> int:
        """The newest sequence number published (-1 when none yet)."""
        with self._lock:
            return self._next_seq - 1

    def next_seq(self) -> int:
        """The sequence number the next published entry will get."""
        with self._lock:
            return self._next_seq

    def oldest_retained_seq(self) -> int:
        """The oldest sequence still in the resume ring."""
        with self._lock:
            return self._ring[0].seq if self._ring else self._next_seq

    def has_query(self, query_id: str) -> bool:
        """True when the ring still holds entries for ``query_id``."""
        with self._lock:
            return any(e.query_id == query_id for e in self._ring)

    # -- subscribing ----------------------------------------------------

    def subscribe(self, from_seq: Optional[int] = None,
                  buffer_size: Optional[int] = None, query_id: str = "",
                  wake: Optional[Callable[[], None]] = None) \
            -> Subscription:
        """Attach a subscriber; optionally resume from a sequence number.

        ``from_seq`` backfills every retained entry with ``seq >=
        from_seq`` (filtered by ``query_id`` when set) into the new
        subscription's buffer before any live entry can arrive, so the
        consumer sees one ordered stream.  A resume point older than
        the ring surfaces as the subscription's ``missed`` count and in
        ``repro_broadcast_dropped_total{reason="resume-gap"}``.

        Raises:
            ServerOverloadedError: at the ``max_subscribers`` cap.
        """
        size = self.default_buffer if buffer_size is None \
            else max(1, int(buffer_size))
        with self._lock:
            if len(self._subs) >= self.max_subscribers:
                BROADCAST_SUBSCRIPTIONS.labels(outcome="refused").inc()
                raise ServerOverloadedError(
                    f"subscriber limit reached "
                    f"({self.max_subscribers} attached)")
            self._sub_seq += 1
            sub = Subscription(self, f"s{self._sub_seq}", size,
                               query_id=query_id, wake=wake)
            if from_seq is not None:
                from_seq = max(0, int(from_seq))
                oldest = (self._ring[0].seq if self._ring
                          else self._next_seq)
                if from_seq < oldest:
                    sub.missed = oldest - from_seq
                    BROADCAST_DROPPED.labels(reason="resume-gap").inc(
                        sub.missed)
                backfill = [e for e in self._ring if e.seq >= from_seq
                            and (not query_id or e.query_id == query_id)]
                # seed directly: the sub is not yet visible to
                # publishers, so no lock ordering or duplicate risk
                for entry in backfill[-size:]:
                    sub._entries.append(entry)
                overflow = max(0, len(backfill) - size)
                if overflow:
                    sub.dropped += overflow
                    BROADCAST_DROPPED.labels(
                        reason="slow-subscriber").inc(overflow)
            self._subs[sub.subscriber_id] = sub
            # set the gauge under the hub lock: concurrent
            # subscribe/unsubscribe would otherwise apply their `set`
            # calls out of order and leave the gauge permanently stale
            BROADCAST_SUBSCRIBERS_ACTIVE.set(len(self._subs))
        outcome = "resumed" if from_seq is not None else "accepted"
        BROADCAST_SUBSCRIPTIONS.labels(outcome=outcome).inc()
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a subscription (idempotent)."""
        with self._lock:
            self._subs.pop(sub.subscriber_id, None)
            BROADCAST_SUBSCRIBERS_ACTIVE.set(len(self._subs))
        with sub._cv:
            sub.closed = True
            sub._cv.notify_all()

    def close_all(self) -> None:
        """Detach every subscription (server shutdown)."""
        with self._lock:
            subs = list(self._subs.values())
            self._subs.clear()
            BROADCAST_SUBSCRIBERS_ACTIVE.set(0)
        for sub in subs:
            with sub._cv:
                sub.closed = True
                sub._cv.notify_all()

    def stats(self) -> Dict[str, object]:
        """JSON-safe hub summary (exposed on the ``stats`` verb)."""
        with self._lock:
            subs = list(self._subs.values())
            published = self._next_seq
            retained = len(self._ring)
        return {
            "subscribers": len(subs),
            "published": published,
            "retained": retained,
            "max_subscribers": self.max_subscribers,
            "default_buffer": self.default_buffer,
            "history": self.history,
            "max_lag": max((s.lag() for s in subs), default=0),
            "dropped": sum(s.dropped for s in subs),
        }


class HubPipe:
    """Adapts one query's profiler stream onto the hub.

    Usable as a profiler sink (like
    :class:`~repro.profiler.stream.UdpEmitter`): calling it with a
    :class:`~repro.profiler.events.TraceEvent` publishes one ``event``
    line.  ``send_dot``/``send_end`` mirror the UDP framing so a
    subscriber sees exactly the stream a UDP listener would, plus
    sequence numbers and the query id.
    """

    def __init__(self, hub: TraceBroadcastHub, query_id: str = "") -> None:
        self.hub = hub
        self.query_id = query_id

    def __call__(self, event) -> None:
        from repro.profiler.events import format_event

        self.hub.publish("event", format_event(event),
                         query_id=self.query_id)

    def send_dot(self, dot_text: str) -> None:
        """Publish framed dot content, one ``#dot\\t`` line per entry."""
        from repro.profiler.stream import DOT_PREFIX

        for line in dot_text.splitlines():
            self.hub.publish("dot", DOT_PREFIX + line,
                             query_id=self.query_id)

    def send_end(self) -> None:
        """Publish the end-of-query marker."""
        from repro.profiler.stream import END_MARKER

        self.hub.publish("end", END_MARKER, query_id=self.query_id)
