"""The MAL profiler: instruction-level trace events, filters and streams.

MonetDB's kernel profiler emits one *start* and one *done* event per
executed MAL instruction, each carrying the program counter (pc), worker
thread, elapsed microseconds, resident set size and the statement text —
the fields visible in the paper's Figure 3.  Events can be filtered at the
source, streamed over UDP to a (textual) Stethoscope, or dumped to a trace
file for offline analysis.
"""

from repro.profiler.broadcast import (
    BroadcastEntry,
    HubPipe,
    TraceBroadcastHub,
)
from repro.profiler.events import TraceEvent, format_event, parse_event
from repro.profiler.filters import EventFilter
from repro.profiler.profiler import Profiler
from repro.profiler.stream import DOT_PREFIX, UdpEmitter, UdpReceiver
from repro.profiler.traceio import read_trace, write_trace

__all__ = [
    "DOT_PREFIX",
    "BroadcastEntry",
    "EventFilter",
    "HubPipe",
    "Profiler",
    "TraceBroadcastHub",
    "TraceEvent",
    "UdpEmitter",
    "UdpReceiver",
    "format_event",
    "parse_event",
    "read_trace",
    "write_trace",
]
