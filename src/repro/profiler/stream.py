"""UDP streaming of trace and dot-file content.

The MonetDB profiler sends events over a UDP stream to the (textual)
Stethoscope; before query execution begins, the server also ships the dot
file of the plan over the same stream.  Dot content is framed with the
``#dot\\t`` line prefix so the receiving side can split the two kinds of
content apart (paper §4.2: "It filters the dot file content, generates a
new dot file, and stores the content in it").
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import ProfilerError
from repro.faults.plan import ACTIVE, FaultPlan
from repro.metrics.families import (
    UDP_BYTES_SENT,
    UDP_DATAGRAMS_RECEIVED,
    UDP_DATAGRAMS_SENT,
    UDP_RECEIVE_BACKLOG,
    UDP_SEND_ERRORS,
)
from repro.profiler.events import TraceEvent, format_event

#: Line prefix framing dot-file content inside the UDP stream.
DOT_PREFIX = "#dot\t"

#: Stream terminator, sent when the server finishes a query.
END_MARKER = "#end"


def _line_kind(line: str) -> str:
    """Classify a stream line as event, dot, or end."""
    if line.startswith(DOT_PREFIX):
        return "dot"
    if line == END_MARKER:
        return "end"
    return "event"


class LineFaultPipe:
    """Applies ``udp.emit`` fault decisions to a stream of lines.

    Stateful because *reorder* must hold a line back and release it
    after the next one; everything else is per-line.  Kind is
    classified from the original line before any truncation so a
    mangled ``#dot`` line still counts against the dot kind.
    """

    def __init__(self) -> None:
        self._held: Optional[Tuple[str, str]] = None

    def feed(self, plan: FaultPlan, line: str,
             kind: Optional[str] = None) -> List[Tuple[str, str]]:
        """Run one line through the plan; return (line, kind) to send."""
        if kind is None:
            kind = _line_kind(line)
        decision = plan.decide("udp.emit", detail=kind)
        out: List[Tuple[str, str]] = []
        if decision is None:
            out.append((line, kind))
        elif decision.action == "drop":
            pass
        elif decision.action == "dup":
            out.append((line, kind))
            out.append((line, kind))
        elif decision.action == "truncate":
            keep = int(decision.value) if decision.value else len(line) // 2
            out.append((line[:max(keep, 0)], kind))
        elif decision.action == "reorder":
            if self._held is None:
                self._held = (line, kind)
            else:  # already holding one; swap rather than stack
                out.append((line, kind))
        holding = decision is not None and decision.action == "reorder"
        if out and self._held is not None and not holding:
            out.append(self._held)
            self._held = None
        return out

    def flush(self) -> List[Tuple[str, str]]:
        """Release any held (reordered) line at end of stream."""
        if self._held is None:
            return []
        held, self._held = self._held, None
        return [held]


def apply_line_faults(plan: FaultPlan, lines: Iterable[str]) -> List[str]:
    """Run lines through a fresh pipe; the offline/testable analogue of
    what an armed :class:`UdpEmitter` does on the wire."""
    pipe = LineFaultPipe()
    out: List[str] = []
    for line in lines:
        out.extend(sent for sent, _kind in pipe.feed(plan, line))
    out.extend(sent for sent, _kind in pipe.flush())
    return out


class UdpEmitter:
    """Sends trace lines (and dot content) as UDP datagrams.

    Usable as a profiler sink: calling it with a
    :class:`~repro.profiler.events.TraceEvent` sends one datagram.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 50010) -> None:
        self.address = (host, port)
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        # children resolved once; send_line stays two counter bumps
        self._sent = {kind: UDP_DATAGRAMS_SENT.labels(kind=kind)
                      for kind in ("event", "dot", "end")}
        self._bytes = UDP_BYTES_SENT
        self._errors = UDP_SEND_ERRORS
        self._fault_pipe = LineFaultPipe()

    def __call__(self, event: TraceEvent) -> None:
        self.send_line(format_event(event))

    def send_line(self, line: str) -> None:
        """Send one raw line as a datagram.

        A failing ``sendto`` (unreachable receiver, closed socket) drops
        the datagram and counts it in ``repro_udp_send_errors_total`` —
        the stream is lossy by design, like the real profiler's.  When
        a fault plan is armed, the line first runs through its
        ``udp.emit`` rules (drop/dup/reorder/truncate).
        """
        plan = ACTIVE.plan
        if plan is None:
            self._transmit(line, _line_kind(line))
            return
        for out_line, kind in self._fault_pipe.feed(plan, line):
            self._transmit(out_line, kind)

    def _transmit(self, line: str, kind: str) -> None:
        payload = line.encode("utf-8")
        try:
            self._socket.sendto(payload, self.address)
        except OSError:
            self._errors.inc()
            return
        self._sent[kind].inc()
        self._bytes.inc(len(payload))

    def send_dot(self, dot_text: str) -> None:
        """Ship a dot file over the stream, one framed line per datagram."""
        for line in dot_text.splitlines():
            self.send_line(DOT_PREFIX + line)

    def send_end(self) -> None:
        """Signal end of the query's stream.

        Any line held back by a reorder fault is released first, so a
        reordered tail lands before the END marker rather than being
        silently swallowed at close time.
        """
        for held_line, held_kind in self._fault_pipe.flush():
            self._transmit(held_line, held_kind)
        self.send_line(END_MARKER)

    def close(self) -> None:
        for held_line, held_kind in self._fault_pipe.flush():
            self._transmit(held_line, held_kind)
        self._socket.close()

    def __enter__(self) -> "UdpEmitter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class UdpReceiver:
    """Receives the UDP stream; the textual Stethoscope's transport.

    A background thread drains the socket into an internal queue, so slow
    consumers do not drop datagrams at the socket layer (within OS buffer
    limits).  ``port=0`` binds an ephemeral port — read :attr:`port` after
    construction to learn it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 buffer_bytes: int = 1 << 20) -> None:
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                                buffer_bytes)
        self._socket.bind((host, port))
        self.host, self.port = self._socket.getsockname()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._closed = threading.Event()
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        try:
            self._socket.settimeout(0.1)
        except OSError:  # closed before the thread got scheduled
            self._queue.put(None)
            return
        while not self._closed.is_set():
            try:
                datagram, _addr = self._socket.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            self._queue.put(datagram.decode("utf-8", errors="replace"))
            UDP_DATAGRAMS_RECEIVED.inc()
            UDP_RECEIVE_BACKLOG.set(self._queue.qsize())
        self._queue.put(None)

    def lines(self, timeout: float = 5.0,
              max_seconds: Optional[float] = None) -> Iterator[str]:
        """Yield received lines until the END marker or a timeout.

        A gap of ``timeout`` seconds without any datagram ends iteration
        (the online monitor treats that as a stalled stream).
        ``max_seconds`` additionally caps the *total* wall-clock time of
        the iteration — without it, a steady stream whose END marker was
        lost to UDP drop would keep the loop alive indefinitely, since
        every datagram resets the gap timer.
        """
        deadline = (None if max_seconds is None
                    else time.monotonic() + max_seconds)
        while True:
            wait = timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                wait = min(timeout, remaining)
            try:
                line = self._queue.get(timeout=wait)
            except queue.Empty:
                if deadline is not None and time.monotonic() >= deadline:
                    return
                if wait >= timeout:
                    return
                continue
            UDP_RECEIVE_BACKLOG.set(self._queue.qsize())
            if line is None:
                return
            if line == END_MARKER:
                return
            yield line

    def try_line(self, timeout: float = 0.1) -> Optional[str]:
        """One line, or None when nothing arrived within ``timeout``."""
        try:
            line = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        UDP_RECEIVE_BACKLOG.set(self._queue.qsize())
        return line

    def close(self) -> None:
        self._closed.set()
        self._socket.close()

    def __enter__(self) -> "UdpReceiver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def split_stream(lines) -> Tuple[List[str], List[str]]:
    """Separate framed dot content from trace lines (paper §4.2).

    Returns (dot_lines, trace_lines); the ``#dot`` prefix is stripped.
    """
    dot_lines: List[str] = []
    trace_lines: List[str] = []
    for line in lines:
        if line.startswith(DOT_PREFIX):
            dot_lines.append(line[len(DOT_PREFIX):])
        elif line != END_MARKER:
            trace_lines.append(line)
    return dot_lines, trace_lines
