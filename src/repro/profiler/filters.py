"""Event filters.

The paper (feature 4): "Flexible options for filtering of execution
traces."  The profiler accepts filter options set through Stethoscope,
profiling only a subset of event types; the same filter type is reused on
the client side by the textual Stethoscope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.profiler.events import TraceEvent


@dataclass
class EventFilter:
    """Predicate over trace events; None/empty means "no restriction".

    Attributes:
        statuses: keep only these statuses (``{"start"}``, ``{"done"}``).
        modules: keep only statements of these MAL modules.
        functions: keep only these ``module.function`` qualified names.
        pcs: keep only these program counters.
        threads: keep only events from these worker threads.
        min_usec: keep only done-events at least this expensive (start
            events pass unless ``statuses`` excludes them).
    """

    statuses: Optional[Set[str]] = None
    modules: Optional[Set[str]] = None
    functions: Optional[Set[str]] = None
    pcs: Optional[Set[int]] = None
    threads: Optional[Set[int]] = None
    min_usec: int = 0

    def matches(self, event: TraceEvent) -> bool:
        """True when the event passes every configured restriction."""
        if self.statuses is not None and event.status not in self.statuses:
            return False
        if self.modules is not None and event.module not in self.modules:
            return False
        if self.functions is not None:
            qualified = f"{event.module}.{event.function}"
            if qualified not in self.functions:
                return False
        if self.pcs is not None and event.pc not in self.pcs:
            return False
        if self.threads is not None and event.thread not in self.threads:
            return False
        if self.min_usec > 0 and event.status == "done" \
                and event.usec < self.min_usec:
            return False
        return True

    def describe(self) -> str:
        """Human-readable summary for the filter options window."""
        parts = []
        if self.statuses is not None:
            parts.append(f"status in {sorted(self.statuses)}")
        if self.modules is not None:
            parts.append(f"module in {sorted(self.modules)}")
        if self.functions is not None:
            parts.append(f"function in {sorted(self.functions)}")
        if self.pcs is not None:
            parts.append(f"pc in {sorted(self.pcs)}")
        if self.threads is not None:
            parts.append(f"thread in {sorted(self.threads)}")
        if self.min_usec > 0:
            parts.append(f"usec >= {self.min_usec}")
        return " and ".join(parts) if parts else "all events"
