"""Trace file reading and writing (the offline side of the profiler).

Offline Stethoscope mode "needs access to a preexisting dot file and
trace file" (paper §4.1); these helpers produce and consume those trace
files.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.errors import TraceFormatError
from repro.profiler.events import TraceEvent, format_event, parse_event


def write_trace(events: Iterable[TraceEvent], path: str) -> int:
    """Write events to a trace file, one line each; returns line count."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(format_event(event) + "\n")
            count += 1
    return count


def read_trace(path: str) -> List[TraceEvent]:
    """Read a whole trace file (skipping blank lines).

    Raises:
        TraceFormatError: on any malformed line (with its line number).
    """
    return list(iter_trace(path))


def iter_trace(path: str) -> Iterator[TraceEvent]:
    """Stream a trace file sequentially — the paper's workflow reads the
    trace "in a sequential manner"."""
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield parse_event(stripped)
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{number}: {exc}") from None


def parse_trace_text(text: str) -> List[TraceEvent]:
    """Parse trace lines from a string (e.g. collected from UDP)."""
    events: List[TraceEvent] = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            events.append(parse_event(stripped))
        except TraceFormatError as exc:
            raise TraceFormatError(f"line {number}: {exc}") from None
    return events
