"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror how the paper's tools are operated:

=============  =========================================================
``serve``      start an Mserver with TPC-H data (the background server)
``query``      run SQL against a server (a client session)
``watch``      subscribe to a server's live trace broadcast hub and
               print entries as they stream (any number of watchers can
               follow one query — see ``docs/streaming.md``)
``listen``     the textual Stethoscope: receive a UDP trace stream and
               write the dot/trace files
``offline``    open a dot + trace file pair, replay, and report
``analyze``    micro-analysis table of a trace file
``datagen``    generate a TPC-H catalog and save it to disk
``metrics``    engine metrics in text exposition format (local registry,
               or a running server's via ``--port``)
``stats``      the adaptive feedback state: runtime statistics store
               summary, hottest instruction signatures, and per-entry
               plan-cache diagnostics (live server or on-disk snapshot)
``chaos``      seeded fault-injection sweep against an in-process
               server; prints a pass/fail invariant report
``checkpoint``  recover a WAL directory, write a fresh checkpoint, and
               truncate the log (offline compaction)
``recover``    recover a WAL directory and report what survived —
               checkpoint used, records replayed, torn tail dropped
               (exit 0 clean; exit 3 when a torn/corrupt tail was
               truncated — the recovery was lossy)
``promote``    promote a running replica to primary (epoch bump +
               divergent-tail truncation; see docs/operations.md §11)
``repl-status``  one node's replication role, epoch, LSNs and lag
=============  =========================================================
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stethoscope: visual analysis of query execution plans",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="start an Mserver")
    serve.add_argument("--port", type=int, default=50000)
    serve.add_argument("--scale", type=float, default=0.1,
                       help="TPC-H scale factor (1.0 = ~6000 lineitems)")
    serve.add_argument("--workers", type=int, default=4,
                       help="dataflow workers the schedulers model (also "
                            "the mitosis partition count); scheduling "
                            "only — kernels execute in-process unless "
                            "--parallel-workers >= 2")
    serve.add_argument("--parallel-workers", type=int, default=0,
                       help="partition worker processes; the default 0 "
                            "(and 1) keeps all kernel execution "
                            "in-process, >= 2 forks a pool running "
                            "mitosis fragments one per core")
    serve.add_argument("--parallel-min-rows", type=int, default=2048,
                       help="plans shipping fewer partition rows than "
                            "this run in-process even with a pool "
                            "(0 forces the pool)")
    serve.add_argument("--order-index-min-rows", type=int, default=None,
                       help="BAT row count above which range selects "
                            "build the memoized sort-order index "
                            "(default 512); tunes the process-wide "
                            "index policy")
    serve.add_argument("--plan-cache-size", type=int, default=64,
                       help="optimized plans kept by the LRU plan cache "
                            "(0 disables plan caching)")
    serve.add_argument("--catalog", help="load a saved catalog instead of "
                                         "generating TPC-H data")
    serve.add_argument("--wal-dir", default=None,
                       help="durable mode: write-ahead log + checkpoint "
                            "directory; an empty directory starts fresh "
                            "(data generated and checkpointed), one with "
                            "state is recovered and --scale/--catalog "
                            "are ignored")
    serve.add_argument("--checkpoint-interval", type=int, default=256,
                       help="statements between automatic checkpoints in "
                            "durable mode (0 disables; checkpoint "
                            "offline with the 'checkpoint' command)")
    serve.add_argument("--commit-window-ms", type=float, default=2.0,
                       help="group-commit window: how long the first "
                            "writer waits for company before one fsync "
                            "covers the batch (0 = fsync per statement)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="stop after this long (default: run forever)")
    serve.add_argument("--max-concurrent", type=int, default=4,
                       help="execution slots shared by concurrent queries")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="queries allowed to wait for a slot before "
                            "admission sheds them")
    serve.add_argument("--queue-wait", type=float, default=5.0,
                       help="longest a query may wait in the admission "
                            "queue (seconds)")
    serve.add_argument("--default-deadline", type=float, default=None,
                       help="server-side deadline for queries that do "
                            "not set their own (seconds)")
    serve.add_argument("--drain-seconds", type=float, default=2.0,
                       help="drain budget on shutdown before in-flight "
                            "queries are cancelled")
    serve.add_argument("--subscriber-buffer", type=int, default=512,
                       help="default per-subscriber broadcast buffer "
                            "(entries); laggards past it lose oldest "
                            "entries instead of slowing the query")
    serve.add_argument("--max-subscribers", type=int, default=1024,
                       help="broadcast subscriptions beyond this are "
                            "refused with a typed overload error")
    serve.add_argument("--trace-history", type=int, default=8192,
                       help="broadcast entries retained for "
                            "subscribe-from-sequence resume")
    serve.add_argument("--replicate-from", default=None,
                       metavar="HOST:PORT",
                       help="start as a read replica pulling the WAL "
                            "from this primary (requires --wal-dir; "
                            "TPC-H generation is skipped — the replica "
                            "bootstraps from the primary's checkpoint)")
    serve.add_argument("--peers", default=None,
                       help="comma-separated host:port list of every "
                            "node in the replicated topology (the "
                            "election set for automatic failover)")
    serve.add_argument("--node-host", default="127.0.0.1",
                       help="address this node advertises to peers "
                            "(must match how peers list it)")
    serve.add_argument("--heartbeat-timeout", type=float, default=2.0,
                       help="seconds without primary contact before a "
                            "replica starts a failover election")
    serve.add_argument("--no-auto-failover", action="store_true",
                       help="never self-promote on primary loss; "
                            "failover only via 'repro promote'")

    query = commands.add_parser("query", help="run SQL against a server")
    query.add_argument("sql", nargs="?", default=None)
    query.add_argument("--port", type=int, default=50000)
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--explain", action="store_true",
                       help="print the MAL plan instead of executing")
    query.add_argument("--dot", action="store_true",
                       help="print the plan's dot file instead of executing")
    query.add_argument("--pipeline", default=None,
                       help="optimizer pipeline for this session")
    query.add_argument("--scheduler", default=None,
                       choices=("simulated", "threaded"),
                       help="execution scheduler for this session "
                            "(default: the server's, normally "
                            "\"simulated\"); either way kernels run "
                            "in-process unless the server was started "
                            "with --parallel-workers >= 2")
    query.add_argument("--deadline", type=float, default=None,
                       help="server-side deadline for this query (seconds)")
    query.add_argument("--cancel", metavar="QUERY_ID", default=None,
                       help="cancel a running query by id instead of "
                            "executing SQL")
    query.add_argument("--list", action="store_true",
                       help="list running and recent queries instead of "
                            "executing SQL")

    watch = commands.add_parser(
        "watch", help="follow a server's live trace broadcast stream"
    )
    watch.add_argument("--port", type=int, default=50000)
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--query-id", default="",
                       help="follow one query instead of everything "
                            "(live, or finished-but-retained)")
    watch.add_argument("--from-seq", type=int, default=None,
                       help="resume from a broadcast sequence number")
    watch.add_argument("--buffer", type=int, default=None,
                       help="server-side buffer for this subscription")
    watch.add_argument("--max-seconds", type=float, default=30.0,
                       help="stop watching after this long")
    watch.add_argument("--until-end", action="store_true",
                       help="stop at the first end-of-query marker")

    listen = commands.add_parser(
        "listen", help="textual Stethoscope: receive a UDP trace stream"
    )
    listen.add_argument("--port", type=int, default=50010)
    listen.add_argument("--trace-file", default="query.trace")
    listen.add_argument("--dot-file", default="plan.dot")
    listen.add_argument("--timeout", type=float, default=30.0)
    listen.add_argument("--status", choices=["start", "done"], default=None,
                        help="client-side status filter")

    offline = commands.add_parser(
        "offline", help="offline analysis of a dot + trace file pair"
    )
    offline.add_argument("dot_file")
    offline.add_argument("trace_file")
    offline.add_argument("--threshold", type=int, default=None,
                         help="usec threshold colouring instead of the "
                              "pair-sequence algorithm")
    offline.add_argument("--svg", default=None,
                         help="write the coloured display to an SVG file")
    offline.add_argument("--ascii", action="store_true",
                         help="print the display as text")

    shot = commands.add_parser(
        "screenshot", help="render a dot + trace pair to a PPM image"
    )
    shot.add_argument("dot_file")
    shot.add_argument("trace_file")
    shot.add_argument("output", help="output .ppm path")
    shot.add_argument("--width", type=int, default=1280)
    shot.add_argument("--height", type=int, default=960)
    shot.add_argument("--threshold", type=int, default=None)
    shot.add_argument("--gradient", action="store_true",
                      help="gradient colouring instead of RED/GREEN")

    analyze = commands.add_parser("analyze",
                                  help="micro-analysis of a trace file")
    analyze.add_argument("trace_file")
    analyze.add_argument("--top", type=int, default=10)
    analyze.add_argument("--csv", action="store_true")

    datagen = commands.add_parser("datagen",
                                  help="generate and save a TPC-H catalog")
    datagen.add_argument("path")
    datagen.add_argument("--scale", type=float, default=0.1)
    datagen.add_argument("--seed", type=int, default=19920101)

    metrics = commands.add_parser(
        "metrics", help="dump engine metrics (text exposition format)"
    )
    metrics.add_argument("--port", type=int, default=None,
                         help="fetch from a running Mserver via the "
                              "'stats' protocol verb instead of dumping "
                              "this process's registry")
    metrics.add_argument("--host", default="127.0.0.1")

    stats = commands.add_parser(
        "stats", help="runtime statistics store and plan-cache "
                      "diagnostics (the adaptive feedback state)"
    )
    stats.add_argument("--port", type=int, default=None,
                       help="ask a running server (stats verb); omit "
                            "with --snapshot for an offline view")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--snapshot", default=None,
                       help="read a stats.json snapshot from disk "
                            "instead of a server")
    stats.add_argument("--top", type=int, default=10,
                       help="hottest signature entries to list")

    chaos = commands.add_parser(
        "chaos", help="seeded fault-injection sweep (invariant report)"
    )
    chaos.add_argument("--seeds", type=int, default=20,
                       help="how many seeds per mix")
    chaos.add_argument("--base-seed", type=int, default=0,
                       help="first seed (cases use base..base+seeds-1)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="replay exactly one seed instead of a sweep")
    chaos.add_argument("--mix", action="append", default=None,
                       help="fault mix name (repeatable; default: all)")
    chaos.add_argument("--spec", default=None,
                       help="explicit fault spec string overriding the "
                            "mix table (requires --seed and one --mix "
                            "name for labeling)")
    chaos.add_argument("--scale", type=float, default=0.01,
                       help="TPC-H scale factor for the sweep server")
    chaos.add_argument("--wall-cap", type=float, default=20.0,
                       help="per-case wall-clock cap in seconds")

    checkpoint = commands.add_parser(
        "checkpoint", help="compact a WAL directory into a checkpoint"
    )
    checkpoint.add_argument("wal_dir",
                            help="durable directory (serve --wal-dir)")

    recover = commands.add_parser(
        "recover", help="recover a WAL directory and report the result"
    )
    recover.add_argument("wal_dir",
                         help="durable directory (serve --wal-dir)")

    promote = commands.add_parser(
        "promote", help="promote a running replica to primary"
    )
    promote.add_argument("--port", type=int, default=50000)
    promote.add_argument("--host", default="127.0.0.1")

    repl_status = commands.add_parser(
        "repl-status", help="one node's replication role, epoch and lag"
    )
    repl_status.add_argument("--port", type=int, default=50000)
    repl_status.add_argument("--host", default="127.0.0.1")

    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------


def _cmd_serve(args, out) -> int:
    from repro.server import Database, Mserver
    from repro.tpch import populate

    if args.order_index_min_rows is not None:
        from repro.storage.bat import configure_index_policy

        configure_index_policy(min_rows=args.order_index_min_rows)
        out.write(f"order-index min rows: {args.order_index_min_rows}\n")
    db_options = dict(workers=args.workers,
                      plan_cache_size=args.plan_cache_size,
                      parallel_workers=args.parallel_workers,
                      parallel_min_rows=args.parallel_min_rows)
    if args.wal_dir:
        db_options.update(wal_dir=args.wal_dir,
                          commit_window_ms=args.commit_window_ms,
                          checkpoint_interval=args.checkpoint_interval)
    if args.replicate_from:
        if not args.wal_dir:
            out.write("error: --replicate-from requires --wal-dir "
                      "(replication ships the WAL)\n")
            return 2
        # a replica never generates its own data: whatever the
        # directory holds is recovered, and the rest streams in from
        # the primary (checkpoint bootstrap + WAL tail)
        db = Database(**db_options)
        if db.recovery is not None and db.recovery.recovered_anything:
            out.write(db.recovery.describe() + "\n")
    elif args.catalog:
        from repro.storage.persist import load_catalog

        catalog = load_catalog(args.catalog)
        db = Database(catalog=catalog, **db_options)
        out.write(f"loaded catalog from {args.catalog}\n")
    elif args.wal_dir:
        db = Database(**db_options)
        if db.recovery is not None and db.recovery.recovered_anything:
            out.write(db.recovery.describe() + "\n")
        else:
            counts = populate(db.catalog, scale_factor=args.scale)
            report = db.checkpoint()
            out.write(f"TPC-H sf={args.scale}: "
                      f"{counts['lineitem']} lineitems, baseline "
                      f"checkpoint at {report.path}\n")
    else:
        db = Database(**db_options)
        counts = populate(db.catalog, scale_factor=args.scale)
        out.write(f"TPC-H sf={args.scale}: "
                  f"{counts['lineitem']} lineitems\n")
    with Mserver(db, port=args.port,
                 max_concurrent=args.max_concurrent,
                 max_queue=args.max_queue,
                 queue_wait_s=args.queue_wait,
                 default_deadline_s=args.default_deadline,
                 drain_seconds=args.drain_seconds,
                 subscriber_buffer=args.subscriber_buffer,
                 max_subscribers=args.max_subscribers,
                 trace_history=args.trace_history) as server:
        peers = tuple(p.strip() for p in (args.peers or "").split(",")
                      if p.strip())
        if args.replicate_from or peers:
            from repro.replication import ReplicationManager

            manager = ReplicationManager(
                server, addr=f"{args.node_host}:{server.port}",
                primary=args.replicate_from, peers=peers,
                heartbeat_timeout_s=args.heartbeat_timeout,
                auto_failover=not args.no_auto_failover)
            server.replication = manager.start()
            out.write(f"replication: role {manager.role}, "
                      f"primary {manager.primary}, "
                      f"{len(manager.peers)} peer(s)\n")
        out.write(f"Mserver listening on port {server.port}\n")
        out.flush()
        deadline = (time.monotonic() + args.max_seconds
                    if args.max_seconds else None)
        try:
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
    out.write("server stopped\n")
    return 0


def _cmd_query(args, out) -> int:
    from repro.server import MClient

    with MClient(host=args.host, port=args.port) as client:
        if args.cancel:
            landed = client.cancel(args.cancel)
            out.write(f"cancel {args.cancel}: "
                      + ("cancelled\n" if landed else "not running\n"))
            return 0 if landed else 1
        if args.list:
            listing = client.queries()
            for entry in listing["queries"]:
                out.write(f"{entry['query_id']}\t{entry['state']}\t"
                          f"{entry['elapsed_s']}s\t{entry['sql']}\n")
            for entry in listing["recent"]:
                out.write(f"{entry['query_id']}\t{entry['state']}\t"
                          f"(finished)\t{entry['sql']}\n")
            out.write(f"-- {len(listing['queries'])} running, "
                      f"{len(listing['recent'])} recent\n")
            return 0
        if args.sql is None:
            out.write("error: sql required unless --cancel/--list\n")
            return 2
        if args.pipeline:
            client.set_pipeline(args.pipeline)
        if args.scheduler:
            client.set_scheduler(args.scheduler)
        if args.explain:
            out.write(client.explain(args.sql) + "\n")
            return 0
        if args.dot:
            out.write(client.dot(args.sql) + "\n")
            return 0
        result = client.query(args.sql, server_deadline_s=args.deadline)
        if result.kind == "rows":
            out.write("\t".join(result.columns) + "\n")
            for row in result.rows:
                out.write("\t".join(str(v) for v in row) + "\n")
            out.write(f"-- {len(result.rows)} row(s) "
                      f"[{result.query_id}]\n")
        else:
            out.write(f"-- {result.kind}: {result.affected} row(s) "
                      f"[{result.query_id}]\n")
    return 0


def _cmd_watch(args, out) -> int:
    from repro.server import MClient

    with MClient(host=args.host, port=args.port) as client:
        sub = client.subscribe(from_seq=args.from_seq,
                               query_id=args.query_id,
                               buffer=args.buffer)
        out.write(f"subscribed as {sub.subscriber_id} "
                  f"(next_seq={sub.next_seq}, missed={sub.missed})\n")
        out.flush()
        try:
            for entry in sub.entries(max_seconds=args.max_seconds,
                                     until_end=args.until_end):
                out.write(f"{entry['seq']}\t{entry['kind']}\t"
                          f"{entry['query_id']}\t{entry['line']}\n")
                out.flush()
        except KeyboardInterrupt:
            pass
        summary = sub.stop()
        out.write(f"-- {summary.get('delivered', 0)} delivered, "
                  f"{summary.get('dropped', 0)} dropped, "
                  f"{summary.get('missed', 0)} missed "
                  f"(last_seq={sub.last_seq})\n")
    return 0 if sub.received else 1


def _cmd_listen(args, out) -> int:
    from repro.core.textual import TextualStethoscope
    from repro.profiler import EventFilter

    event_filter = None
    if args.status:
        event_filter = EventFilter(statuses={args.status})
    textual = TextualStethoscope()
    connection = textual.connect("server", event_filter,
                                 port=args.port)
    out.write(f"textual stethoscope listening on UDP {connection.port}\n")
    out.flush()
    deadline = time.monotonic() + args.timeout
    try:
        while time.monotonic() < deadline and not connection.ended:
            connection.drain(timeout=0.1)
    except KeyboardInterrupt:
        pass
    if connection.dot_lines:
        connection.write_dot_file(args.dot_file)
        out.write(f"wrote {args.dot_file}\n")
    count = connection.write_trace_file(args.trace_file)
    out.write(f"wrote {args.trace_file} ({count} events, "
              f"{connection.dropped} filtered, "
              f"{connection.malformed} malformed)\n")
    textual.close()
    return 0 if count or connection.dot_lines else 1


def _cmd_offline(args, out) -> int:
    from repro.core.session import Stethoscope

    session = Stethoscope.offline(args.dot_file, args.trace_file,
                                  threshold_usec=args.threshold)
    session.replay.run_to_end()
    out.write(f"plan: {session.graph.node_count()} nodes, "
              f"{session.graph.edge_count()} edges\n")
    out.write(f"trace: {len(session.events)} events, coverage "
              f"{session.trace_map.coverage():.0%}\n")
    colored = sorted(session.painter.rendered.items())
    if colored:
        out.write("coloured nodes:\n")
        for node_id, color in colored:
            out.write(f"  {node_id}: {color.to_hex()}\n")
    out.write("\nbird's-eye clustering:\n")
    out.write(session.birdseye() + "\n")
    profile = session.parallelism()
    out.write(f"\nparallelism: {profile.threads_used} thread(s), "
              f"speedup {profile.speedup_vs_serial:.2f}x\n")
    if args.svg:
        session.save_svg(args.svg)
        out.write(f"wrote {args.svg}\n")
    if args.ascii:
        out.write(session.render_ascii() + "\n")
    return 0


def _cmd_screenshot(args, out) -> int:
    from repro.core.session import Stethoscope
    from repro.viz.raster import screenshot

    session = Stethoscope.offline(args.dot_file, args.trace_file,
                                  threshold_usec=args.threshold)
    if args.gradient:
        session.apply_gradient_coloring()
    else:
        session.replay.run_to_end()
    screenshot(session.space, args.output,
               width=args.width, height=args.height)
    out.write(f"wrote {args.output} ({args.width}x{args.height})\n")
    return 0


def _cmd_analyze(args, out) -> int:
    from repro.core.microanalysis import TraceAnalyzer
    from repro.profiler import read_trace

    analyzer = TraceAnalyzer(read_trace(args.trace_file))
    if args.csv:
        out.write(analyzer.to_csv() + "\n")
        return 0
    summary = analyzer.summary()
    out.write(f"events: {summary['events']}  instructions: "
              f"{summary['instructions']}\n")
    out.write(f"makespan: {summary['makespan_usec']} usec  "
              f"p50: {summary['p50_usec']}  p95: {summary['p95_usec']}  "
              f"p99: {summary['p99_usec']}\n\n")
    out.write(f"{'pc':>5} {'execs':>5} {'total':>9} {'mean':>9}  stmt\n")
    for stats in analyzer.per_instruction()[: args.top]:
        out.write(f"{stats.pc:>5} {stats.executions:>5} "
                  f"{stats.total_usec:>9} {stats.mean_usec:>9.1f}  "
                  f"{stats.stmt[:60]}\n")
    return 0


def _cmd_datagen(args, out) -> int:
    from repro.storage import Catalog
    from repro.storage.persist import save_catalog
    from repro.tpch import populate

    catalog = Catalog()
    counts = populate(catalog, scale_factor=args.scale, seed=args.seed)
    rows = save_catalog(catalog, args.path)
    out.write(f"wrote {args.path}: {rows} rows "
              f"({counts['lineitem']} lineitems)\n")
    return 0


def _cmd_metrics(args, out) -> int:
    from repro.metrics import render_snapshot, render_text

    if args.port is None:
        out.write(render_text())
        return 0
    from repro.server import MClient

    with MClient(host=args.host, port=args.port) as client:
        out.write(render_snapshot(client.stats()))
    return 0


def _render_stats(payload, out, top: int) -> None:
    store = payload.get("stats_store") or {}
    out.write("stats store:\n")
    for key in ("entries", "query_entries", "capacity", "alpha",
                "observations", "evictions"):
        if key in store:
            out.write(f"  {key}: {store[key]}\n")
    entries = (payload.get("stats_top") or [])[:top]
    if entries:
        out.write("hottest signatures (EWMA usec, selectivity, n):\n")
        for entry in entries:
            sel = entry.get("sel")
            sel_text = "-" if sel is None else f"{sel:.4f}"
            out.write(f"  {entry['lat']:>10.1f}  {sel_text:>8}  "
                      f"{entry['n']:>6}  {entry['key']}\n")
    cache = payload.get("plan_cache") or {}
    if cache:
        out.write("plan cache:\n")
        for key in ("size", "capacity", "hits", "misses", "evictions",
                    "drift_evictions"):
            if key in cache:
                out.write(f"  {key}: {cache[key]}\n")
    plans = payload.get("plan_entries") or []
    if plans:
        out.write("cached plans (hits, age s, recorded/last usec, "
                  "drift):\n")
        for plan in plans:
            recorded = plan.get("recorded_usec")
            last = plan.get("last_usec")
            drift = plan.get("drift")
            out.write(
                f"  {plan['hits']:>5}  {plan['age_s']:>8.1f}  "
                f"{'-' if recorded is None else round(recorded)}"
                f"/{'-' if last is None else round(last)}  "
                f"{'-' if drift is None else drift}  "
                f"[{plan['pipeline']} w={plan['workers']}] "
                f"{plan['sql']}\n")


def _cmd_stats(args, out) -> int:
    if args.snapshot:
        from repro.stats import StatsStore

        store = StatsStore.load(args.snapshot)
        _render_stats({"stats_store": store.summary(),
                       "stats_top": store.top_entries(args.top)},
                      out, args.top)
        return 0
    if args.port is None:
        out.write("error: pass --port for a live server or --snapshot "
                  "for an on-disk stats file\n")
        return 2
    from repro.server import MClient

    with MClient(host=args.host, port=args.port) as client:
        _render_stats(client.stats_payload(), out, args.top)
    return 0


def _cmd_chaos(args, out) -> int:
    import tempfile

    from repro.faults.chaos import ChaosReport, run_case, run_sweep

    mixes = args.mix if args.mix else None
    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.base_seed, args.base_seed + args.seeds))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        if args.spec is not None:
            # single explicit spec: build the server once, run the cases
            from repro.server.database import Database
            from repro.server.mserver import Mserver
            from repro.tpch import populate

            label = (mixes or ["custom"])[0]
            database = Database(workers=2, mitosis_threshold=50)
            populate(database.catalog, scale_factor=args.scale, seed=3)
            report = ChaosReport()
            with Mserver(database) as server:
                for seed in seeds:
                    report.cases.append(run_case(
                        server, seed, label, spec=args.spec,
                        workdir=workdir, wall_cap_s=args.wall_cap))
        else:
            report = run_sweep(
                seeds, mixes, scale=args.scale, workdir=workdir,
                wall_cap_s=args.wall_cap,
                log=lambda line: (out.write(line + "\n"), out.flush()),
            )
    out.write(report.render() + "\n")
    return 0 if report.ok else 1


def _cmd_checkpoint(args, out) -> int:
    from repro.storage.durable import DurableEngine

    engine = DurableEngine(args.wal_dir)
    try:
        out.write(engine.report.describe() + "\n")
        report = engine.checkpoint()
        out.write(f"checkpoint at lsn {report.lsn}: {report.path} "
                  f"({report.files} column files, {report.rows} rows, "
                  f"{report.bytes} bytes); wal truncated\n")
    finally:
        engine.close()
    return 0


def _cmd_recover(args, out) -> int:
    from repro.storage.durable import recover

    catalog, report = recover(args.wal_dir)
    out.write(report.describe() + "\n")
    for schema in catalog.schemas.values():
        for table in schema.tables.values():
            out.write(f"  {schema.name}.{table.name}: "
                      f"{table.row_count()} rows, "
                      f"{len(table.columns)} columns\n")
    # lossy recovery (a torn/corrupt tail was truncated) is a success
    # for the engine but an event for the operator — give scripts a
    # distinct exit code instead of burying it in the report text
    return 3 if report.torn else 0


def _cmd_promote(args, out) -> int:
    from repro.server import MClient

    with MClient(host=args.host, port=args.port) as client:
        status = client.promote()
    if status.get("promoted"):
        out.write(f"promoted {status.get('addr', '')} to primary at "
                  f"epoch {status.get('epoch')} "
                  f"(dropped {status.get('dropped_records', 0)} "
                  f"unacked record(s))\n")
    else:
        out.write(f"{status.get('addr', '')} is already primary "
                  f"(epoch {status.get('epoch')})\n")
    return 0


def _cmd_repl_status(args, out) -> int:
    from repro.server import MClient

    with MClient(host=args.host, port=args.port) as client:
        status = client.repl_status()
    for key in ("role", "addr", "primary", "epoch", "durable_lsn",
                "checkpoint_lsn", "lag_records", "lag_bytes",
                "last_contact_s", "records_applied", "failovers"):
        if key in status:
            out.write(f"{key}: {status[key]}\n")
    peers = status.get("peers") or []
    out.write(f"peers: {', '.join(peers) if peers else '(none)'}\n")
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "query": _cmd_query,
    "watch": _cmd_watch,
    "listen": _cmd_listen,
    "offline": _cmd_offline,
    "screenshot": _cmd_screenshot,
    "analyze": _cmd_analyze,
    "datagen": _cmd_datagen,
    "metrics": _cmd_metrics,
    "stats": _cmd_stats,
    "chaos": _cmd_chaos,
    "checkpoint": _cmd_checkpoint,
    "recover": _cmd_recover,
    "promote": _cmd_promote,
    "repl-status": _cmd_repl_status,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except Exception as exc:  # surface cleanly at the CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
