"""TPC-H substrate: schema, deterministic data generator and query set.

The paper demonstrates Stethoscope on "long running TPC-H queries".  This
package provides a scaled-down, fully deterministic stand-in for the TPC-H
``dbgen`` tool plus a set of TPC-H-derived queries expressed in the SQL
dialect of :mod:`repro.sqlfe`.

Scale: ``scale_factor=1.0`` produces 6 000 lineitem rows (1/1000 of real
TPC-H) so that examples and benchmarks run in seconds while keeping the
real schema, key relationships and value distributions that give plans
their characteristic shapes.
"""

from repro.tpch.datagen import populate
from repro.tpch.queries import QUERIES, query_sql
from repro.tpch.schema import create_tpch_schema

__all__ = ["QUERIES", "create_tpch_schema", "populate", "query_sql"]
