"""The TPC-H schema (all eight tables), mapped onto MAL atom types."""

from __future__ import annotations

from repro.storage.catalog import Catalog

#: (table, [(column, sql type)]) in TPC-H order.
TPCH_TABLES = [
    ("region", [
        ("r_regionkey", "integer"),
        ("r_name", "varchar(25)"),
        ("r_comment", "varchar(152)"),
    ]),
    ("nation", [
        ("n_nationkey", "integer"),
        ("n_name", "varchar(25)"),
        ("n_regionkey", "integer"),
        ("n_comment", "varchar(152)"),
    ]),
    ("supplier", [
        ("s_suppkey", "integer"),
        ("s_name", "varchar(25)"),
        ("s_address", "varchar(40)"),
        ("s_nationkey", "integer"),
        ("s_phone", "varchar(15)"),
        ("s_acctbal", "decimal(15,2)"),
        ("s_comment", "varchar(101)"),
    ]),
    ("customer", [
        ("c_custkey", "integer"),
        ("c_name", "varchar(25)"),
        ("c_address", "varchar(40)"),
        ("c_nationkey", "integer"),
        ("c_phone", "varchar(15)"),
        ("c_acctbal", "decimal(15,2)"),
        ("c_mktsegment", "varchar(10)"),
        ("c_comment", "varchar(117)"),
    ]),
    ("part", [
        ("p_partkey", "integer"),
        ("p_name", "varchar(55)"),
        ("p_mfgr", "varchar(25)"),
        ("p_brand", "varchar(10)"),
        ("p_type", "varchar(25)"),
        ("p_size", "integer"),
        ("p_container", "varchar(10)"),
        ("p_retailprice", "decimal(15,2)"),
        ("p_comment", "varchar(23)"),
    ]),
    ("partsupp", [
        ("ps_partkey", "integer"),
        ("ps_suppkey", "integer"),
        ("ps_availqty", "integer"),
        ("ps_supplycost", "decimal(15,2)"),
        ("ps_comment", "varchar(199)"),
    ]),
    ("orders", [
        ("o_orderkey", "integer"),
        ("o_custkey", "integer"),
        ("o_orderstatus", "varchar(1)"),
        ("o_totalprice", "decimal(15,2)"),
        ("o_orderdate", "date"),
        ("o_orderpriority", "varchar(15)"),
        ("o_clerk", "varchar(15)"),
        ("o_shippriority", "integer"),
        ("o_comment", "varchar(79)"),
    ]),
    ("lineitem", [
        ("l_orderkey", "integer"),
        ("l_partkey", "integer"),
        ("l_suppkey", "integer"),
        ("l_linenumber", "integer"),
        ("l_quantity", "decimal(15,2)"),
        ("l_extendedprice", "decimal(15,2)"),
        ("l_discount", "decimal(15,2)"),
        ("l_tax", "decimal(15,2)"),
        ("l_returnflag", "varchar(1)"),
        ("l_linestatus", "varchar(1)"),
        ("l_shipdate", "date"),
        ("l_commitdate", "date"),
        ("l_receiptdate", "date"),
        ("l_shipinstruct", "varchar(25)"),
        ("l_shipmode", "varchar(10)"),
        ("l_comment", "varchar(44)"),
    ]),
]


def create_tpch_schema(catalog: Catalog, schema: str = "sys") -> None:
    """Create all eight TPC-H tables in ``schema`` (default ``sys``)."""
    for table, columns in TPCH_TABLES:
        catalog.create_table_from_sql_types(table, columns, schema=schema)
