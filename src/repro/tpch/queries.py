"""TPC-H derived queries in the supported SQL dialect.

The official TPC-H text is adapted where our dialect lacks a feature
(no subqueries, no string concatenation); every adaptation keeps the
plan-shape essentials — join graph, predicate structure, aggregation —
that the Stethoscope demonstrations rely on.  ``demo`` is the paper's own
Figure 1 query.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ReproError

QUERIES: Dict[str, str] = {
    # The exact query from the paper (Section 2).
    "demo": "select l_tax from lineitem where l_partkey = 1",

    # Q1: pricing summary report.
    "q1": """
        select
            l_returnflag,
            l_linestatus,
            sum(l_quantity) as sum_qty,
            sum(l_extendedprice) as sum_base_price,
            sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
            sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
            avg(l_quantity) as avg_qty,
            avg(l_extendedprice) as avg_price,
            avg(l_discount) as avg_disc,
            count(*) as count_order
        from lineitem
        where l_shipdate <= date '1998-12-01' - interval '90' day
        group by l_returnflag, l_linestatus
        order by l_returnflag, l_linestatus
    """,

    # Q3: shipping priority.
    "q3": """
        select
            l_orderkey,
            sum(l_extendedprice * (1 - l_discount)) as revenue,
            o_orderdate,
            o_shippriority
        from customer, orders, lineitem
        where c_mktsegment = 'BUILDING'
          and c_custkey = o_custkey
          and l_orderkey = o_orderkey
          and o_orderdate < date '1995-03-15'
          and l_shipdate > date '1995-03-15'
        group by l_orderkey, o_orderdate, o_shippriority
        order by revenue desc, o_orderdate
        limit 10
    """,

    # Q4: order priority checking.  The official EXISTS correlation on
    # l_orderkey = o_orderkey is semantically an uncorrelated IN here.
    "q4": """
        select
            o_orderpriority,
            count(*) as order_count
        from orders
        where o_orderdate >= date '1993-07-01'
          and o_orderdate < date '1993-07-01' + interval '3' month
          and o_orderkey in (
                select l_orderkey
                from lineitem
                where l_commitdate < l_receiptdate
              )
        group by o_orderpriority
        order by o_orderpriority
    """,

    # Q5: local supplier volume.
    "q5": """
        select
            n_name,
            sum(l_extendedprice * (1 - l_discount)) as revenue
        from customer, orders, lineitem, supplier, nation, region
        where c_custkey = o_custkey
          and l_orderkey = o_orderkey
          and l_suppkey = s_suppkey
          and c_nationkey = s_nationkey
          and s_nationkey = n_nationkey
          and n_regionkey = r_regionkey
          and r_name = 'ASIA'
          and o_orderdate >= date '1994-01-01'
          and o_orderdate < date '1994-01-01' + interval '1' year
        group by n_name
        order by revenue desc
    """,

    # Q6: forecasting revenue change.
    "q6": """
        select sum(l_extendedprice * l_discount) as revenue
        from lineitem
        where l_shipdate >= date '1994-01-01'
          and l_shipdate < date '1994-01-01' + interval '1' year
          and l_discount between 0.05 and 0.07
          and l_quantity < 24
    """,

    # Q10: returned item reporting (top 20 customers).
    "q10": """
        select
            c_custkey,
            c_name,
            sum(l_extendedprice * (1 - l_discount)) as revenue,
            c_acctbal,
            n_name,
            c_phone
        from customer, orders, lineitem, nation
        where c_custkey = o_custkey
          and l_orderkey = o_orderkey
          and o_orderdate >= date '1993-10-01'
          and o_orderdate < date '1993-10-01' + interval '3' month
          and l_returnflag = 'R'
          and c_nationkey = n_nationkey
        group by c_custkey, c_name, c_acctbal, c_phone, n_name
        order by revenue desc
        limit 20
    """,

    # Q12: shipping modes and order priority.
    "q12": """
        select
            l_shipmode,
            sum(case when o_orderpriority = '1-URGENT'
                       or o_orderpriority = '2-HIGH'
                     then 1 else 0 end) as high_line_count,
            sum(case when o_orderpriority <> '1-URGENT'
                      and o_orderpriority <> '2-HIGH'
                     then 1 else 0 end) as low_line_count
        from orders, lineitem
        where o_orderkey = l_orderkey
          and l_shipmode in ('MAIL', 'SHIP')
          and l_commitdate < l_receiptdate
          and l_shipdate < l_commitdate
          and l_receiptdate >= date '1994-01-01'
          and l_receiptdate < date '1994-01-01' + interval '1' year
        group by l_shipmode
        order by l_shipmode
    """,

    # Q14: promotion effect (percentage of promo revenue).
    "q14": """
        select
            100.00 * sum(case when p_type like 'PROMO%'
                              then l_extendedprice * (1 - l_discount)
                              else 0 end)
                   / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
        from lineitem, part
        where l_partkey = p_partkey
          and l_shipdate >= date '1995-09-01'
          and l_shipdate < date '1995-09-01' + interval '1' month
    """,

    # Q18: large volume customers (uncorrelated IN subquery with
    # GROUP BY + HAVING).  The quantity threshold is scaled from the
    # official 300 down to 150 for the 1/1000-size data.
    "q18": """
        select
            c_name,
            c_custkey,
            o_orderkey,
            o_orderdate,
            o_totalprice,
            sum(l_quantity) as total_qty
        from customer, orders, lineitem
        where o_orderkey in (
                select l_orderkey
                from lineitem
                group by l_orderkey
                having sum(l_quantity) > 150
              )
          and c_custkey = o_custkey
          and o_orderkey = l_orderkey
        group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
        order by o_totalprice desc, o_orderdate
        limit 100
    """,

    # Q17-inspired (uncorrelated scalar-subquery variant): lineitems
    # under a fraction of the global average quantity.  The official Q17
    # correlates per part; correlation is out of dialect scope, so the
    # global-average variant keeps the scalar-subquery plan shape.
    "q17": """
        select sum(l_extendedprice) / 7.0 as avg_yearly
        from lineitem
        where l_quantity < 0.5 * (select avg(l_quantity) from lineitem)
    """,

    # Q19 (lite): discounted revenue from quantity/brand bands.
    "q19": """
        select sum(l_extendedprice * (1 - l_discount)) as revenue
        from lineitem, part
        where l_partkey = p_partkey
          and l_quantity >= 1 and l_quantity <= 30
          and p_size between 1 and 15
          and l_shipmode in ('AIR', 'REG AIR')
          and l_shipinstruct = 'DELIVER IN PERSON'
    """,
}


def query_sql(name: str) -> str:
    """Look up a TPC-H query's SQL text by short name (``q1``, ``demo``...).

    Raises:
        ReproError: for unknown query names.
    """
    try:
        return QUERIES[name].strip()
    except KeyError:
        raise ReproError(
            f"unknown TPC-H query {name!r}; have {sorted(QUERIES)}"
        ) from None
