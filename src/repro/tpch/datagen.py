"""Deterministic scaled-down TPC-H data generator (a ``dbgen`` stand-in).

Row counts are 1/1000 of the official TPC-H sizes, so ``scale_factor=1``
yields ~6 000 lineitems — big enough to exercise every plan shape and the
mitosis optimizer, small enough for interactive runs.  A fixed-seed
``random.Random`` makes the database byte-identical across runs, which
keeps benchmark outputs and recorded traces reproducible.

Value distributions follow the TPC-H spec where it matters to query
selectivity: return flags, ship modes, market segments, date ranges
(1992-01-01 .. 1998-12-31 order dates), discounts 0.00-0.10, quantities
1-50, and foreign keys uniform over their parents.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List

from repro.storage.catalog import Catalog
from repro.tpch.schema import create_tpch_schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX"]
TYPES = [
    "STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED BRASS",
    "ECONOMY POLISHED STEEL", "PROMO BURNISHED NICKEL", "LARGE BRUSHED STEEL",
    "STANDARD POLISHED BRASS", "PROMO PLATED TIN", "ECONOMY ANODIZED NICKEL",
]
BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
NOUNS = ["packages", "requests", "accounts", "deposits", "foxes", "pinto beans",
         "instructions", "dependencies", "theodolites", "platelets"]
VERBS = ["sleep", "haggle", "nag", "wake", "cajole", "dazzle", "integrate",
         "boost", "doze", "detect"]

#: Rows per table at scale_factor=1 (1/1000 of official TPC-H).
BASE_ROWS = {
    "supplier": 10,
    "part": 200,
    "partsupp": 800,
    "customer": 150,
    "orders": 1500,
    "lineitem": 6005,  # ~4 lineitems per order on average
}

_ORDER_DATE_START = datetime.date(1992, 1, 1)
_ORDER_DATE_DAYS = (datetime.date(1998, 8, 2) - _ORDER_DATE_START).days


def _comment(rng: random.Random) -> str:
    return (
        f"{rng.choice(NOUNS)} {rng.choice(VERBS)} "
        f"{rng.choice(['quickly', 'slowly', 'furiously', 'carefully'])}"
    )


def populate(catalog: Catalog, scale_factor: float = 0.1,
             seed: int = 19920101, schema: str = "sys",
             create: bool = True) -> Dict[str, int]:
    """Create (optionally) and fill the TPC-H tables.

    Args:
        catalog: target catalog.
        scale_factor: relative size; 1.0 → ~6 000 lineitems.
        seed: RNG seed; the same seed always produces the same database.
        schema: schema name (default ``sys``).
        create: create the tables first (set False if already created).

    Returns:
        Mapping of table name to rows inserted.
    """
    rng = random.Random(seed)
    if create:
        create_tpch_schema(catalog, schema)
    sch = catalog.schema(schema)
    counts: Dict[str, int] = {}

    # Each table accumulates its rows in a list and bulk-loads them with
    # one insert_many call: the RNG is consumed in exactly the same order
    # as the old per-row inserts, so generated data stays byte-identical.
    region = sch.table("region")
    region.insert_many(
        [key, name, _comment(rng)] for key, name in enumerate(REGIONS)
    )
    counts["region"] = len(REGIONS)

    nation = sch.table("nation")
    nation.insert_many(
        [key, name, regionkey, _comment(rng)]
        for key, (name, regionkey) in enumerate(NATIONS)
    )
    counts["nation"] = len(NATIONS)

    def rows_for(table: str) -> int:
        return max(1, int(round(BASE_ROWS[table] * scale_factor)))

    n_supplier = rows_for("supplier")
    supplier = sch.table("supplier")
    supplier.insert_many([
        key, f"Supplier#{key:09d}", f"addr-{key}",
        rng.randrange(len(NATIONS)),
        f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}",
        round(rng.uniform(-999.99, 9999.99), 2), _comment(rng),
    ] for key in range(1, n_supplier + 1))
    counts["supplier"] = n_supplier

    n_part = rows_for("part")
    part = sch.table("part")
    part.insert_many([
        key, f"{rng.choice(NOUNS)} {rng.choice(VERBS)} part-{key}",
        f"Manufacturer#{rng.randrange(1, 6)}", rng.choice(BRANDS),
        rng.choice(TYPES), rng.randrange(1, 51), rng.choice(CONTAINERS),
        round(900 + (key % 200) + key / 10.0, 2), _comment(rng),
    ] for key in range(1, n_part + 1))
    counts["part"] = n_part

    n_partsupp = rows_for("partsupp")
    partsupp = sch.table("partsupp")
    partsupp.insert_many([
        (index % n_part) + 1,
        (index % n_supplier) + 1,
        rng.randrange(1, 10000),
        round(rng.uniform(1.0, 1000.0), 2),
        _comment(rng),
    ] for index in range(n_partsupp))
    counts["partsupp"] = n_partsupp

    n_customer = rows_for("customer")
    customer = sch.table("customer")
    customer.insert_many([
        key, f"Customer#{key:09d}", f"addr-{key}",
        rng.randrange(len(NATIONS)),
        f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}",
        round(rng.uniform(-999.99, 9999.99), 2),
        rng.choice(SEGMENTS), _comment(rng),
    ] for key in range(1, n_customer + 1))
    counts["customer"] = n_customer

    n_orders = rows_for("orders")
    orders = sch.table("orders")
    order_dates: List[datetime.date] = []
    order_rows: List[list] = []
    for key in range(1, n_orders + 1):
        order_date = _ORDER_DATE_START + datetime.timedelta(
            days=rng.randrange(_ORDER_DATE_DAYS)
        )
        order_dates.append(order_date)
        order_rows.append([
            key, rng.randrange(1, n_customer + 1),
            rng.choice(["O", "F", "P"]),
            0.0,  # patched below from lineitems
            order_date, rng.choice(PRIORITIES),
            f"Clerk#{rng.randrange(1, 1000):09d}", 0, _comment(rng),
        ])
    orders.insert_many(order_rows)
    counts["orders"] = n_orders

    n_lineitem = rows_for("lineitem")
    lineitem = sch.table("lineitem")
    totals = [0.0] * (n_orders + 1)
    lineitem_rows: List[list] = []
    for index in range(n_lineitem):
        orderkey = rng.randrange(1, n_orders + 1)
        order_date = order_dates[orderkey - 1]
        ship_date = order_date + datetime.timedelta(days=rng.randrange(1, 122))
        commit_date = order_date + datetime.timedelta(days=rng.randrange(30, 91))
        receipt_date = ship_date + datetime.timedelta(days=rng.randrange(1, 31))
        quantity = float(rng.randrange(1, 51))
        extended = round(quantity * rng.uniform(900.0, 1100.0), 2)
        discount = round(rng.randrange(0, 11) / 100.0, 2)
        tax = round(rng.randrange(0, 9) / 100.0, 2)
        returnflag = (
            rng.choice(["R", "A"]) if receipt_date <= datetime.date(1995, 6, 17)
            else "N"
        )
        linestatus = "F" if ship_date <= datetime.date(1995, 6, 17) else "O"
        lineitem_rows.append([
            orderkey, rng.randrange(1, n_part + 1),
            rng.randrange(1, n_supplier + 1), (index % 7) + 1,
            quantity, extended, discount, tax, returnflag, linestatus,
            ship_date, commit_date, receipt_date,
            rng.choice(SHIP_INSTRUCTIONS), rng.choice(SHIP_MODES),
            _comment(rng),
        ])
        totals[orderkey] += extended * (1 + tax) * (1 - discount)
    lineitem.insert_many(lineitem_rows)
    counts["lineitem"] = n_lineitem

    total_bat = orders.column("o_totalprice").bat
    key_bat = orders.column("o_orderkey").bat
    for position, orderkey in enumerate(key_bat.tail):
        total_bat.tail[position] = round(totals[orderkey], 2)
    total_bat._invalidate_caches()  # in-place patch bypassed append/extend

    return counts
