"""Engine-wide metrics and instrumentation (counters, gauges,
histograms, and a labeled-family registry).

Stethoscope's premise is observability of *query* execution; this
package makes the engine itself observable the same way.  The data model
is the Prometheus client core, scaled to this codebase: a process-wide
:class:`~repro.metrics.core.Registry` of labeled metric families
(:class:`~repro.metrics.core.Counter`,
:class:`~repro.metrics.core.Gauge`,
:class:`~repro.metrics.core.Histogram` with fixed bucket boundaries),
updated from the hot paths of the server, the MAL interpreter and
dataflow schedulers, the UDP profiler stream, the online monitor, and
the render queue.

Three ways out:

* :func:`snapshot` — a plain JSON-safe dict (also served by the
  Mserver's ``stats`` protocol verb);
* :func:`render_text` / ``python -m repro metrics`` — the text
  exposition format;
* :class:`~repro.metrics.reporter.PeriodicReporter` — a background
  thread snapshotting on an interval, used by the benches.

Every family is declared in :mod:`repro.metrics.families` and documented
in ``docs/metrics_reference.md``; ``tests/test_docs.py`` keeps the two
in lockstep.  ``python -m repro metrics`` in a fresh process prints the
whole catalog at zero.
"""

from repro.metrics import families  # noqa: F401  (registers every family)
from repro.metrics.core import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    REGISTRY,
    Registry,
    disabled,
    render_snapshot,
)
from repro.metrics.reporter import PeriodicReporter


def snapshot():
    """JSON-safe dict of every family in the process registry."""
    return REGISTRY.snapshot()


def render_text():
    """The process registry in the text exposition format."""
    return REGISTRY.render_text()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "PeriodicReporter",
    "REGISTRY",
    "Registry",
    "disabled",
    "render_snapshot",
    "render_text",
    "snapshot",
]
