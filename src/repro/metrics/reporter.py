"""Periodic metrics reporting: a background thread snapshotting the
registry on a fixed interval.

Benches and long-running servers use this to watch counters move without
polling by hand::

    with PeriodicReporter(interval_s=0.5) as reporter:
        ...  # run the workload
    print(len(reporter.snapshots), "snapshots collected")

A ``sink`` callable receives each snapshot dict; without one, snapshots
accumulate on :attr:`PeriodicReporter.snapshots`.  Pass a text stream as
``stream`` to get the text exposition written periodically instead.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.metrics.core import REGISTRY, Registry, render_snapshot

SnapshotSink = Callable[[Dict[str, Any]], None]


class PeriodicReporter:
    """Snapshots a registry every ``interval_s`` seconds on a daemon
    thread until stopped.

    Args:
        interval_s: seconds between snapshots.
        sink: callable receiving each snapshot dict.
        stream: text stream to write the exposition to instead.
        registry: registry to observe (the process default when omitted).
    """

    def __init__(self, interval_s: float = 1.0,
                 sink: Optional[SnapshotSink] = None,
                 stream=None,
                 registry: Registry = REGISTRY) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.registry = registry
        self.snapshots: List[Dict[str, Any]] = []
        self._sink = sink
        self._stream = stream
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def _report_once(self) -> None:
        snapshot = self.registry.snapshot()
        if self._sink is not None:
            self._sink(snapshot)
        elif self._stream is not None:
            self._stream.write(render_snapshot(snapshot))
            self._stream.flush()
        else:
            self.snapshots.append(snapshot)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._report_once()

    def start(self) -> "PeriodicReporter":
        """Start the reporter thread."""
        if self._thread is not None:
            raise RuntimeError("reporter already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self, final_report: bool = True) -> None:
        """Stop the thread; takes one last snapshot by default."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if final_report:
            self._report_once()

    def __enter__(self) -> "PeriodicReporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
