"""Every metric family the engine ships, declared in one place.

Centralising the declarations keeps the catalog discoverable (importing
:mod:`repro.metrics` registers everything, so ``python -m repro
metrics`` lists the full family set even in a fresh process) and lets
the docs-consistency gate in ``tests/test_docs.py`` verify that
``docs/metrics_reference.md`` documents *exactly* this set.

Subsystems import the family objects below and update them from their
hot paths; see the reference document for which code path moves which
family.
"""

from __future__ import annotations

from repro.metrics.core import REGISTRY

# --------------------------------------------------------------------------
# repro.server.mserver — the TCP front door
# --------------------------------------------------------------------------

SERVER_CONNECTIONS = REGISTRY.counter(
    "repro_server_connections_total",
    "TCP client connections accepted by the Mserver.",
    unit="connections",
)

SERVER_CONNECTIONS_ACTIVE = REGISTRY.gauge(
    "repro_server_connections_active",
    "Client connections currently being served.",
    unit="connections",
)

SERVER_REQUESTS = REGISTRY.counter(
    "repro_server_requests_total",
    "Protocol requests handled, by op (ping, query, cancel, queries, "
    "explain, dot, set, profiler, stats, quit).",
    labels=("op",),
    unit="requests",
)

SERVER_REQUEST_ERRORS = REGISTRY.counter(
    "repro_server_request_errors_total",
    "Requests that returned an error response, by op.",
    labels=("op",),
    unit="requests",
)

SERVER_QUERY_USEC = REGISTRY.histogram(
    "repro_server_query_usec",
    "Wall-clock latency of query ops as served (includes queueing in "
    "the admission controller).",
    unit="usec",
    buckets=(100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
             10_000_000.0),
)

# --------------------------------------------------------------------------
# repro.server.lifecycle — query supervision and admission control
# --------------------------------------------------------------------------

SERVER_QUERIES_ADMITTED = REGISTRY.counter(
    "repro_server_queries_admitted_total",
    "Queries that passed admission control and got an execution slot.",
    unit="queries",
)

SERVER_QUERIES_SHED = REGISTRY.counter(
    "repro_server_queries_shed_total",
    "Queries rejected by admission control, by reason (queue-full, "
    "queue-wait, stopping). Raised to the client as "
    "ServerOverloadedError.",
    labels=("reason",),
    unit="queries",
)

SERVER_QUERIES_CANCELLED = REGISTRY.counter(
    "repro_server_queries_cancelled_total",
    "Queries cancelled before completing, by source (client cancel op, "
    "watchdog deadline enforcement, drain shutdown, inline deadline or "
    "rss-budget checks).",
    labels=("source",),
    unit="queries",
)

SERVER_QUERY_DEADLINE_EXCEEDED = REGISTRY.counter(
    "repro_server_query_deadline_exceeded_total",
    "Queries force-cancelled because they ran past their server-side "
    "deadline (watchdog or inline discovery).",
    unit="queries",
)

SERVER_DRAINS = REGISTRY.counter(
    "repro_server_drains_total",
    "Graceful drain shutdowns, by outcome: clean (all in-flight "
    "queries finished inside the drain budget) or forced (stragglers "
    "were cancelled).",
    labels=("outcome",),
    unit="drains",
)

SERVER_ADMISSION_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_server_admission_queue_depth",
    "Queries currently waiting in the bounded admission queue for an "
    "execution slot.",
    unit="queries",
)

SERVER_QUERIES_ACTIVE = REGISTRY.gauge(
    "repro_server_queries_active",
    "Queries currently holding an execution slot (running, not "
    "queued).",
    unit="queries",
)

# --------------------------------------------------------------------------
# repro.server.database — the SQL→MAL plan cache
# --------------------------------------------------------------------------

PLAN_CACHE_HITS = REGISTRY.counter(
    "repro_plan_cache_hits_total",
    "SQL statements answered with a cached optimized MAL plan, "
    "skipping lexing, parsing, binding and the optimizer pipeline.",
    unit="plans",
)

PLAN_CACHE_MISSES = REGISTRY.counter(
    "repro_plan_cache_misses_total",
    "Cacheable SQL statements that had to be compiled because no "
    "current plan was cached (first sight, changed session settings, "
    "or a stale catalog fingerprint).",
    unit="plans",
)

PLAN_CACHE_EVICTIONS = REGISTRY.counter(
    "repro_plan_cache_evictions_total",
    "Cached plans dropped, by reason: lru (capacity pressure), "
    "invalidate (explicit DDL/DML invalidation clearing the cache), or "
    "drift (observed latency drifted >= 2x from the latency recorded "
    "when the plan was cached).",
    labels=("reason",),
    unit="plans",
)

PLAN_CACHE_SIZE = REGISTRY.gauge(
    "repro_plan_cache_size",
    "Optimized plans currently held by the plan cache.",
    unit="plans",
)

# --------------------------------------------------------------------------
# repro.mal — interpreter and dataflow schedulers
# --------------------------------------------------------------------------

MAL_EXECUTIONS = REGISTRY.counter(
    "repro_mal_executions_total",
    "MAL programs executed, by scheduler (interpreter, simulated, "
    "threaded).",
    labels=("scheduler",),
    unit="programs",
)

MAL_INSTRUCTIONS = REGISTRY.counter(
    "repro_mal_instructions_total",
    "MAL instructions executed, by module.",
    labels=("module",),
    unit="instructions",
)

MAL_INSTRUCTION_USEC = REGISTRY.histogram(
    "repro_mal_instruction_usec",
    "Modelled (virtual-clock) instruction durations, by module.",
    labels=("module",),
    unit="usec",
    buckets=(1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0, 10_000.0, 100_000.0),
)

MAL_WORKER_UTILIZATION = REGISTRY.histogram(
    "repro_mal_worker_utilization_percent",
    "Per-run worker utilisation: busy usec / (workers x makespan), as a "
    "percentage. Low values on multi-worker runs flag poorly "
    "parallelised plans (the paper's sequential anomaly).",
    unit="percent",
    buckets=(10.0, 25.0, 50.0, 75.0, 90.0, 100.0),
)

# --------------------------------------------------------------------------
# repro.mal.mpool — the process-based partition worker pool
# --------------------------------------------------------------------------

MPOOL_WORKERS = REGISTRY.gauge(
    "repro_mpool_workers",
    "Worker processes currently alive in the partition pool (0 when "
    "the pool is stopped or execution is in-process).",
    unit="workers",
)

MPOOL_TASKS = REGISTRY.counter(
    "repro_mpool_tasks_total",
    "Plan fragments dispatched to pool workers, by outcome (ok, "
    "error, crash).",
    labels=("outcome",),
    unit="tasks",
)

MPOOL_WORKER_RESTARTS = REGISTRY.counter(
    "repro_mpool_worker_restarts_total",
    "Worker processes re-forked after a crash, kill, or pool reset.",
    unit="restarts",
)

MPOOL_SHIP_BYTES = REGISTRY.counter(
    "repro_mpool_ship_bytes_total",
    "Serialized partition payload bytes crossing the pool pipes, by "
    "direction (to-worker, from-worker).",
    labels=("direction",),
    unit="bytes",
)

MPOOL_MERGE_USEC = REGISTRY.histogram(
    "repro_mpool_merge_usec",
    "Wall-clock time merging worker replies back into the plan "
    "environment (decode plus bind), per pool-executed plan.",
    unit="usec",
    buckets=(50.0, 250.0, 1_000.0, 5_000.0, 25_000.0, 100_000.0),
)

MPOOL_FALLBACKS = REGISTRY.counter(
    "repro_mpool_fallbacks_total",
    "Plans the pool declined and sent back to in-process execution, "
    "by reason (workers, no-fragments, small-plan, impure-input).",
    labels=("reason",),
    unit="plans",
)

# --------------------------------------------------------------------------
# repro.storage.durable — WAL, checkpoints and crash recovery
# --------------------------------------------------------------------------

PERSIST_WAL_APPENDS = REGISTRY.counter(
    "repro_persist_wal_appends_total",
    "Records appended to the write-ahead log, by kind (ddl, insert).",
    labels=("kind",),
    unit="records",
)

PERSIST_WAL_BYTES = REGISTRY.counter(
    "repro_persist_wal_bytes_total",
    "Bytes written to the write-ahead log (headers plus payloads).",
    unit="bytes",
)

PERSIST_GROUP_COMMIT_BATCH = REGISTRY.histogram(
    "repro_persist_group_commit_batch",
    "Records made durable per fsync. 1 means per-record fsync; higher "
    "values mean the commit window batched concurrent writers.",
    unit="records",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
)

PERSIST_CHECKPOINTS = REGISTRY.counter(
    "repro_persist_checkpoints_total",
    "Checkpoint attempts, by outcome (ok, failed). A failed checkpoint "
    "never truncates the WAL, so durability is unaffected.",
    labels=("outcome",),
    unit="checkpoints",
)

PERSIST_RECOVERIES = REGISTRY.counter(
    "repro_persist_recoveries_total",
    "Crash recoveries performed on database open, by outcome (clean: "
    "no torn tail; torn: a damaged WAL tail was dropped).",
    labels=("outcome",),
    unit="recoveries",
)

PERSIST_RECOVERED_RECORDS = REGISTRY.counter(
    "repro_persist_recovered_records_total",
    "WAL records replayed into the catalog during recovery, by kind "
    "(ddl, insert).",
    labels=("kind",),
    unit="records",
)

PERSIST_TORN_RECORDS_DROPPED = REGISTRY.counter(
    "repro_persist_torn_records_dropped_total",
    "Torn or corrupt WAL records recovery stopped at and truncated "
    "away (never acknowledged, so dropping them loses nothing).",
    unit="records",
)

# --------------------------------------------------------------------------
# repro.replication — WAL shipping, read replicas and failover
# --------------------------------------------------------------------------

REPL_ROLE = REGISTRY.gauge(
    "repro_repl_role",
    "This node's replication role: 1 when primary, 0 when replica. "
    "Labelled by the node's advertised address (several nodes may "
    "share one process under test).",
    labels=("node",),
)

REPL_EPOCH = REGISTRY.gauge(
    "repro_repl_epoch",
    "The replication epoch persisted in the node's WAL directory. "
    "Promotion bumps it; a stream carrying a lower epoch is fenced.",
    labels=("node",),
)

REPL_LAG_RECORDS = REGISTRY.gauge(
    "repro_repl_lag_records",
    "How many committed WAL records the replica still has to apply "
    "(primary durable LSN minus replica durable LSN).",
    labels=("node",),
    unit="records",
)

REPL_LAG_BYTES = REGISTRY.gauge(
    "repro_repl_lag_bytes",
    "Committed WAL bytes the replica has not yet applied, as of the "
    "last sync response.",
    labels=("node",),
    unit="bytes",
)

REPL_LAG_SECONDS = REGISTRY.gauge(
    "repro_repl_lag_seconds",
    "Seconds since the replica last heard from its primary. The "
    "heartbeat-timeout election fires off this clock.",
    labels=("node",),
    unit="seconds",
)

REPL_RECORDS_APPLIED = REGISTRY.counter(
    "repro_repl_records_applied_total",
    "WAL records received from the primary and applied through the "
    "recovery path, by kind (ddl, insert).",
    labels=("kind",),
    unit="records",
)

REPL_FENCED = REGISTRY.counter(
    "repro_repl_fenced_total",
    "Replication messages rejected by epoch fencing, by side (follower: "
    "a deposed primary's stream carried a stale epoch; primary: a "
    "request proved this node was deposed).",
    labels=("side",),
    unit="messages",
)

REPL_FAILOVERS = REGISTRY.counter(
    "repro_repl_failovers_total",
    "Promotions to primary, by trigger (manual: the promote verb; "
    "auto: heartbeat-timeout election).",
    labels=("trigger",),
    unit="promotions",
)

# --------------------------------------------------------------------------
# repro.profiler.stream — the UDP trace stream
# --------------------------------------------------------------------------

UDP_DATAGRAMS_SENT = REGISTRY.counter(
    "repro_udp_datagrams_sent_total",
    "Datagrams shipped by UdpEmitter, by line kind (event, dot, end).",
    labels=("kind",),
    unit="datagrams",
)

UDP_BYTES_SENT = REGISTRY.counter(
    "repro_udp_bytes_sent_total",
    "Payload bytes shipped by UdpEmitter.",
    unit="bytes",
)

UDP_SEND_ERRORS = REGISTRY.counter(
    "repro_udp_send_errors_total",
    "Datagrams dropped because sendto failed (unreachable receiver, "
    "closed socket). The stream is lossy by design; this counts the "
    "losses the sender can see.",
    unit="datagrams",
)

UDP_DATAGRAMS_RECEIVED = REGISTRY.counter(
    "repro_udp_datagrams_received_total",
    "Datagrams drained off the socket by UdpReceiver.",
    unit="datagrams",
)

UDP_RECEIVE_BACKLOG = REGISTRY.gauge(
    "repro_udp_receive_backlog",
    "Lines sitting in the UdpReceiver queue, waiting for the consumer.",
    unit="lines",
)

# --------------------------------------------------------------------------
# repro.profiler.broadcast — the live trace broadcast hub
# --------------------------------------------------------------------------

BROADCAST_PUBLISHED = REGISTRY.counter(
    "repro_broadcast_published_total",
    "Entries published into the trace broadcast hub, by line kind "
    "(event, dot, end). Each profiler event is published exactly once "
    "regardless of how many subscribers fan out from it.",
    labels=("kind",),
    unit="entries",
)

BROADCAST_DELIVERED = REGISTRY.counter(
    "repro_broadcast_delivered_total",
    "Entries handed to subscribers by the hub (published entries times "
    "the subscribers that kept up).",
    unit="entries",
)

BROADCAST_DROPPED = REGISTRY.counter(
    "repro_broadcast_dropped_total",
    "Entries a subscriber lost, by reason: slow-subscriber (its bounded "
    "buffer overflowed, oldest entry evicted) or resume-gap (a "
    "subscribe from=<seq> asked for entries older than the hub "
    "retains).",
    labels=("reason",),
    unit="entries",
)

BROADCAST_SUBSCRIBERS_ACTIVE = REGISTRY.gauge(
    "repro_broadcast_subscribers_active",
    "Subscriptions currently attached to the trace broadcast hub.",
    unit="subscribers",
)

BROADCAST_SUBSCRIPTIONS = REGISTRY.counter(
    "repro_broadcast_subscriptions_total",
    "Subscribe attempts, by outcome: accepted (fresh subscription), "
    "resumed (carried a from=<seq> resume point), refused (the "
    "max-subscribers cap was hit).",
    labels=("outcome",),
    unit="subscriptions",
)

BROADCAST_SUBSCRIBER_LAG = REGISTRY.histogram(
    "repro_broadcast_subscriber_lag_events",
    "How far behind the hub's newest sequence number a subscriber was "
    "at each delivery batch, in entries. Zero means the subscriber "
    "keeps up; values near the buffer size mean drop-oldest is close.",
    unit="events",
    buckets=(1.0, 8.0, 32.0, 128.0, 512.0, 2_048.0, 8_192.0),
)

# --------------------------------------------------------------------------
# repro.faults — deterministic fault injection
# --------------------------------------------------------------------------

FAULT_INJECTIONS = REGISTRY.counter(
    "repro_fault_injections_total",
    "Fault decisions that fired, by injection site and action (e.g. "
    "udp.emit/drop, server.loop:reset, scheduler.worker:stall). Zero "
    "unless a FaultPlan is armed.",
    labels=("site", "action"),
    unit="faults",
)

# --------------------------------------------------------------------------
# repro.server.client — the hardened MClient
# --------------------------------------------------------------------------

CLIENT_RETRIES = REGISTRY.counter(
    "repro_client_retries_total",
    "Requests re-sent by MClient after a connection failure, by op.",
    labels=("op",),
    unit="retries",
)

CLIENT_DEADLINE_EXCEEDED = REGISTRY.counter(
    "repro_client_deadline_exceeded_total",
    "Client requests abandoned because the per-request deadline passed "
    "(raised as RequestTimeoutError).",
    unit="requests",
)

# --------------------------------------------------------------------------
# repro.core.online / repro.core.mapping — the online monitor
# --------------------------------------------------------------------------

ONLINE_RUNS = REGISTRY.counter(
    "repro_online_runs_total",
    "Online monitoring sessions started.",
    unit="runs",
)

ONLINE_EVENTS = REGISTRY.counter(
    "repro_online_events_total",
    "Trace events consumed by the online monitor.",
    unit="events",
)

ONLINE_SAMPLED_OUT = REGISTRY.counter(
    "repro_online_sampled_out_total",
    "Colour actions dropped by backlog-triggered sampling (GREEN "
    "repaints shed while the render queue is saturated).",
    unit="actions",
)

ONLINE_DEGRADED = REGISTRY.counter(
    "repro_online_degraded_runs_total",
    "Online sessions that finished in degraded mode (lost END marker, "
    "sequence gaps, or damaged plan shipment) instead of hanging.",
    unit="runs",
)

ONLINE_SEQUENCE_GAPS = REGISTRY.counter(
    "repro_online_sequence_gaps_total",
    "Missing trace sequence numbers detected by the degraded-mode "
    "stream analysis (events lost between profiler and monitor).",
    unit="events",
)

ONLINE_INTERPOLATED = REGISTRY.counter(
    "repro_online_interpolated_events_total",
    "Synthetic start events interpolated for done events whose start "
    "half was lost, so pair coloring still sees both halves.",
    unit="events",
)

ONLINE_COMPLETENESS = REGISTRY.histogram(
    "repro_online_trace_completeness_percent",
    "Per-query trace completeness: distinct events received over "
    "events expected from the observed sequence range, as a "
    "percentage. 100 on clean runs.",
    unit="percent",
    buckets=(50.0, 75.0, 90.0, 95.0, 99.0, 100.0),
)

MAPPING_LOOKUPS = REGISTRY.counter(
    "repro_mapping_lookups_total",
    "Trace-event pc to dot-node mappings, by result (hit, miss). A miss "
    "means the trace and plan do not belong together.",
    labels=("result",),
    unit="lookups",
)

# --------------------------------------------------------------------------
# repro.viz.events — the render queue
# --------------------------------------------------------------------------

RENDER_TASKS_POSTED = REGISTRY.counter(
    "repro_render_tasks_posted_total",
    "Render tasks posted to the event-dispatch queue.",
    unit="tasks",
)

RENDER_TASKS_EXECUTED = REGISTRY.counter(
    "repro_render_tasks_executed_total",
    "Render tasks actually executed by the queue.",
    unit="tasks",
)

RENDER_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_render_queue_depth",
    "Render tasks waiting in the event-dispatch queue (the backlog the "
    "online sampler watches).",
    unit="tasks",
)

RENDER_QUEUE_WAIT_MS = REGISTRY.histogram(
    "repro_render_queue_wait_ms",
    "Queue latency per executed render task (execution minus posting, "
    "on the queue's clock).",
    unit="ms",
    buckets=(1.0, 10.0, 50.0, 150.0, 500.0, 1_500.0, 5_000.0),
)

# --------------------------------------------------------------------------
# repro.stats — the runtime statistics store feeding adaptive optimization
# --------------------------------------------------------------------------

STATS_OBSERVATIONS = REGISTRY.counter(
    "repro_stats_observations_total",
    "Profiler observations folded into the stats store, by kind: "
    "instruction (per-instruction latency/selectivity) or query "
    "(whole-query latency per plan variant).",
    labels=("kind",),
    unit="observations",
)

STATS_ENTRIES = REGISTRY.gauge(
    "repro_stats_entries",
    "EWMA entries currently held by the stats store (instruction "
    "signatures plus query variants).",
    unit="entries",
)

STATS_EVICTIONS = REGISTRY.counter(
    "repro_stats_evictions_total",
    "Stats-store entries dropped under LRU capacity pressure.",
    unit="entries",
)

STATS_SNAPSHOTS = REGISTRY.counter(
    "repro_stats_snapshot_total",
    "Stats-store snapshot operations, by op (save, load).",
    labels=("op",),
    unit="snapshots",
)

# --------------------------------------------------------------------------
# adaptive optimization — reordering, index management, deadline planning
# --------------------------------------------------------------------------

ADAPTIVE_REORDERS = REGISTRY.counter(
    "repro_adaptive_reorders_total",
    "Select chains considered by the adaptive_order pass, by outcome: "
    "reordered (links permuted most-selective-first), kept (observed "
    "order already optimal), or unknown (no stats for any link).",
    labels=("outcome",),
    unit="chains",
)

ADAPTIVE_INDEX_BUILDS = REGISTRY.counter(
    "repro_adaptive_index_builds_total",
    "Order indexes built by the adaptive policy, by trigger: eager "
    "(access mix favors the index before the size threshold) or "
    "threshold (classic min-rows heuristic on first touch).",
    labels=("trigger",),
    unit="indexes",
)

ADAPTIVE_INDEX_DROPS = REGISTRY.counter(
    "repro_adaptive_index_drops_total",
    "Order indexes dropped because their hit-rate fell below the "
    "policy floor over a decision window.",
    unit="indexes",
)

ADAPTIVE_DEADLINE_REROUTES = REGISTRY.counter(
    "repro_adaptive_deadline_reroutes_total",
    "Deadline-carrying queries compiled against a cheaper plan variant "
    "because the default pipeline's predicted latency exceeded the "
    "deadline.",
    unit="queries",
)
