"""The metric primitives: counters, gauges, histograms, and the registry.

The data model follows the Prometheus client core: a *family* has a
name, a type, a help string, an optional unit and a fixed tuple of label
names; each distinct label-value combination is a *child* carrying the
actual value.  Families with no labels expose the child operations
(``inc``/``set``/``observe``) directly.

Everything is thread-safe: one lock per family guards its children and
their values, so instrumented hot paths pay one uncontended lock
acquisition per update.  Setting ``Registry.enabled = False`` (or using
the :func:`disabled` context manager) turns every update into an early
return — that is how the overhead benchmark measures the uninstrumented
baseline without unwiring anything.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class MetricError(ReproError):
    """Raised on metric misuse (duplicate family, bad labels, ...)."""


#: Default histogram bucket upper bounds (generic latency-ish spread).
DEFAULT_BUCKETS = (1.0, 5.0, 25.0, 100.0, 500.0, 2_500.0, 10_000.0,
                   100_000.0)


class _Child:
    """Base for the per-label-set value holders."""

    __slots__ = ("_family",)

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family


class Counter(_Child):
    """A monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if not self._family.registry.enabled:
            return
        if amount < 0:
            raise MetricError("counters only go up")
        with self._family.lock:
            self._value += amount

    def value(self) -> float:
        """Current value."""
        with self._family.lock:
            return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge(_Child):
    """A value that can go up and down (depths, active counts)."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if not self._family.registry.enabled:
            return
        with self._family.lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        if not self._family.registry.enabled:
            return
        with self._family.lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def value(self) -> float:
        """Current value."""
        with self._family.lock:
            return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram(_Child):
    """Observations bucketed against fixed upper bounds.

    Tracks the observation count, the running sum, and one counter per
    configured bucket boundary (exposed cumulatively, Prometheus-style,
    with an implicit ``+Inf`` bucket).
    """

    __slots__ = ("_counts", "_sum", "_count")

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._counts = [0] * (len(family.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        family = self._family
        if not family.registry.enabled:
            return
        bounds = family.buckets
        index = len(bounds)
        for i, bound in enumerate(bounds):
            if value <= bound:
                index = i
                break
        with family.lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        Bucketing happens outside the lock; use this from paths that
        record whole runs at once (the MAL post-run accounting)."""
        family = self._family
        if not family.registry.enabled:
            return
        bounds = family.buckets
        last = len(bounds)
        increments = [0] * (last + 1)
        total = 0.0
        count = 0
        for value in values:
            index = last
            for i, bound in enumerate(bounds):
                if value <= bound:
                    index = i
                    break
            increments[index] += 1
            total += value
            count += 1
        if not count:
            return
        with family.lock:
            for i, n in enumerate(increments):
                if n:
                    self._counts[i] += n
            self._sum += total
            self._count += count

    def count(self) -> int:
        """Number of observations."""
        with self._family.lock:
            return self._count

    def sum(self) -> float:
        """Sum of all observed values."""
        with self._family.lock:
            return self._sum

    def cumulative_buckets(self) -> List[Tuple[Any, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        with self._family.lock:
            counts = list(self._counts)
        pairs: List[Tuple[Any, int]] = []
        running = 0
        for bound, count in zip(self._family.buckets, counts):
            running += count
            pairs.append((bound, running))
        pairs.append(("+Inf", running + counts[-1]))
        return pairs

    def _reset(self) -> None:
        self._counts = [0] * len(self._counts)
        self._sum = 0.0
        self._count = 0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and typed children.

    Obtain children with :meth:`labels`; families declared without
    labels proxy ``inc``/``dec``/``set``/``observe``/``value`` and the
    histogram accessors straight to their single child.
    """

    def __init__(self, registry: "Registry", name: str, kind: str,
                 help_text: str, label_names: Sequence[str] = (),
                 unit: str = "", buckets: Sequence[float] = ()) -> None:
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}")
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.unit = unit
        self.buckets = tuple(sorted(buckets)) if kind == "histogram" else ()
        if kind == "histogram" and not self.buckets:
            self.buckets = DEFAULT_BUCKETS
        self.lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.label_names:
            self._children[()] = _KINDS[kind](self)

    # ------------------------------------------------------------------

    def labels(self, *values: str, **kwargs: str) -> Any:
        """The child for one label-value combination (created on first
        use and cached)."""
        if kwargs:
            if values:
                raise MetricError("pass labels positionally or by name, "
                                  "not both")
            try:
                values = tuple(str(kwargs[n]) for n in self.label_names)
            except KeyError as exc:
                raise MetricError(
                    f"{self.name}: missing label {exc.args[0]!r}"
                ) from None
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {values!r}"
            )
        child = self._children.get(values)
        if child is None:
            with self.lock:
                child = self._children.setdefault(values, _KINDS[self.kind](self))
        return child

    def children(self) -> Dict[Tuple[str, ...], Any]:
        """All materialised children, keyed by label values."""
        with self.lock:
            return dict(self._children)

    def _single(self) -> Any:
        if self.label_names:
            raise MetricError(f"{self.name} is labeled; call .labels() first")
        return self._children[()]

    # unlabeled convenience proxies ------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        """Proxy to the single child of an unlabeled family."""
        self._single().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Proxy to the single child of an unlabeled gauge."""
        self._single().dec(amount)

    def set(self, value: float) -> None:
        """Proxy to the single child of an unlabeled gauge."""
        self._single().set(value)

    def observe(self, value: float) -> None:
        """Proxy to the single child of an unlabeled histogram."""
        self._single().observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Proxy to the single child of an unlabeled histogram."""
        self._single().observe_many(values)

    def value(self) -> float:
        """Proxy to the single child of an unlabeled counter/gauge."""
        return self._single().value()

    def count(self) -> int:
        """Proxy to the single child of an unlabeled histogram."""
        return self._single().count()

    def sum(self) -> float:
        """Proxy to the single child of an unlabeled histogram."""
        return self._single().sum()

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe description of this family and its current samples."""
        samples: List[Dict[str, Any]] = []
        for values, child in sorted(self.children().items()):
            labels = dict(zip(self.label_names, values))
            if self.kind == "histogram":
                samples.append({
                    "labels": labels,
                    "count": child.count(),
                    "sum": child.sum(),
                    "buckets": [[le, n] for le, n
                                in child.cumulative_buckets()],
                })
            else:
                samples.append({"labels": labels, "value": child.value()})
        return {
            "type": self.kind,
            "help": self.help_text,
            "unit": self.unit,
            "labels": list(self.label_names),
            "samples": samples,
        }

    def _reset(self) -> None:
        with self.lock:
            if self.label_names:
                self._children.clear()
            else:
                self._children[()]._reset()


class Registry:
    """Holds metric families and produces snapshots and expositions.

    A process-wide default lives at :data:`REGISTRY`; subsystems declare
    their families against it in :mod:`repro.metrics.families`.  Tests
    and benchmarks may build private registries, or flip
    :attr:`enabled` to pause all recording.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()
        #: master switch — False makes every metric update a no-op
        self.enabled = True

    # ------------------------------------------------------------------

    def _register(self, name: str, kind: str, help_text: str,
                  labels: Sequence[str], unit: str,
                  buckets: Sequence[float] = ()) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise MetricError(
                        f"{name} already registered as {existing.kind}"
                    )
                return existing
            family = MetricFamily(self, name, kind, help_text, labels,
                                  unit, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = (), unit: str = "") -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._register(name, "counter", help_text, labels, unit)

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = (), unit: str = "") -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._register(name, "gauge", help_text, labels, unit)

    def histogram(self, name: str, help_text: str,
                  labels: Sequence[str] = (), unit: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        """Declare (or fetch) a histogram family with fixed buckets."""
        return self._register(name, "histogram", help_text, labels, unit,
                              buckets)

    # ------------------------------------------------------------------

    def families(self) -> Dict[str, MetricFamily]:
        """All registered families, by name."""
        with self._lock:
            return dict(self._families)

    def get(self, name: str) -> Optional[MetricFamily]:
        """One family by name, or None."""
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain JSON-safe dict of every family and its samples — the
        payload of the server's ``stats`` protocol verb."""
        return {name: family.snapshot()
                for name, family in sorted(self.families().items())}

    def render_text(self) -> str:
        """This registry's state in the text exposition format."""
        return render_snapshot(self.snapshot())

    def reset(self) -> None:
        """Zero every child (labeled children are dropped). For tests
        and benchmarks; production code never resets."""
        for family in self.families().values():
            family._reset()


#: The process-wide default registry.
REGISTRY = Registry()


@contextmanager
def disabled(registry: Registry = REGISTRY):
    """Context manager: suspend all recording on ``registry``."""
    previous = registry.enabled
    registry.enabled = False
    try:
        yield registry
    finally:
        registry.enabled = previous


# ---------------------------------------------------------------------------
# text exposition (Prometheus-flavoured)
# ---------------------------------------------------------------------------


def _format_value(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_snapshot(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a :meth:`Registry.snapshot` dict (local or fetched over
    the wire via the ``stats`` verb) in the text exposition format::

        # HELP repro_server_requests_total Protocol requests, by op.
        # TYPE repro_server_requests_total counter
        repro_server_requests_total{op="query"} 3
    """
    lines: List[str] = []
    for name, family in sorted(snapshot.items()):
        help_text = family.get("help", "")
        unit = family.get("unit", "")
        if unit:
            help_text = f"{help_text} [{unit}]"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family.get("samples", []):
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                for le, cumulative in sample["buckets"]:
                    label_text = _format_labels(
                        labels, f'le="{_format_value(le)}"'
                    )
                    lines.append(f"{name}_bucket{label_text} {cumulative}")
                label_text = _format_labels(labels)
                lines.append(
                    f"{name}_sum{label_text} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{label_text} {sample['count']}"
                )
            else:
                label_text = _format_labels(labels)
                lines.append(
                    f"{name}{label_text} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"
