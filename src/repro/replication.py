"""WAL-shipping replication: read replicas and epoch-fenced failover.

PR 8 gave the engine a CRC-checked, strictly-LSN-ordered write-ahead
log with columnar checkpoints; this module ships that log to followers
so the system survives losing the primary.  The design is pull-based
and rides the existing line protocol:

* each **replica** runs a puller thread that repeatedly asks its
  primary ``repl.sync`` for committed records past its own durable LSN
  and applies them through the PR 8 recovery path
  (:func:`~repro.storage.durable.apply_record`), appending each record
  to its *own* WAL at the primary-assigned LSN first — so a replica's
  directory recovers exactly like a primary's;
* a **new or lagging** follower (its position predates the primary's
  newest checkpoint, or its history diverged) gets a **checkpoint
  bootstrap** instead: the primary's on-disk checkpoint files are
  shipped chunk by chunk, landed through the normal tmp + fsync +
  rename path, validated by
  :func:`~repro.storage.durable.load_checkpoint`, and installed;
* **writes on a replica** are rejected before execution with a typed
  :class:`~repro.errors.ReadOnlyReplicaError` carrying the current
  primary's address; reads and trace subscriptions are served locally.

Safety comes from **epoch fencing**: every replication message carries
the sender's epoch — a monotonic counter persisted in the WAL
directory (:func:`~repro.storage.durable.write_epoch`).  A follower
rejects a sync response whose epoch is lower than its own (a deposed
primary's stream), and a primary that sees a *higher* epoch in a
request knows it was deposed and demotes itself — no split-brain ghost
writes.  **Promotion** (the ``repl.promote`` verb, or automatic on
primary loss: heartbeat timeout, then a deterministic highest-LSN
election among the configured peers, lowest address breaking ties)
truncates the replica's unacked divergent tail exactly as crash
recovery does, bumps the epoch, and flips the role.

Fault sites: ``repl.stream`` (``drop``, ``latency``, ``partition``) on
the primary's sync handler and ``repl.promote`` (``crash``) inside
promotion; the ``replication-chaos`` mix drives them plus
SIGKILL-shaped primary death.  See ``docs/operations.md`` §11 for the
operational runbook.
"""

from __future__ import annotations

import base64
import json
import os
import re
import shutil
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    ReplicationError,
    ReplicationFencedError,
    ReproError,
)
from repro.faults.plan import ACTIVE
from repro.metrics.families import (
    REPL_EPOCH,
    REPL_FAILOVERS,
    REPL_FENCED,
    REPL_LAG_BYTES,
    REPL_LAG_RECORDS,
    REPL_LAG_SECONDS,
    REPL_RECORDS_APPLIED,
    REPL_ROLE,
)
from repro.server.protocol import decode_message, encode_message
from repro.storage.durable import (
    MANIFEST_FILENAME,
    WAL_FILENAME,
    WalError,
    _fsync_dir,
    apply_record,
    decode_payload,
    load_checkpoint,
    read_wal_records,
    recover,
)

__all__ = ["ReplicationManager", "split_addr"]

#: Bootstrap file names the primary will serve (column files and the
#: manifest only — never a path component).
_SAFE_FILE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")


def split_addr(addr: str) -> Tuple[str, int]:
    """Parse ``"host:port"``; raises a typed error on malformed input."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ReplicationError(f"bad peer address {addr!r}: want host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ReplicationError(
            f"bad peer address {addr!r}: port is not an integer") from None


class ReplicationManager:
    """One node's replication state machine, attached to its Mserver.

    Args:
        server: the node's :class:`~repro.server.mserver.Mserver` (its
            database must be durable — replication ships the WAL).
        addr: this node's advertised ``host:port``.
        primary: the primary's address to replicate from; ``None``
            starts this node as the primary.
        peers: every node address in the topology (the election set for
            automatic failover; this node's own address is filtered).
        poll_interval_s: how long an idle replica waits between sync
            pulls (a non-empty batch pulls again immediately).
        heartbeat_timeout_s: seconds without a successful sync before a
            replica starts an election (when ``auto_failover``).
        auto_failover: elect-and-promote automatically on primary loss;
            requires a non-empty ``peers`` set.
        batch_limit_bytes: cap on shipped payload per sync response
            (also the bootstrap chunk size) — keeps every response
            comfortably under the protocol's line limit.
    """

    def __init__(self, server: Any, addr: str,
                 primary: Optional[str] = None,
                 peers: Tuple[str, ...] = (),
                 poll_interval_s: float = 0.05,
                 heartbeat_timeout_s: float = 2.0,
                 auto_failover: bool = True,
                 batch_limit_bytes: int = 256 * 1024) -> None:
        database = server.database
        if database.durability is None:
            raise ReplicationError(
                "replication requires a durable database (wal_dir)")
        self.server = server
        self.database = database
        self.addr = addr
        self.peers: List[str] = [p for p in peers if p and p != addr]
        self.role = "replica" if primary else "primary"
        self.primary = primary or addr
        self.poll_interval_s = poll_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.auto_failover = auto_failover
        self.batch_limit_bytes = batch_limit_bytes
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._puller: Optional[threading.Thread] = None
        self._need_resync = False
        self._partition_until = 0.0
        self._last_contact = time.monotonic()
        self._lag_records = 0
        self._lag_bytes = 0
        self.records_applied = 0
        self.bootstraps = 0
        self.fenced = 0
        self.failovers = 0
        engine = database.durability
        REPL_ROLE.labels(node=addr).set(
            1.0 if self.role == "primary" else 0.0)
        REPL_EPOCH.labels(node=addr).set(float(engine.epoch))

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ReplicationManager":
        """Begin pulling (replicas); primaries serve passively."""
        if self.role == "replica":
            self._ensure_puller()
        return self

    def stop(self) -> None:
        """Stop the puller thread; idempotent."""
        self._stop_puller()

    def _ensure_puller(self) -> None:
        with self._lock:
            if self._puller is not None and self._puller.is_alive():
                return
            self._stop.clear()
            self._puller = threading.Thread(
                target=self._pull_loop, name=f"repl-pull-{self.addr}",
                daemon=True)
            self._puller.start()

    def _stop_puller(self) -> None:
        self._stop.set()
        puller = self._puller
        if puller is not None and puller is not threading.current_thread():
            puller.join(timeout=5.0)
        self._puller = None

    # -- introspection ---------------------------------------------------

    def accepts_writes(self) -> bool:
        """True while this node is the primary."""
        return self.role == "primary"

    def primary_hint(self) -> str:
        """Best-known primary address for error payloads ('' if us or
        unknown)."""
        with self._lock:
            if self.role == "primary" or self.primary == self.addr:
                return ""
            return self.primary

    def status(self) -> Dict[str, Any]:
        """The ``repl.status`` payload (also what peers probe during
        elections)."""
        engine = self.database.durability
        with self._lock:
            waiting = 0.0 if self.role == "primary" else \
                round(time.monotonic() - self._last_contact, 3)
            return {
                "ok": True,
                "role": self.role,
                "addr": self.addr,
                "primary": self.primary,
                "epoch": engine.epoch,
                "durable_lsn": engine.wal.durable_lsn,
                "checkpoint_lsn": engine.checkpoint_lsn,
                "peers": list(self.peers),
                "lag_records": self._lag_records,
                "lag_bytes": self._lag_bytes,
                "last_contact_s": waiting,
                "records_applied": self.records_applied,
                "bootstraps": self.bootstraps,
                "fenced": self.fenced,
                "failovers": self.failovers,
            }

    # ------------------------------------------------------------------
    # primary side: serving repl.sync
    # ------------------------------------------------------------------

    def handle_sync(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one follower pull: records, a bootstrap directive, or
        a bootstrap file chunk — always stamped with our epoch."""
        engine = self.database.durability
        req_epoch = int(request.get("epoch", 0))
        follower = str(request.get("follower", ""))
        with self._lock:
            if req_epoch > engine.epoch:
                # The request proves a newer primary exists: we were
                # deposed while we weren't looking.  Fence ourselves.
                engine.adopt_epoch(req_epoch)
                REPL_EPOCH.labels(node=self.addr).set(float(engine.epoch))
                REPL_FENCED.labels(side="primary").inc()
                self.fenced += 1
                if self.role == "primary":
                    self._demote()
                raise ReplicationFencedError(
                    f"{self.addr} deposed: request from "
                    f"{follower or 'a peer'} carries epoch {req_epoch} "
                    f"above ours")
            if self.role != "primary":
                raise ReplicationFencedError(
                    f"{self.addr} is not the primary (role {self.role}; "
                    f"current primary {self.primary or 'unknown'})")
            epoch = engine.epoch
        mode = str(request.get("mode", "records"))
        plan = ACTIVE.plan
        if plan is not None:
            decision = plan.decide("repl.stream", detail=mode)
            if decision is not None:
                if decision.action == "latency":
                    time.sleep(min(decision.value or 25.0, 2000.0) / 1000.0)
                elif decision.action == "drop":
                    raise ReplicationError(
                        "injected repl.stream drop: sync response lost")
                elif decision.action == "partition":
                    self._partition_until = time.monotonic() + \
                        min(decision.value or 250.0, 5000.0) / 1000.0
        if time.monotonic() < self._partition_until:
            raise ReplicationError(
                f"injected network partition around {self.addr}")
        if mode == "fetch":
            return self._serve_chunk(request, epoch)
        from_lsn = int(request.get("from_lsn", 0))
        needs_snapshot = bool(request.get("resync")) or \
            from_lsn < engine.checkpoint_lsn
        if not needs_snapshot and from_lsn == 0:
            # a checkpoint taken at LSN 0 can hold seeded state the WAL
            # never saw (serve populates TPC-H, then checkpoints), so a
            # brand-new follower must bootstrap whenever one exists
            needs_snapshot = os.path.isdir(os.path.join(
                engine.wal_dir,
                f"checkpoint-{engine.checkpoint_lsn:012d}"))
        if needs_snapshot:
            return self._serve_bootstrap(epoch)
        with engine.order_lock:
            durable_lsn = engine.wal.durable_lsn
            records, more, pending = read_wal_records(
                os.path.join(engine.wal_dir, WAL_FILENAME), from_lsn,
                engine.wal.durable_bytes,
                limit_bytes=self.batch_limit_bytes)
        shipped = [[lsn, base64.b64encode(raw).decode("ascii")]
                   for lsn, raw in records]
        return {"ok": True, "mode": "records", "epoch": epoch,
                "records": shipped, "durable_lsn": durable_lsn,
                "more": more, "pending_bytes": pending}

    def _serve_bootstrap(self, epoch: int) -> Dict[str, Any]:
        """Point a lagging follower at our newest checkpoint.

        If the durable prefix has advanced past the newest checkpoint
        (or none exists yet), write one first — the follower then lands
        fully caught up the moment the snapshot installs.
        """
        engine = self.database.durability
        path = os.path.join(engine.wal_dir,
                            f"checkpoint-{engine.checkpoint_lsn:012d}")
        if engine.checkpoint_lsn < engine.wal.durable_lsn or \
                not os.path.isdir(path):
            engine.checkpoint()
            path = os.path.join(engine.wal_dir,
                                f"checkpoint-{engine.checkpoint_lsn:012d}")
        with open(os.path.join(path, MANIFEST_FILENAME)) as handle:
            manifest = json.load(handle)
        return {"ok": True, "mode": "bootstrap", "epoch": epoch,
                "lsn": engine.checkpoint_lsn, "manifest": manifest}

    def _serve_chunk(self, request: Dict[str, Any],
                     epoch: int) -> Dict[str, Any]:
        """One bootstrap file chunk (column file or manifest)."""
        engine = self.database.durability
        lsn = int(request.get("lsn", -1))
        name = str(request.get("file", ""))
        offset = max(0, int(request.get("offset", 0)))
        if not _SAFE_FILE.match(name):
            raise ReplicationError(f"bad bootstrap file name {name!r}")
        path = os.path.join(engine.wal_dir, f"checkpoint-{lsn:012d}", name)
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(self.batch_limit_bytes)
        except OSError as exc:
            raise ReplicationError(
                f"bootstrap file {name!r} at lsn {lsn} unavailable: "
                f"{exc}") from None
        return {"ok": True, "mode": "chunk", "epoch": epoch, "lsn": lsn,
                "file": name,
                "data": base64.b64encode(data).decode("ascii"),
                "eof": offset + len(data) >= size, "size": size}

    # ------------------------------------------------------------------
    # promotion and demotion
    # ------------------------------------------------------------------

    def promote(self, trigger: str = "manual",
                above: int = 0) -> Dict[str, Any]:
        """Become the primary: fence, truncate, bump, flip.

        The unacked divergent tail (records appended locally but never
        fsynced — e.g. a batch in flight when the old primary died) is
        truncated exactly as crash recovery would, and the in-memory
        catalog is rebuilt from disk so it equals the durable prefix.
        The new epoch is minted strictly above both our own and
        ``above`` (the highest epoch learned from peers).
        """
        self._stop_puller()
        with self._lock:
            engine = self.database.durability
            if self.role == "primary":
                return {**self.status(), "promoted": False}
            plan = ACTIVE.plan
            if plan is not None:
                decision = plan.decide("repl.promote", detail=trigger)
                if decision is not None and decision.action == "crash":
                    raise ReplicationError(
                        f"injected crash during promotion of {self.addr}")
            dropped = engine.wal.truncate_to_durable()
            with engine.order_lock:
                catalog, report = recover(engine.wal_dir)
                engine.catalog = catalog
                engine.report = report
                engine.checkpoint_lsn = report.checkpoint_lsn
                self.database.swap_catalog(catalog)
            epoch = engine.bump_epoch(above)
            self.role = "primary"
            self.primary = self.addr
            self.failovers += 1
            self._lag_records = 0
            self._lag_bytes = 0
            REPL_FAILOVERS.labels(trigger=trigger).inc()
            REPL_ROLE.labels(node=self.addr).set(1.0)
            REPL_EPOCH.labels(node=self.addr).set(float(epoch))
            REPL_LAG_RECORDS.labels(node=self.addr).set(0.0)
            REPL_LAG_BYTES.labels(node=self.addr).set(0.0)
            REPL_LAG_SECONDS.labels(node=self.addr).set(0.0)
            return {**self.status(), "promoted": True,
                    "dropped_records": dropped}

    def handle_promote(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The ``repl.promote`` verb."""
        return self.promote(trigger="manual")

    def _demote(self) -> None:
        """Deposed: stop accepting writes, rejoin as a replica.

        Called under ``_lock``.  Our history may have diverged from the
        new primary's (acked-but-unreplicated records are the classic
        asynchronous-replication casualty), so the next sync requests a
        full resync — the new primary's snapshot replaces our tail.
        """
        self.role = "replica"
        self.primary = ""
        self._need_resync = True
        self._last_contact = time.monotonic()
        REPL_ROLE.labels(node=self.addr).set(0.0)
        self._ensure_puller()

    # ------------------------------------------------------------------
    # replica side: the puller
    # ------------------------------------------------------------------

    def _pull_loop(self) -> None:
        from repro.server.client import MClient

        engine = self.database.durability
        client: Optional[MClient] = None
        backoff = 0.05
        try:
            while not self._stop.is_set() and self.role == "replica":
                try:
                    if not self.primary or self.primary == self.addr:
                        if not self._find_primary():
                            self._maybe_elect()
                            self._stop.wait(backoff)
                            continue
                    if client is None:
                        host, port = split_addr(self.primary)
                        client = MClient(host, port, timeout=2.0,
                                         retries=0)
                    request: Dict[str, Any] = {
                        "from_lsn": engine.wal.durable_lsn,
                        "epoch": engine.epoch,
                        "follower": self.addr,
                    }
                    if self._need_resync:
                        request["resync"] = True
                    response = client.repl_sync(**request)
                    self._check_epoch(response)
                    self._note_contact()
                    backoff = 0.05
                    if response.get("mode") == "bootstrap":
                        self._bootstrap(client, response)
                        self._need_resync = False
                        continue
                    applied = self._apply_batch(response)
                    if int(response.get("durable_lsn", 0)) < \
                            engine.wal.durable_lsn:
                        # our history runs past the primary's: diverged
                        self._need_resync = True
                        continue
                    self._update_lag(response)
                    if response.get("more") or applied:
                        continue
                    self._stop.wait(self.poll_interval_s)
                except (ReproError, OSError):
                    if client is not None:
                        try:
                            client.close()
                        except (ReproError, OSError):
                            pass
                        client = None
                    REPL_LAG_SECONDS.labels(node=self.addr).set(
                        round(time.monotonic() - self._last_contact, 3))
                    if self._maybe_elect():
                        return
                    self._stop.wait(backoff)
                    backoff = min(backoff * 2, 0.5)
        finally:
            if client is not None:
                try:
                    client.close()
                except (ReproError, OSError):
                    pass

    def _note_contact(self) -> None:
        self._last_contact = time.monotonic()
        REPL_LAG_SECONDS.labels(node=self.addr).set(0.0)

    def _check_epoch(self, response: Dict[str, Any]) -> None:
        """Follower-side fencing: reject a deposed primary's stream."""
        engine = self.database.durability
        epoch = int(response.get("epoch", 0))
        if epoch < engine.epoch:
            REPL_FENCED.labels(side="follower").inc()
            self.fenced += 1
            raise ReplicationFencedError(
                f"stream from {self.primary} carries stale epoch "
                f"{epoch} < {engine.epoch}; rejecting")
        if epoch > engine.epoch:
            engine.adopt_epoch(epoch)
            REPL_EPOCH.labels(node=self.addr).set(float(engine.epoch))

    def _apply_batch(self, response: Dict[str, Any]) -> int:
        """Apply one shipped record batch through the recovery path."""
        engine = self.database.durability
        records = response.get("records") or []
        applied = 0
        last_lsn: Optional[int] = None
        kinds: List[str] = []
        with engine.order_lock:
            for item in records:
                lsn = int(item[0])
                payload = base64.b64decode(item[1])
                if lsn <= engine.wal.written_lsn:
                    continue  # duplicate delivery after a retry
                kind, data = decode_payload(payload)
                engine.wal.append_raw(lsn, kind, payload)
                apply_record(engine.catalog, kind, data)
                kinds.append(kind)
                applied += 1
                last_lsn = lsn
        if last_lsn is not None:
            engine.wal.commit(last_lsn)
            self.database._invalidate_plans()
            for kind in kinds:
                REPL_RECORDS_APPLIED.labels(kind=kind).inc()
            self.records_applied += applied
            engine._since_checkpoint += applied
            try:
                engine.maybe_checkpoint()
            except ReproError:
                pass  # an unharvested WAL only means a longer replay
        return applied

    def _update_lag(self, response: Dict[str, Any]) -> None:
        engine = self.database.durability
        self._lag_records = max(
            0, int(response.get("durable_lsn", 0)) -
            engine.wal.durable_lsn)
        self._lag_bytes = max(0, int(response.get("pending_bytes", 0)))
        REPL_LAG_RECORDS.labels(node=self.addr).set(
            float(self._lag_records))
        REPL_LAG_BYTES.labels(node=self.addr).set(float(self._lag_bytes))

    # -- bootstrap (checkpoint shipping) ---------------------------------

    def _bootstrap(self, client: Any, response: Dict[str, Any]) -> None:
        """Install the primary's checkpoint snapshot.

        Files land through the same tmp + fsync + rename discipline a
        local checkpoint uses, then :func:`load_checkpoint` validates
        every CRC before the snapshot is installed — a crash at any
        point leaves either the old state or the new one, never a mix.
        """
        engine = self.database.durability
        lsn = int(response["lsn"])
        manifest = response["manifest"]
        directory = engine.wal_dir
        name = f"checkpoint-{lsn:012d}"
        final = os.path.join(directory, name)
        tmp = final + ".tmp"
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        os.makedirs(tmp)
        for schema_doc in manifest.get("schemas", []):
            for table_doc in schema_doc.get("tables", []):
                for column_doc in table_doc.get("columns", []):
                    data = self._fetch_file(client, lsn,
                                            column_doc["file"])
                    with open(os.path.join(tmp, column_doc["file"]),
                              "wb") as handle:
                        handle.write(data)
                        handle.flush()
                        os.fsync(handle.fileno())
        with open(os.path.join(tmp, MANIFEST_FILENAME), "w") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(tmp)
        if os.path.exists(final):
            shutil.rmtree(final)
        os.rename(tmp, final)
        _fsync_dir(directory)
        catalog, _ckpt_lsn, _rows = load_checkpoint(final)
        self.database.install_replica_snapshot(catalog, lsn)
        self.bootstraps += 1
        self._lag_records = 0
        self._lag_bytes = 0
        REPL_LAG_RECORDS.labels(node=self.addr).set(0.0)
        REPL_LAG_BYTES.labels(node=self.addr).set(0.0)

    def _fetch_file(self, client: Any, lsn: int, name: str) -> bytes:
        chunks: List[bytes] = []
        offset = 0
        while True:
            response = client.repl_sync(
                mode="fetch", lsn=lsn, file=name, offset=offset,
                epoch=self.database.durability.epoch, follower=self.addr)
            self._check_epoch(response)
            data = base64.b64decode(response.get("data", ""))
            chunks.append(data)
            offset += len(data)
            if response.get("eof") or not data:
                return b"".join(chunks)

    # -- elections -------------------------------------------------------

    def _maybe_elect(self) -> bool:
        """Heartbeat-timeout election; True when we promoted ourselves."""
        if not self.auto_failover or not self.peers:
            return False
        if time.monotonic() - self._last_contact < self.heartbeat_timeout_s:
            return False
        try:
            return self._election()
        except ReproError:
            # e.g. an injected repl.promote crash — stay a replica and
            # let the next timeout retry the election
            return False

    def _find_primary(self) -> bool:
        """Probe peers for a live primary with an epoch at least ours."""
        engine = self.database.durability
        for peer in self.peers:
            probed = self._probe(peer)
            if probed is None:
                continue
            if probed.get("role") == "primary" and \
                    int(probed.get("epoch", 0)) >= engine.epoch:
                with self._lock:
                    self.primary = peer
                self._note_contact()
                return True
        return False

    def _election(self) -> bool:
        """Deterministic election: highest durable LSN wins, lowest
        address breaks ties.  If a live primary surfaces during the
        probe round, follow it instead of electing."""
        engine = self.database.durability
        best_epoch = engine.epoch
        candidates: List[Tuple[int, str]] = [
            (engine.wal.durable_lsn, self.addr)]
        for peer in self.peers:
            probed = self._probe(peer)
            if probed is None:
                continue
            peer_epoch = int(probed.get("epoch", 0))
            best_epoch = max(best_epoch, peer_epoch)
            if probed.get("role") == "primary" and \
                    peer_epoch >= engine.epoch:
                with self._lock:
                    self.primary = peer
                self._note_contact()
                return False
            candidates.append((int(probed.get("durable_lsn", 0)), peer))
        candidates.sort(key=lambda c: (-c[0], c[1]))
        winner = candidates[0][1]
        if winner == self.addr:
            self.promote(trigger="auto", above=best_epoch)
            return True
        with self._lock:
            self.primary = winner
        # grace: the winner promotes itself off the same timeout
        self._note_contact()
        return False

    @staticmethod
    def _probe(addr: str, timeout: float = 0.75) -> Optional[Dict]:
        """One-shot ``repl.status`` probe; None when unreachable."""
        try:
            host, port = split_addr(addr)
            with socket.create_connection((host, port),
                                          timeout=timeout) as sock:
                sock.sendall(encode_message({"op": "repl.status"}))
                sock.settimeout(timeout)
                buffer = b""
                while b"\n" not in buffer:
                    chunk = sock.recv(65536)
                    if not chunk:
                        return None
                    buffer += chunk
            response = decode_message(buffer.split(b"\n", 1)[0])
            return response if response.get("ok") else None
        except (ReproError, OSError, WalError):
            return None
