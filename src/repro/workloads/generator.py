"""Synthetic MAL plans and traces with realistic structure.

A synthetic plan mimics a mitosis-partitioned scan-aggregate query: a
configurable number of parallel bind→select→project chains (partition
fan-out) folded back together — the exact shape that makes real plans
exceed 1000 nodes (paper Figure 2).  Synthetic traces replay a plan on a
simulated worker pool with a seeded cost distribution, including an
adjustable fraction of long-running instructions for the colouring
algorithms to find.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.mal.ast import Const, MalProgram, Var, bat_of, scalar_of
from repro.mal.printer import format_instruction
from repro.profiler.events import TraceEvent


def synthetic_plan(chains: int = 8, chain_length: int = 4) -> MalProgram:
    """A plan with ``chains`` parallel partition chains of
    ``chain_length`` data operators each, plus fold and export glue.

    Total size is ``2 + chains * (1 + chain_length) + (chains - 1) + 3``
    instructions; e.g. ``chains=167, chain_length=4`` ≈ 1007 nodes.
    """
    program = MalProgram("user.synthetic")
    mvc = program.call("sql", "mvc", [], scalar_of("oid"))
    partials: List[Var] = []
    for chain in range(chains):
        bind = program.call(
            "sql", "bind",
            [mvc, Const("sys"), Const("fact"), Const("v"), Const(0),
             Const(chain), Const(chains)],
            bat_of("int"),
        )
        current = bind
        for step in range(chain_length):
            if step % 2 == 0:
                current = program.call(
                    "algebra", "thetaselect",
                    [current, Const(step), Const(">")], bat_of("int"),
                )
            else:
                current = program.call(
                    "batcalc", "add", [current, Const(1)], bat_of("int"),
                )
        partials.append(
            program.call("aggr", "sum", [current], scalar_of("lng"))
        )
    total = partials[0]
    for partial in partials[1:]:
        total = program.call("calc", "add", [total, partial],
                             scalar_of("lng"))
    rs = program.call("sql", "resultSet", [Const(1), Const(1)],
                      scalar_of("oid"))
    rs = program.call(
        "sql", "rsColumn",
        [rs, Const("sys.fact"), Const("total"), Const("lng"), total],
        scalar_of("oid"),
    )
    program.add("sql", "exportResult", [rs])
    program.renumber()
    return program


def trace_for_program(program: MalProgram, workers: int = 4,
                      seed: int = 11, long_fraction: float = 0.05,
                      long_usec: int = 50_000,
                      base_usec: int = 40) -> List[TraceEvent]:
    """A plausible trace for ``program`` without executing it.

    Instructions are list-scheduled over ``workers`` on a virtual clock;
    a seeded ``long_fraction`` of them receive ``long_usec`` durations —
    the costly outliers the Stethoscope exists to find.
    """
    rng = random.Random(seed)
    deps = program.dependencies()
    pending = {pc: set(d) for pc, d in deps.items()}
    ready = sorted(pc for pc, d in pending.items() if not d)
    worker_free = [0] * workers
    ready_time = {pc: 0 for pc in ready}
    events: List[TraceEvent] = []
    raw: List[tuple] = []
    done: set = set()
    while len(done) < len(program.instructions):
        ready.sort(key=lambda pc: (ready_time.get(pc, 0), pc))
        pc = ready.pop(0)
        instr = program.instructions[pc]
        widx = min(range(workers), key=lambda w: (worker_free[w], w))
        start = max(worker_free[widx], ready_time.get(pc, 0))
        if rng.random() < long_fraction:
            cost = long_usec + rng.randrange(long_usec // 2)
        else:
            cost = base_usec + rng.randrange(base_usec)
        end = start + cost
        worker_free[widx] = end
        stmt = format_instruction(instr, program)
        raw.append((start, pc, "start", widx, 0, stmt))
        raw.append((end, pc, "done", widx, cost, stmt))
        done.add(pc)
        for succ, wanted in pending.items():
            if pc in wanted:
                wanted.discard(pc)
                ready_time[succ] = max(ready_time.get(succ, 0), end)
                if not wanted and succ not in done and succ not in ready:
                    ready.append(succ)
    raw.sort(key=lambda r: (r[0], r[1], r[2] == "done"))
    for sequence, (clock, pc, status, thread, usec, stmt) in enumerate(raw):
        events.append(TraceEvent(
            event=sequence, clock_usec=clock, status=status, pc=pc,
            thread=thread, usec=usec, rss_bytes=1 << 20, stmt=stmt,
        ))
    return events


def synthetic_trace(chains: int = 8, chain_length: int = 4,
                    workers: int = 4, seed: int = 11,
                    long_fraction: float = 0.05) -> List[TraceEvent]:
    """Plan + trace in one call (see :func:`synthetic_plan`)."""
    return trace_for_program(
        synthetic_plan(chains, chain_length), workers=workers, seed=seed,
        long_fraction=long_fraction,
    )


#: Numeric lineitem columns :func:`random_query` predicates/aggregates
#: over, with plausible literal ranges for the TPC-H datagen.
_QUERY_COLUMNS = {
    "l_quantity": (1, 50),
    "l_extendedprice": (100, 90_000),
    "l_discount": (0.0, 0.1),
    "l_tax": (0.0, 0.08),
    "l_partkey": (1, 200),
    "l_suppkey": (1, 10),
}
_GROUP_COLUMNS = ("l_returnflag", "l_linestatus")
_AGGREGATES = ("sum", "min", "max", "avg", "count")
_COMPARATORS = (">", "<", ">=", "<=")


def random_query(rng: random.Random, table: str = "lineitem") -> str:
    """One random SQL query in the supported dialect, from ``rng``.

    Queries are scalar aggregates or group-bys over numeric ``table``
    columns with 0-2 ``and``-joined comparison predicates — the shapes
    the mitosis optimizer partitions, so parallel-parity property tests
    can sweep the plan space (serial and process-parallel execution
    must return identical rows for every query this emits).
    """
    agg = rng.choice(_AGGREGATES)
    column = rng.choice(sorted(_QUERY_COLUMNS))
    select = "count(*)" if agg == "count" else f"{agg}({column})"
    predicates = []
    for _ in range(rng.randint(0, 2)):
        pred_col = rng.choice(sorted(_QUERY_COLUMNS))
        low, high = _QUERY_COLUMNS[pred_col]
        if isinstance(low, float):
            literal = f"{rng.uniform(low, high):.2f}"
        else:
            literal = str(rng.randint(low, high))
        predicates.append(f"{pred_col} {rng.choice(_COMPARATORS)} {literal}")
    where = f" where {' and '.join(predicates)}" if predicates else ""
    if rng.random() < 0.5:
        group = rng.choice(_GROUP_COLUMNS)
        return (f"select {group}, {select} from {table}{where} "
                f"group by {group} order by {group}")
    return f"select {select} from {table}{where}"
