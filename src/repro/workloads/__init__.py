"""Synthetic workload generators for scaling experiments.

Paper feature 5: "Support for large query plans with graph representation
of more than 1000 nodes."  Real plans only get that large through mitosis
over big tables; these generators produce arbitrarily large — but
structurally realistic — plans and traces directly, so the scaling
benchmarks (experiment F2) can sweep plan size independently of data
size.
"""

from repro.workloads.generator import (
    random_query,
    synthetic_plan,
    synthetic_trace,
    trace_for_program,
)

__all__ = ["random_query", "synthetic_plan", "synthetic_trace",
           "trace_for_program"]
