"""Bird's-eye view of the entire trace (paper §5, offline demo).

"Birds eye view of the entire trace, to understand the sequence of
instruction execution clustering."  Two complementary views:

* the *camera* operation — frame the whole plan (delegated to
  :meth:`repro.viz.view.View.fit_all`);
* the *trace clustering* below — segment the execution sequence into
  phases of same-module activity, which is how plan stages (binds,
  selections, joins, aggregation, result export) show up as bands when
  the animation plays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.profiler.events import TraceEvent


@dataclass
class TraceSegment:
    """A maximal run of consecutive done-events from one MAL module."""

    module: str
    first_event: int  # sequence number of first event in segment
    count: int
    total_usec: int
    start_clock_usec: int
    end_clock_usec: int


def segment_trace(events: Sequence[TraceEvent],
                  min_segment: int = 1) -> List[TraceSegment]:
    """Cluster the done-event sequence by module.

    Consecutive instructions from the same module merge into one segment;
    segments shorter than ``min_segment`` are absorbed into their
    predecessor (noise suppression for the display).
    """
    segments: List[TraceSegment] = []
    for event in events:
        if event.status != "done":
            continue
        if segments and segments[-1].module == event.module:
            current = segments[-1]
            current.count += 1
            current.total_usec += event.usec
            current.end_clock_usec = event.clock_usec
        else:
            segments.append(TraceSegment(
                module=event.module, first_event=event.event, count=1,
                total_usec=event.usec,
                start_clock_usec=event.clock_usec - event.usec,
                end_clock_usec=event.clock_usec,
            ))
    if min_segment > 1 and segments:
        merged: List[TraceSegment] = [segments[0]]
        for segment in segments[1:]:
            if segment.count < min_segment:
                merged[-1].count += segment.count
                merged[-1].total_usec += segment.total_usec
                merged[-1].end_clock_usec = segment.end_clock_usec
            else:
                merged.append(segment)
        segments = merged
    return segments


def render_birdseye(segments: Sequence[TraceSegment],
                    width: int = 72) -> str:
    """Render segments as a proportional text band — one glance shows
    where the time went."""
    total = sum(s.total_usec for s in segments)
    if total == 0:
        return "(empty trace)"
    lines = []
    bar = []
    for segment in segments:
        share = segment.total_usec / total
        cells = max(1, round(share * width))
        bar.append((segment.module[:1] or "?") * cells)
    lines.append("".join(bar))
    for segment in segments:
        share = 100.0 * segment.total_usec / total
        lines.append(
            f"{segment.module:<10} x{segment.count:<5} "
            f"{segment.total_usec:>8} usec  {share:5.1f}%"
        )
    return "\n".join(lines)
