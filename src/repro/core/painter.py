"""Applying colour actions to the glyph scene through the render queue.

Colour changes never touch glyphs directly: they are posted to the
:class:`~repro.viz.events.EventDispatchQueue`, reproducing the paper's
constraint that node recolouring is throttled (~150 ms per node) by the
Java Event Dispatch thread.  The online monitor reads the queue backlog
to decide when to sample the trace instead of painting every event.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.coloring import ColorAction
from repro.viz.color import Color
from repro.viz.events import EventDispatchQueue
from repro.viz.vspace import VirtualSpace


class GraphPainter:
    """Posts node-colour changes to the render queue and tracks state."""

    def __init__(self, space: VirtualSpace,
                 queue: Optional[EventDispatchQueue] = None) -> None:
        self.space = space
        self.queue = queue or EventDispatchQueue()
        #: colour already *rendered* per node (after queue execution)
        self.rendered: Dict[str, Color] = {}
        #: every action ever posted, for the analysis views
        self.history: List[ColorAction] = []

    def apply(self, action: ColorAction) -> None:
        """Queue one colour action for rendering."""
        node_id = action.node_id
        if f"shape:{node_id}" not in self.space:
            # colouring a node that is not in the (possibly pruned) view
            # is a no-op, matching ZGrviewer's behaviour for hidden glyphs
            return
        self.history.append(action)

        def render() -> None:
            shape = self.space.shape_of(node_id)
            shape.fill = action.color
            self.rendered[node_id] = action.color

        self.queue.post(f"paint {node_id} {action.color.to_hex()}", render)

    def apply_all(self, actions) -> None:
        for action in actions:
            self.apply(action)

    def pump(self, clock_ms: float) -> int:
        """Advance the render queue to ``clock_ms``."""
        return self.queue.run_until(clock_ms)

    def flush(self) -> int:
        """Render everything that is still queued."""
        return self.queue.drain()

    def color_of(self, node_id: str) -> Optional[Color]:
        """The rendered colour of a node (None = never painted)."""
        return self.rendered.get(node_id)

    def backlog(self) -> int:
        """Unrendered colour actions — the sampling trigger."""
        return self.queue.pending()
