"""Offline trace replay (paper §5, offline demo).

"Step by step walk through", "fast-forward, rewind, and pause
functionality of the trace replay", and "finding costly instructions by
coloring during trace replay between two instruction states" — all
driven by a :class:`ReplayController` over a recorded trace.

Rewind is implemented as deterministic re-execution: colours are wiped
and the colouring algorithm replays from the beginning to the target
position, which guarantees the display equals what stepping there
directly would have produced.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.coloring import ColorAction, PairSequenceColorizer, ThresholdColorizer
from repro.core.painter import GraphPainter
from repro.errors import StethoscopeError
from repro.profiler.events import TraceEvent
from repro.viz.color import WHITE


class ReplayController:
    """Replays a recorded trace over the plan display.

    Args:
        events: the full trace, in file order.
        painter: the display to colour.
        threshold_usec: when given, use the threshold colouring algorithm
            instead of the default pair-sequence one.
    """

    def __init__(self, events: Sequence[TraceEvent], painter: GraphPainter,
                 threshold_usec: Optional[int] = None) -> None:
        self.events = list(events)
        self.painter = painter
        self.threshold_usec = threshold_usec
        self.position = 0
        self.paused = False
        self._colorizer = self._fresh_colorizer()

    def _fresh_colorizer(self):
        if self.threshold_usec is not None:
            return ThresholdColorizer(self.threshold_usec)
        return PairSequenceColorizer()

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    @property
    def at_end(self) -> bool:
        return self.position >= len(self.events)

    @property
    def current_event(self) -> Optional[TraceEvent]:
        """The next event to be replayed (None at end of trace)."""
        if self.at_end:
            return None
        return self.events[self.position]

    def step(self) -> Optional[TraceEvent]:
        """Replay one event; returns it (None at end, or while paused)."""
        if self.paused or self.at_end:
            return None
        event = self.events[self.position]
        self.position += 1
        actions = self._colorizer.push(event)
        self.painter.apply_all(actions)
        self.painter.flush()
        return event

    def fast_forward(self, count: int) -> int:
        """Replay up to ``count`` events; returns how many ran."""
        ran = 0
        for _ in range(count):
            if self.step() is None:
                break
            ran += 1
        return ran

    def fast_forward_until(self, clock_usec: int) -> int:
        """Replay until the trace clock passes ``clock_usec``."""
        ran = 0
        while not self.at_end and not self.paused and \
                self.events[self.position].clock_usec <= clock_usec:
            self.step()
            ran += 1
        return ran

    def run_to_end(self) -> int:
        """Replay everything that remains."""
        return self.fast_forward(len(self.events))

    def rewind(self, count: int) -> int:
        """Go back ``count`` events (display re-derived); returns the new
        position."""
        return self.seek(max(0, self.position - count))

    def seek(self, position: int) -> int:
        """Jump to an absolute event position, re-deriving the display."""
        if position < 0 or position > len(self.events):
            raise StethoscopeError(
                f"seek position {position} outside 0..{len(self.events)}"
            )
        # wipe: repaint every previously coloured node back to white
        self.painter.flush()
        for node_id in list(self.painter.rendered):
            shape = self.painter.space.shape_of(node_id)
            shape.fill = WHITE
        self.painter.rendered.clear()
        self.painter.history.clear()
        self._colorizer = self._fresh_colorizer()
        self.position = 0
        was_paused = self.paused
        self.paused = False
        self.fast_forward(position)
        self.paused = was_paused
        return self.position

    def pause(self) -> None:
        """Stop consuming events until :meth:`resume`."""
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    # ------------------------------------------------------------------
    # analysis between two instruction states
    # ------------------------------------------------------------------

    def costly_between(self, start_position: int, end_position: int,
                       top: int = 10) -> List[TraceEvent]:
        """Most expensive instructions between two replay positions."""
        if not (0 <= start_position <= end_position <= len(self.events)):
            raise StethoscopeError("bad replay window")
        window = [
            e for e in self.events[start_position:end_position]
            if e.status == "done"
        ]
        window.sort(key=lambda e: e.usec, reverse=True)
        return window[:top]

    def actions_so_far(self) -> List[ColorAction]:
        """Colour actions produced up to the current position."""
        return list(self._colorizer.actions)
