"""Selective pruning of administrative instructions (paper future work).

"Selective pruning of MAL plan to remove unimportant administrative
instructions" — the plan graph is reduced to the data-carrying
instructions, with edges re-linked transitively so dataflow connectivity
survives.  Pruning only changes the *view*: pcs keep their identity, so
the trace mapping still works on the pruned graph.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.dot.graph import Digraph

#: Default administrative vocabulary: plan glue that carries no data.
ADMINISTRATIVE_FUNCTIONS = {
    "language.pass",
    "language.dataflow",
    "sql.mvc",
    "bat.setName",
}

#: Result-delivery plumbing — often pruned too when studying the
#: computational part of a plan.
RESULT_FUNCTIONS = {
    "sql.resultSet",
    "sql.rsColumn",
    "sql.exportResult",
    "sql.affectedRows",
}


def _function_of_label(label: str) -> str:
    """``module.function`` mentioned in a node label (plan statement)."""
    text = label
    if ":=" in text:
        text = text.split(":=", 1)[1]
    text = text.strip()
    head = text.split("(", 1)[0].strip()
    return head


def is_administrative(label: str, vocabulary: Set[str]) -> bool:
    """True when the node's statement belongs to the vocabulary."""
    return _function_of_label(label) in vocabulary


def prune_administrative(graph: Digraph,
                         vocabulary: Optional[Set[str]] = None,
                         prune_result_plumbing: bool = False) -> Digraph:
    """A pruned copy of the plan graph.

    Args:
        graph: the full plan graph (node labels are MAL statements).
        vocabulary: functions considered administrative (defaults to
            :data:`ADMINISTRATIVE_FUNCTIONS`).
        prune_result_plumbing: additionally drop the result-set calls.

    Edges through removed nodes are re-linked: if a → x → b and x is
    pruned, the result contains a → b, so long-range dataflow stays
    readable.
    """
    words = set(vocabulary if vocabulary is not None
                else ADMINISTRATIVE_FUNCTIONS)
    if prune_result_plumbing:
        words |= RESULT_FUNCTIONS
    doomed = {
        node_id for node_id, node in graph.nodes.items()
        if is_administrative(node.label, words)
    }
    keep = set(graph.nodes) - doomed
    out = Digraph(graph.name + "_pruned", dict(graph.attrs))
    for node_id in graph.nodes:
        if node_id in keep:
            out.add_node(node_id, dict(graph.nodes[node_id].attrs))
    # re-link: for each kept node, walk forward through pruned nodes
    seen_pairs = set()
    for node_id in keep:
        frontier: List[str] = list(graph.successors(node_id))
        visited: Set[str] = set()
        while frontier:
            target = frontier.pop()
            if target in visited:
                continue
            visited.add(target)
            if target in keep:
                if (node_id, target) not in seen_pairs:
                    seen_pairs.add((node_id, target))
                    out.add_edge(node_id, target)
            else:
                frontier.extend(graph.successors(target))
    return out


def pruning_report(before: Digraph, after: Digraph) -> str:
    """One-line summary of what pruning removed."""
    removed = before.node_count() - after.node_count()
    return (
        f"pruned {removed} administrative node(s): "
        f"{before.node_count()} -> {after.node_count()} nodes, "
        f"{before.edge_count()} -> {after.edge_count()} edges"
    )
