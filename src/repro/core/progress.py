"""Progress window and pop-ups (paper §4.2.1).

"Lengthy instructions could be filtered either on server or client side.
They could be represented by color coding, progress window, and pop-ups."
Colour coding lives in :mod:`repro.core.coloring`; this module provides
the other two representations:

* :class:`ProgressWindow` — live query progress: instructions done vs
  plan size, elapsed trace time, a rate-based completion estimate and a
  text progress bar;
* :class:`PopupManager` — transient notifications raised when an
  instruction runs longer than a threshold, dismissed when it completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.profiler.events import TraceEvent


class ProgressWindow:
    """Tracks query execution progress from the event stream."""

    def __init__(self, plan_size: int) -> None:
        if plan_size <= 0:
            raise ValueError("plan size must be positive")
        self.plan_size = plan_size
        self.done_pcs: set = set()
        self.running_pcs: set = set()
        self.clock_usec = 0

    def observe(self, event: TraceEvent) -> None:
        """Feed one trace event."""
        self.clock_usec = max(self.clock_usec, event.clock_usec)
        if event.status == "start":
            self.running_pcs.add(event.pc)
        else:
            self.running_pcs.discard(event.pc)
            self.done_pcs.add(event.pc)

    @property
    def fraction_done(self) -> float:
        return min(1.0, len(self.done_pcs) / self.plan_size)

    @property
    def complete(self) -> bool:
        return len(self.done_pcs) >= self.plan_size

    def eta_usec(self) -> Optional[int]:
        """Remaining-time estimate from the average per-instruction rate
        so far (None until something finished)."""
        done = len(self.done_pcs)
        if done == 0:
            return None
        rate = self.clock_usec / done  # usec per completed instruction
        remaining = self.plan_size - done
        return int(rate * remaining)

    def render(self, width: int = 40) -> str:
        """The window as text: bar, counts, in-flight pcs, ETA."""
        filled = int(self.fraction_done * width)
        bar = "[" + "#" * filled + "-" * (width - filled) + "]"
        parts = [
            f"{bar} {len(self.done_pcs)}/{self.plan_size} "
            f"({self.fraction_done:.0%})",
            f"clock: {self.clock_usec} usec",
        ]
        if self.running_pcs:
            running = ", ".join(str(pc) for pc in sorted(self.running_pcs))
            parts.append(f"running: pc {running}")
        eta = self.eta_usec()
        if eta is not None and not self.complete:
            parts.append(f"eta: ~{eta} usec")
        return "\n".join(parts)


@dataclass
class Popup:
    """One transient notification about a long-running instruction."""

    pc: int
    stmt: str
    raised_at_usec: int
    dismissed_at_usec: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.dismissed_at_usec is None

    def message(self) -> str:
        return (f"pc={self.pc} still running after "
                f"{self.raised_at_usec} usec: {self.stmt}")


class PopupManager:
    """Raises a pop-up when an instruction exceeds ``threshold_usec``
    and dismisses it when the done event arrives."""

    def __init__(self, threshold_usec: int) -> None:
        if threshold_usec <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_usec = threshold_usec
        self._started: Dict[int, TraceEvent] = {}
        self.popups: List[Popup] = []
        self._active_by_pc: Dict[int, Popup] = {}

    def observe(self, event: TraceEvent) -> Optional[Popup]:
        """Feed one event; returns a newly raised pop-up, if any."""
        if event.status == "start":
            self._started[event.pc] = event
            return None
        self._started.pop(event.pc, None)
        popup = self._active_by_pc.pop(event.pc, None)
        if popup is not None:
            popup.dismissed_at_usec = event.clock_usec
        return None

    def tick(self, clock_usec: int) -> List[Popup]:
        """Check in-flight instructions against the threshold; returns
        pop-ups raised by this tick."""
        raised = []
        for pc, start in list(self._started.items()):
            if pc in self._active_by_pc:
                continue
            if clock_usec - start.clock_usec >= self.threshold_usec:
                popup = Popup(pc=pc, stmt=start.stmt,
                              raised_at_usec=clock_usec)
                self.popups.append(popup)
                self._active_by_pc[pc] = popup
                raised.append(popup)
        return raised

    def active(self) -> List[Popup]:
        """Currently displayed pop-ups."""
        return [p for p in self.popups if p.active]
