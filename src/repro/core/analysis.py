"""Run-time analysis over execution traces.

The paper's offline demo shows "utilization distribution of threads,
memory usage by operators, and costly instruction clustering"; the online
demo adds "multi-core utilisation analysis [that] exhibits degree of
multi-threaded parallelization of MAL instructions".  Each of those is a
function here, and :func:`detect_sequential_anomaly` captures the
reported finding of "sequential execution of a MAL plan where
multithreaded execution was expected".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.profiler.events import TraceEvent


@dataclass
class ThreadUtilization:
    """Busy time and share of the query makespan for one worker thread."""

    thread: int
    busy_usec: int
    instructions: int
    utilization: float  # busy / makespan


def thread_utilization(events: Sequence[TraceEvent]) -> List[ThreadUtilization]:
    """Per-thread busy time over the trace (done events carry usec)."""
    makespan = max((e.clock_usec for e in events), default=0)
    busy: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for event in events:
        if event.status != "done":
            continue
        busy[event.thread] = busy.get(event.thread, 0) + event.usec
        counts[event.thread] = counts.get(event.thread, 0) + 1
    return [
        ThreadUtilization(
            thread=thread, busy_usec=busy[thread],
            instructions=counts[thread],
            utilization=(busy[thread] / makespan) if makespan else 0.0,
        )
        for thread in sorted(busy)
    ]


@dataclass
class OperatorMemory:
    """Memory behaviour of one MAL operator across the trace."""

    operator: str  # module.function
    calls: int
    total_usec: int
    peak_rss_bytes: int
    mean_rss_bytes: float


def memory_by_operator(events: Sequence[TraceEvent]) -> List[OperatorMemory]:
    """Memory usage by operator, sorted by peak rss (offline demo)."""
    grouped: Dict[str, List[TraceEvent]] = {}
    for event in events:
        if event.status != "done":
            continue
        grouped.setdefault(f"{event.module}.{event.function}", []).append(event)
    out = []
    for operator, group in grouped.items():
        rss = [e.rss_bytes for e in group]
        out.append(OperatorMemory(
            operator=operator, calls=len(group),
            total_usec=sum(e.usec for e in group),
            peak_rss_bytes=max(rss),
            mean_rss_bytes=sum(rss) / len(rss),
        ))
    out.sort(key=lambda o: o.peak_rss_bytes, reverse=True)
    return out


@dataclass
class CostCluster:
    """A run of consecutive costly instructions (plan hot region)."""

    pcs: List[int]
    total_usec: int

    @property
    def span(self) -> Tuple[int, int]:
        return (self.pcs[0], self.pcs[-1])


def costly_instructions(events: Sequence[TraceEvent],
                        top: int = 10) -> List[TraceEvent]:
    """The top-N most expensive done events."""
    done = [e for e in events if e.status == "done"]
    done.sort(key=lambda e: e.usec, reverse=True)
    return done[:top]


def costly_clusters(events: Sequence[TraceEvent],
                    fraction: float = 0.8) -> List[CostCluster]:
    """Cluster costly instructions by pc adjacency.

    Instructions are taken in decreasing cost until ``fraction`` of the
    total time is covered, then grouped into maximal runs of consecutive
    pcs — the "costly instruction clustering" view, which shows *where in
    the plan* the time goes rather than just which instruction.
    """
    done = [e for e in events if e.status == "done"]
    total = sum(e.usec for e in done)
    if total == 0:
        return []
    chosen: Dict[int, int] = {}
    covered = 0
    for event in sorted(done, key=lambda e: e.usec, reverse=True):
        if covered >= total * fraction:
            break
        chosen[event.pc] = chosen.get(event.pc, 0) + event.usec
        covered += event.usec
    clusters: List[CostCluster] = []
    for pc in sorted(chosen):
        if clusters and pc == clusters[-1].pcs[-1] + 1:
            clusters[-1].pcs.append(pc)
            clusters[-1].total_usec += chosen[pc]
        else:
            clusters.append(CostCluster([pc], chosen[pc]))
    clusters.sort(key=lambda c: c.total_usec, reverse=True)
    return clusters


@dataclass
class ParallelismProfile:
    """Degree of multi-threaded parallelisation of a trace."""

    threads_used: int
    max_concurrency: int
    mean_concurrency: float
    makespan_usec: int
    busy_usec: int

    @property
    def speedup_vs_serial(self) -> float:
        """Observed speedup against running every instruction serially."""
        if self.makespan_usec == 0:
            return 1.0
        return self.busy_usec / self.makespan_usec


def parallelism_profile(events: Sequence[TraceEvent]) -> ParallelismProfile:
    """Concurrency statistics from start/done event interleaving."""
    done = [e for e in events if e.status == "done"]
    makespan = max((e.clock_usec for e in events), default=0)
    busy = sum(e.usec for e in done)
    # sweep the start/end intervals for concurrency
    boundary: List[Tuple[int, int]] = []
    for event in done:
        boundary.append((event.clock_usec - event.usec, +1))
        boundary.append((event.clock_usec, -1))
    boundary.sort()
    concurrency = 0
    max_concurrency = 0
    weighted = 0
    previous_clock = None
    for clock, delta in boundary:
        if previous_clock is not None and concurrency > 0:
            weighted += concurrency * (clock - previous_clock)
        concurrency += delta
        max_concurrency = max(max_concurrency, concurrency)
        previous_clock = clock
    mean = (weighted / makespan) if makespan else 0.0
    return ParallelismProfile(
        threads_used=len({e.thread for e in done}),
        max_concurrency=max_concurrency,
        mean_concurrency=mean,
        makespan_usec=makespan,
        busy_usec=busy,
    )


def rss_timeline(events: Sequence[TraceEvent],
                 buckets: int = 60) -> List[Tuple[int, int]]:
    """Resident-set size over the query's lifetime.

    Returns (clock_usec, rss_bytes) samples — the peak rss observed in
    each of ``buckets`` equal time windows — the data behind a memory
    timeline in the analytic panel.
    """
    if not events:
        return []
    makespan = max(e.clock_usec for e in events) or 1
    samples = [0] * buckets
    for event in events:
        index = min(buckets - 1, event.clock_usec * buckets // makespan)
        samples[index] = max(samples[index], event.rss_bytes)
    # carry the last known value through empty windows
    current = 0
    out: List[Tuple[int, int]] = []
    for index, value in enumerate(samples):
        current = value if value else current
        out.append(((index + 1) * makespan // buckets, current))
    return out


def render_rss_sparkline(events: Sequence[TraceEvent],
                         width: int = 60) -> str:
    """The rss timeline as a one-line text sparkline."""
    timeline = rss_timeline(events, buckets=width)
    if not timeline:
        return "(empty trace)"
    levels = " _.-=#%@"
    peak = max(v for _t, v in timeline) or 1
    chars = [
        levels[min(len(levels) - 1, v * (len(levels) - 1) // peak)]
        for _t, v in timeline
    ]
    return "".join(chars) + f"  (peak {peak} bytes)"


@dataclass
class OperatorSlowdown:
    """How much slower one operator ran in the loaded trace."""

    operator: str
    baseline_usec: int
    loaded_usec: int

    @property
    def slowdown(self) -> float:
        if self.baseline_usec == 0:
            return 1.0
        return self.loaded_usec / self.baseline_usec


@dataclass
class InterferenceReport:
    """Comparison of the same query traced idle vs. under load.

    The paper's online mode provides "insight in the total system
    behavior.  For example, influence of concurrent processes competing
    with the resources" — this report quantifies that influence: overall
    makespan inflation and the per-operator slowdowns, sorted worst
    first.
    """

    baseline_makespan_usec: int
    loaded_makespan_usec: int
    operators: List[OperatorSlowdown]

    @property
    def makespan_inflation(self) -> float:
        if self.baseline_makespan_usec == 0:
            return 1.0
        return self.loaded_makespan_usec / self.baseline_makespan_usec

    def worst(self, top: int = 5) -> List[OperatorSlowdown]:
        return self.operators[:top]


def compare_traces(baseline: Sequence[TraceEvent],
                   loaded: Sequence[TraceEvent]) -> InterferenceReport:
    """Quantify interference between two traces of the *same* plan.

    Operators present in only one trace are skipped (a different plan
    is a user error this analysis cannot repair).
    """

    def per_operator(events: Sequence[TraceEvent]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in events:
            if event.status != "done":
                continue
            key = f"{event.module}.{event.function}"
            out[key] = out.get(key, 0) + event.usec
        return out

    base = per_operator(baseline)
    load = per_operator(loaded)
    operators = [
        OperatorSlowdown(operator=op, baseline_usec=base[op],
                         loaded_usec=load[op])
        for op in base if op in load
    ]
    operators.sort(key=lambda o: o.slowdown, reverse=True)
    return InterferenceReport(
        baseline_makespan_usec=max(
            (e.clock_usec for e in baseline), default=0
        ),
        loaded_makespan_usec=max(
            (e.clock_usec for e in loaded), default=0
        ),
        operators=operators,
    )


@dataclass
class SequentialAnomaly:
    """Diagnosis of a plan that failed to parallelise."""

    detected: bool
    threads_used: int
    expected_threads: int
    max_concurrency: int
    explanation: str


def detect_sequential_anomaly(events: Sequence[TraceEvent],
                              expected_threads: int) -> SequentialAnomaly:
    """Flag sequential execution where multi-threading was expected.

    The paper: "using Stethoscope we have uncovered several unusual
    cases, such as sequential execution of a MAL plan where multithreaded
    execution was expected."
    """
    profile = parallelism_profile(events)
    detected = expected_threads > 1 and profile.threads_used <= 1
    if detected:
        explanation = (
            f"plan ran on {profile.threads_used} thread(s) although "
            f"{expected_threads} workers were available — check whether "
            "the dataflow optimizer ran (e.g. sequential_pipe selected)"
        )
    else:
        explanation = (
            f"{profile.threads_used} thread(s) used, max concurrency "
            f"{profile.max_concurrency}"
        )
    return SequentialAnomaly(
        detected=detected,
        threads_used=profile.threads_used,
        expected_threads=expected_threads,
        max_concurrency=profile.max_concurrency,
        explanation=explanation,
    )
