"""Interactive navigation strategies over the plan graph.

Paper §3: "Stethoscope uses this graph structure representation to setup
different navigational strategies"; §4.1 names the prominent click
actions: "navigate to the next node in the graph, change color of a
node, and display tool-tip text"; §5 demonstrates "interactive animated
navigation in complex query plans".

The :class:`Navigator` keeps a current node, moves along dataflow edges
(downstream/upstream), across siblings within a rank, jumps to
interesting nodes (next RED, most expensive), and keeps a history for
back/forward — every move optionally animating the camera.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dot.graph import Digraph
from repro.errors import StethoscopeError
from repro.layout.geometry import Layout
from repro.viz.animation import Animator
from repro.viz.view import View


class Navigator:
    """Keyboard/mouse-style navigation over a laid-out plan.

    Args:
        graph: the plan DAG.
        layout: its geometry (for sibling order and camera targets).
        view: optional view to move the camera with.
        animator: optional animator; when given with a view, moves are
            smooth zoom/pan animations instead of jumps.
    """

    def __init__(self, graph: Digraph, layout: Layout,
                 view: Optional[View] = None,
                 animator: Optional[Animator] = None,
                 focus_altitude: float = 25.0) -> None:
        self.graph = graph
        self.layout = layout
        self.view = view
        self.animator = animator
        self.focus_altitude = focus_altitude
        roots = graph.roots()
        # prefer a root that actually leads somewhere (administrative
        # markers like language.dataflow are isolated nodes)
        connected = [r for r in roots if graph.out_degree(r) > 0]
        if connected:
            self.current: Optional[str] = connected[0]
        elif roots:
            self.current = roots[0]
        else:
            self.current = next(iter(graph.nodes)) if graph.nodes else None
        self._history: List[str] = []
        self._future: List[str] = []

    # ------------------------------------------------------------------

    def _move_to(self, node_id: str, record: bool = True) -> str:
        if not self.graph.has_node(node_id):
            raise StethoscopeError(f"no node {node_id!r}")
        if record and self.current is not None and self.current != node_id:
            self._history.append(self.current)
            self._future.clear()
        self.current = node_id
        self._update_camera()
        return node_id

    def _update_camera(self) -> None:
        if self.view is None or self.current not in self.layout.nodes:
            return
        node = self.layout.nodes[self.current]
        if self.animator is not None:
            self.animator.animate_camera_to(
                self.view.camera, node.x, node.y, self.focus_altitude
            )
        else:
            self.view.camera.look_at(node.x, node.y)
            self.view.camera.altitude = self.focus_altitude

    # ------------------------------------------------------------------
    # dataflow moves
    # ------------------------------------------------------------------

    def goto(self, node_id: str) -> str:
        """Jump straight to a node (a mouse click)."""
        return self._move_to(node_id)

    def downstream(self, index: int = 0) -> Optional[str]:
        """Follow the index-th outgoing dataflow edge (consumer)."""
        if self.current is None:
            return None
        successors = self.graph.successors(self.current)
        if not successors:
            return None
        return self._move_to(successors[min(index, len(successors) - 1)])

    def upstream(self, index: int = 0) -> Optional[str]:
        """Follow the index-th incoming dataflow edge (producer)."""
        if self.current is None:
            return None
        predecessors = self.graph.predecessors(self.current)
        if not predecessors:
            return None
        return self._move_to(predecessors[min(index, len(predecessors) - 1)])

    def sibling(self, offset: int = 1) -> Optional[str]:
        """Move left/right within the current node's rank, in x order."""
        if self.current is None or self.current not in self.layout.nodes:
            return None
        me = self.layout.nodes[self.current]
        rank_nodes = sorted(
            (n for n in self.layout.nodes.values() if n.rank == me.rank),
            key=lambda n: n.x,
        )
        ids = [n.node_id for n in rank_nodes]
        position = ids.index(self.current) + offset
        if not (0 <= position < len(ids)):
            return None
        return self._move_to(ids[position])

    # ------------------------------------------------------------------
    # semantic jumps
    # ------------------------------------------------------------------

    def next_in_plan(self) -> Optional[str]:
        """Next node in pc order (the step-through strategy)."""
        if self.current is None:
            return None
        try:
            from repro.core.mapping import node_for_pc, pc_for_node

            target = node_for_pc(pc_for_node(self.current) + 1)
        except StethoscopeError:
            return None
        if not self.graph.has_node(target):
            return None
        return self._move_to(target)

    def next_colored(self, painter, color=None) -> Optional[str]:
        """Jump to the next painted node after the current pc — "find
        the next RED one" during a live run."""
        from repro.core.mapping import pc_for_node

        try:
            here = pc_for_node(self.current) if self.current else -1
        except StethoscopeError:
            here = -1
        candidates = []
        for node_id, node_color in painter.rendered.items():
            if color is not None and node_color != color:
                continue
            try:
                pc = pc_for_node(node_id)
            except StethoscopeError:
                continue
            if pc > here:
                candidates.append(pc)
        if not candidates:
            return None
        return self._move_to(f"n{min(candidates)}")

    def most_expensive(self, trace_map) -> Optional[str]:
        """Jump to the node with the largest done-event duration."""
        best = None
        best_usec = -1
        for node_id in self.graph.nodes:
            done = trace_map.done_event_of(node_id)
            if done is not None and done.usec > best_usec:
                best, best_usec = node_id, done.usec
        if best is None:
            return None
        return self._move_to(best)

    # ------------------------------------------------------------------
    # history
    # ------------------------------------------------------------------

    def back(self) -> Optional[str]:
        """Return to the previously visited node."""
        if not self._history:
            return None
        if self.current is not None:
            self._future.append(self.current)
        return self._move_to(self._history.pop(), record=False)

    def forward(self) -> Optional[str]:
        """Undo a :meth:`back`."""
        if not self._future:
            return None
        if self.current is not None:
            self._history.append(self.current)
        return self._move_to(self._future.pop(), record=False)
