"""The filter-options window model (paper §5: "Stethoscope filter
options window").

A mutable front for :class:`~repro.profiler.filters.EventFilter`: the
user toggles statuses, modules and the cost threshold; the window builds
the immutable filter that is pushed to the server-side profiler and/or
applied client-side by the textual Stethoscope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.profiler.filters import EventFilter

#: The MAL modules offered as checkboxes, in display order.
KNOWN_MODULES = [
    "aggr", "algebra", "bat", "batcalc", "batmtime", "batstr", "calc",
    "group", "language", "mat", "mtime", "sql",
]


class FilterOptionsWindow:
    """UI-model of the filter options: all toggles default to *on*."""

    def __init__(self) -> None:
        self.show_start = True
        self.show_done = True
        self._module_enabled: Dict[str, bool] = {
            module: True for module in KNOWN_MODULES
        }
        self.min_usec = 0
        self.pcs: Optional[Set[int]] = None
        self.threads: Optional[Set[int]] = None

    # ------------------------------------------------------------------

    def toggle_status(self, status: str) -> bool:
        """Flip a status checkbox; returns the new state."""
        if status == "start":
            self.show_start = not self.show_start
            return self.show_start
        if status == "done":
            self.show_done = not self.show_done
            return self.show_done
        raise ValueError(f"unknown status {status!r}")

    def toggle_module(self, module: str) -> bool:
        """Flip a module checkbox (unknown modules appear on demand)."""
        state = not self._module_enabled.get(module, True)
        self._module_enabled[module] = state
        return state

    def only_modules(self, *modules: str) -> None:
        """Convenience: enable exactly the given modules."""
        for module in self._module_enabled:
            self._module_enabled[module] = False
        for module in modules:
            self._module_enabled[module] = True

    def set_threshold(self, min_usec: int) -> None:
        """Only done-events at least this expensive pass."""
        if min_usec < 0:
            raise ValueError("threshold must be non-negative")
        self.min_usec = min_usec

    def watch_pcs(self, pcs: Optional[Set[int]]) -> None:
        """Restrict to specific instructions (None = all)."""
        self.pcs = set(pcs) if pcs is not None else None

    def watch_threads(self, threads: Optional[Set[int]]) -> None:
        """Restrict to specific worker threads (None = all)."""
        self.threads = set(threads) if threads is not None else None

    # ------------------------------------------------------------------

    def build(self) -> EventFilter:
        """The EventFilter matching the current toggles."""
        statuses: Optional[Set[str]] = None
        if not (self.show_start and self.show_done):
            statuses = set()
            if self.show_start:
                statuses.add("start")
            if self.show_done:
                statuses.add("done")
        modules: Optional[Set[str]] = None
        if not all(self._module_enabled.values()):
            modules = {m for m, on in self._module_enabled.items() if on}
        return EventFilter(
            statuses=statuses, modules=modules, pcs=self.pcs,
            threads=self.threads, min_usec=self.min_usec,
        )

    def to_wire_options(self) -> Dict:
        """The ``filter`` payload of the client protocol's ``profiler``
        request (server-side filtering)."""
        options: Dict = {}
        event_filter = self.build()
        if event_filter.statuses is not None:
            options["statuses"] = sorted(event_filter.statuses)
        if event_filter.modules is not None:
            options["modules"] = sorted(event_filter.modules)
        if event_filter.min_usec:
            options["min_usec"] = event_filter.min_usec
        return options

    def render(self) -> str:
        """The window as text (checkbox list)."""
        lines = ["== filter options =="]
        lines.append(f"[{'x' if self.show_start else ' '}] start events")
        lines.append(f"[{'x' if self.show_done else ' '}] done events")
        for module in sorted(self._module_enabled):
            mark = "x" if self._module_enabled[module] else " "
            lines.append(f"[{mark}] module {module}")
        lines.append(f"threshold: {self.min_usec} usec")
        return "\n".join(lines)
