"""Tool-tip text and debug-options windows (paper feature 3).

"Run time analysis of execution states using debug window, tool tip
text."  Tool-tips summarise one node's execution; debug windows watch a
set of instructions and snapshot their state as the trace advances —
"multiple instances of debug options window" are just multiple
:class:`DebugWindow` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.mapping import PlanTraceMap, node_for_pc
from repro.profiler.events import TraceEvent


def tooltip_text(trace_map: PlanTraceMap, node_id: str) -> str:
    """Multi-line tool-tip for a node: statement, status, timing, memory.

    Shown when the cursor hovers a node in the paper's display window.
    """
    label = trace_map.graph.node(node_id).label
    events = trace_map.events_of(node_id)
    lines = [label or node_id]
    if not events:
        lines.append("state: not executed")
        return "\n".join(lines)
    done = trace_map.done_event_of(node_id)
    if done is None:
        start = events[-1]
        lines.append(f"state: running (since {start.clock_usec} usec)")
        lines.append(f"thread: {start.thread}")
        lines.append(f"rss: {start.rss_bytes} bytes")
    else:
        lines.append("state: done")
        lines.append(f"elapsed: {done.usec} usec")
        lines.append(f"thread: {done.thread}")
        lines.append(f"rss: {done.rss_bytes} bytes")
        lines.append(
            f"window: {done.clock_usec - done.usec} .. {done.clock_usec} usec"
        )
    if len(events) > 2:
        lines.append(f"executions: {sum(1 for e in events if e.status == 'start')}")
    return "\n".join(lines)


@dataclass
class WatchSnapshot:
    """State of one watched instruction at a moment in the trace."""

    pc: int
    stmt: str
    state: str  # "pending" | "running" | "done"
    clock_usec: int
    usec: int = 0
    thread: Optional[int] = None
    rss_bytes: Optional[int] = None


class DebugWindow:
    """A watch list over selected pcs, updated as events stream in.

    Mirrors the paper's debug-options window: the user picks instructions
    to monitor; every event updates the watched rows; :meth:`rows`
    renders the current table.
    """

    def __init__(self, name: str, watched_pcs: Set[int]) -> None:
        self.name = name
        self.watched = set(watched_pcs)
        self._state: Dict[int, WatchSnapshot] = {}
        self.update_count = 0

    def observe(self, event: TraceEvent) -> Optional[WatchSnapshot]:
        """Feed one event; returns the new snapshot if it was watched."""
        if event.pc not in self.watched:
            return None
        self.update_count += 1
        snapshot = WatchSnapshot(
            pc=event.pc, stmt=event.stmt,
            state="running" if event.status == "start" else "done",
            clock_usec=event.clock_usec,
            usec=event.usec, thread=event.thread,
            rss_bytes=event.rss_bytes,
        )
        self._state[event.pc] = snapshot
        return snapshot

    def rows(self) -> List[WatchSnapshot]:
        """Current watch table, pending instructions included."""
        out = []
        for pc in sorted(self.watched):
            if pc in self._state:
                out.append(self._state[pc])
            else:
                out.append(WatchSnapshot(pc=pc, stmt="", state="pending",
                                         clock_usec=0))
        return out

    def render(self) -> str:
        """The window as text (one row per watched instruction)."""
        lines = [f"== debug window: {self.name} =="]
        for row in self.rows():
            detail = f" usec={row.usec} thread={row.thread}" \
                if row.state == "done" else ""
            lines.append(f"pc={row.pc:<4} {row.state:<8}{detail}  {row.stmt}")
        return "\n".join(lines)
