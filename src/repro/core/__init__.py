"""Stethoscope: interactive visual analysis of query execution plans.

The paper's contribution — everything above the substrates: the textual
Stethoscope (UDP trace client), trace↔dot mapping, the §4.2.1 colouring
algorithms, offline replay (step / fast-forward / rewind / pause),
online monitoring (listener, query and monitor threads with trace
sampling), run-time analysis (thread utilisation, memory per operator,
costly-instruction clustering), the bird's-eye view, tool-tips and debug
windows, and the paper's future-work features (gradient colouring,
administrative-instruction pruning, trace micro-analysis).
"""

from repro.core.coloring import (
    ColorAction,
    PairSequenceColorizer,
    ThresholdColorizer,
)
from repro.core.inspect import DebugWindow, tooltip_text
from repro.core.mapping import PlanTraceMap, node_for_pc, pc_for_node
from repro.core.microanalysis import TraceAnalyzer
from repro.core.navigation import Navigator
from repro.core.options import FilterOptionsWindow
from repro.core.painter import GraphPainter
from repro.core.pruning import prune_administrative
from repro.core.replay import ReplayController
from repro.core.session import OfflineSession, Stethoscope
from repro.core.textual import ServerConnection, TextualStethoscope

__all__ = [
    "ColorAction",
    "DebugWindow",
    "FilterOptionsWindow",
    "GraphPainter",
    "Navigator",
    "OfflineSession",
    "PairSequenceColorizer",
    "PlanTraceMap",
    "ReplayController",
    "ServerConnection",
    "Stethoscope",
    "TextualStethoscope",
    "ThresholdColorizer",
    "TraceAnalyzer",
    "node_for_pc",
    "pc_for_node",
    "prune_administrative",
    "tooltip_text",
]
