"""Analytic interface for micro-analysis of traces (paper future work).

"An analytic interface for micro analysis of trace" — tabular statistics
over the event stream: per-instruction and per-operator aggregates,
latency percentiles, time-window slicing and CSV export, so a trace can
be studied quantitatively instead of visually.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.profiler.events import TraceEvent


@dataclass
class InstructionStats:
    """Aggregate statistics of one instruction (pc) across a trace."""

    pc: int
    stmt: str
    executions: int
    total_usec: int
    min_usec: int
    max_usec: int
    mean_usec: float


@dataclass
class OperatorStats:
    """Aggregate statistics of one operator (module.function)."""

    operator: str
    calls: int
    total_usec: int
    share: float  # of total trace busy time


class TraceAnalyzer:
    """Micro-analysis over a recorded trace."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events = list(events)
        self.done = [e for e in self.events if e.status == "done"]

    # ------------------------------------------------------------------

    def per_instruction(self) -> List[InstructionStats]:
        """Statistics per pc, ordered by total time descending."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self.done:
            grouped.setdefault(event.pc, []).append(event)
        out = []
        for pc, group in grouped.items():
            usecs = [e.usec for e in group]
            out.append(InstructionStats(
                pc=pc, stmt=group[-1].stmt, executions=len(group),
                total_usec=sum(usecs), min_usec=min(usecs),
                max_usec=max(usecs), mean_usec=sum(usecs) / len(usecs),
            ))
        out.sort(key=lambda s: s.total_usec, reverse=True)
        return out

    def per_operator(self) -> List[OperatorStats]:
        """Statistics per operator, ordered by total time descending."""
        grouped: Dict[str, List[TraceEvent]] = {}
        for event in self.done:
            grouped.setdefault(
                f"{event.module}.{event.function}", []
            ).append(event)
        total = sum(e.usec for e in self.done) or 1
        out = [
            OperatorStats(
                operator=operator, calls=len(group),
                total_usec=sum(e.usec for e in group),
                share=sum(e.usec for e in group) / total,
            )
            for operator, group in grouped.items()
        ]
        out.sort(key=lambda s: s.total_usec, reverse=True)
        return out

    def percentile(self, q: float) -> int:
        """The q-th percentile (0..100) of done-event durations."""
        if not self.done:
            return 0
        if not (0 <= q <= 100):
            raise ValueError("percentile must be in 0..100")
        ordered = sorted(e.usec for e in self.done)
        rank = (q / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        fraction = rank - low
        return round(ordered[low] * (1 - fraction) + ordered[high] * fraction)

    def window(self, start_usec: int, end_usec: int) -> "TraceAnalyzer":
        """A sub-analyzer over one time window of the trace."""
        return TraceAnalyzer([
            e for e in self.events
            if start_usec <= e.clock_usec <= end_usec
        ])

    def summary(self) -> Dict[str, float]:
        """Headline numbers for the analytic panel."""
        makespan = max((e.clock_usec for e in self.events), default=0)
        busy = sum(e.usec for e in self.done)
        return {
            "events": len(self.events),
            "instructions": len({e.pc for e in self.done}),
            "makespan_usec": makespan,
            "busy_usec": busy,
            "p50_usec": self.percentile(50),
            "p95_usec": self.percentile(95),
            "p99_usec": self.percentile(99),
        }

    def to_csv(self) -> str:
        """Per-instruction table as CSV (export for external tooling)."""
        lines = ["pc,executions,total_usec,min_usec,max_usec,mean_usec,stmt"]
        for stats in self.per_instruction():
            stmt = stats.stmt.replace('"', '""')
            lines.append(
                f"{stats.pc},{stats.executions},{stats.total_usec},"
                f"{stats.min_usec},{stats.max_usec},{stats.mean_usec:.1f},"
                f'"{stmt}"'
            )
        return "\n".join(lines)
