"""Node-colouring algorithms for execution-state display (paper §4.2.1).

"A node is colored RED or GREEN based on the instruction status of
'start' or 'done' respectively.  ...  A consecutive 'start' and 'done'
event status for the same instruction, with presence of more instructions
afterwards, indicates that the instruction under analysis executed in
least time.  Hence, it is not a costly instruction.  All such
instructions are not colored."

Two algorithms, exactly as the paper offers:

* :class:`PairSequenceColorizer` — the default: an instruction whose
  start/done events arrive as an adjacent pair is *fast* and stays
  uncoloured; one whose start is followed by some other instruction's
  event is *long-running* and turns RED, then GREEN when its done event
  finally arrives.  The paper's worked example — six statements
  ``{start,1},{done,1},{start,2},{done,2},{start,3},{start,4}`` — leaves
  pcs 1 and 2 uncoloured and paints pc 3 RED (pc 4's fate is still
  unknown: nothing arrived after its start).
* :class:`ThresholdColorizer` — "another algorithm which allows the user
  to specify an instruction execution threshold time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.profiler.events import TraceEvent
from repro.viz.color import Color, GREEN, RED


@dataclass(frozen=True)
class ColorAction:
    """One colouring decision: paint node ``n<pc>`` with ``color``."""

    pc: int
    color: Color
    reason: str

    @property
    def node_id(self) -> str:
        return f"n{self.pc}"


class PairSequenceColorizer:
    """The paper's streaming pair-detection algorithm.

    Feed events with :meth:`push`; each call returns the colour actions
    the event triggers (possibly none).  State per pc: *open* (start
    seen, nothing after it yet), *red* (start seen, other events arrived
    before its done).  Interleaved (multi-threaded) traces are supported:
    every open instruction that an unrelated event overtakes turns RED.
    """

    def __init__(self) -> None:
        #: pcs whose start arrived and nothing has overtaken them yet
        self._open: List[int] = []
        #: pcs currently painted RED (long-running, not yet done)
        self._red: set = set()
        self.actions: List[ColorAction] = []

    def push(self, event: TraceEvent) -> List[ColorAction]:
        """Process one event; returns the triggered colour actions."""
        out: List[ColorAction] = []
        if event.status == "start":
            # anything still open has now been overtaken -> RED
            out.extend(self._overtake(exclude=None))
            self._open.append(event.pc)
        else:  # done
            if self._open and self._open[-1] == event.pc and \
                    event.pc not in self._red:
                # adjacent start/done pair: fast instruction, no colour
                self._open.pop()
            else:
                # the done of a long-running instruction
                out.extend(self._overtake(exclude=event.pc))
                if event.pc in self._open:
                    self._open.remove(event.pc)
                if event.pc in self._red:
                    self._red.discard(event.pc)
                    out.append(ColorAction(event.pc, GREEN, "long done"))
                else:
                    # done without its start being overtaken first —
                    # e.g. trace filtered; treat as fast, no colour
                    pass
        self.actions.extend(out)
        return out

    def _overtake(self, exclude: Optional[int]) -> List[ColorAction]:
        out: List[ColorAction] = []
        for pc in self._open:
            if pc == exclude or pc in self._red:
                continue
            self._red.add(pc)
            out.append(ColorAction(pc, RED, "overtaken while running"))
        return out

    def finish(self) -> List[ColorAction]:
        """End of trace: instructions still open never finished; paint
        them RED (they are exactly where a hung query is stuck)."""
        out = self._overtake(exclude=None)
        self.actions.extend(out)
        return out

    @property
    def currently_red(self) -> set:
        """pcs painted RED right now (long-running, unfinished)."""
        return set(self._red)


def color_buffer(events: Iterable[TraceEvent]) -> List[ColorAction]:
    """Run the pair-sequence algorithm over a buffered trace fragment
    (the paper's run-time analysis applies it to the sampled buffer)."""
    colorizer = PairSequenceColorizer()
    out: List[ColorAction] = []
    for event in events:
        out.extend(colorizer.push(event))
    return out


class ThresholdColorizer:
    """User-specified execution-time threshold colouring.

    On a done event: RED when ``usec >= threshold`` (costly), GREEN
    otherwise.  :meth:`overdue` additionally reports instructions whose
    start is older than the threshold against a supplied clock — live
    RED candidates while they are still running.
    """

    def __init__(self, threshold_usec: int) -> None:
        if threshold_usec <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_usec = threshold_usec
        self._started: Dict[int, int] = {}
        self.actions: List[ColorAction] = []

    def push(self, event: TraceEvent) -> List[ColorAction]:
        """Process one event; returns the triggered colour actions."""
        out: List[ColorAction] = []
        if event.status == "start":
            self._started[event.pc] = event.clock_usec
        else:
            self._started.pop(event.pc, None)
            if event.usec >= self.threshold_usec:
                out.append(ColorAction(
                    event.pc, RED, f"usec {event.usec} >= threshold"
                ))
            else:
                out.append(ColorAction(
                    event.pc, GREEN, f"usec {event.usec} < threshold"
                ))
        self.actions.extend(out)
        return out

    def overdue(self, clock_usec: int) -> List[ColorAction]:
        """Still-running instructions already over the threshold."""
        out = []
        for pc, started in self._started.items():
            if clock_usec - started >= self.threshold_usec:
                out.append(ColorAction(pc, RED, "running over threshold"))
        return out
