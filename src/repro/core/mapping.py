"""Trace ↔ dot-file mapping (paper §3.3).

"The program counter (pc) is an important field in the trace, and is used
to map pc to a node number in a dot file.  For example, an instruction
execution trace statement with pc=1 maps to the node 'n1' in the dot
file.  The 'stmt' field in instruction execution trace represents a MAL
instruction and maps to the 'label' field in the dot file."
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.dot.graph import Digraph
from repro.errors import MappingError
from repro.metrics.families import MAPPING_LOOKUPS
from repro.profiler.events import TraceEvent

_NODE_RE = re.compile(r"^n(\d+)$")


def node_for_pc(pc: int) -> str:
    """Dot node name for a program counter (pc=1 → ``n1``)."""
    if pc < 0:
        raise MappingError(f"negative pc {pc}")
    return f"n{pc}"


def pc_for_node(node_id: str) -> int:
    """Program counter encoded in a dot node name (``n1`` → 1)."""
    match = _NODE_RE.match(node_id)
    if match is None:
        raise MappingError(f"node id {node_id!r} does not encode a pc")
    return int(match.group(1))


class PlanTraceMap:
    """Associates a plan graph with its execution trace.

    Construction validates every event's pc against the graph (an event
    without a node means the trace and dot file belong to different
    plans) and indexes events per node for tool-tips and replay.
    """

    def __init__(self, graph: Digraph, events: List[TraceEvent],
                 strict_labels: bool = False) -> None:
        self.graph = graph
        self.events = list(events)
        self._by_node: Dict[str, List[TraceEvent]] = {}
        hits = 0
        for event in self.events:
            node_id = node_for_pc(event.pc)
            if not graph.has_node(node_id):
                MAPPING_LOOKUPS.labels(result="hit").inc(hits)
                MAPPING_LOOKUPS.labels(result="miss").inc()
                raise MappingError(
                    f"trace event pc={event.pc} has no node {node_id!r} "
                    "in the dot file — trace/plan mismatch?"
                )
            hits += 1
            if strict_labels:
                label = graph.node(node_id).label
                if label and event.stmt and label != event.stmt:
                    raise MappingError(
                        f"stmt/label mismatch at pc={event.pc}: "
                        f"{event.stmt!r} vs {label!r}"
                    )
            self._by_node.setdefault(node_id, []).append(event)
        if hits:
            MAPPING_LOOKUPS.labels(result="hit").inc(hits)

    # ------------------------------------------------------------------

    def events_of(self, node_id: str) -> List[TraceEvent]:
        """All events of one node, in trace order."""
        return list(self._by_node.get(node_id, []))

    def done_event_of(self, node_id: str) -> Optional[TraceEvent]:
        """The (last) done event of a node, if it finished."""
        for event in reversed(self._by_node.get(node_id, [])):
            if event.status == "done":
                return event
        return None

    def executed_nodes(self) -> List[str]:
        """Nodes that appear in the trace, in first-appearance order."""
        seen = []
        visited = set()
        for event in self.events:
            node_id = node_for_pc(event.pc)
            if node_id not in visited:
                visited.add(node_id)
                seen.append(node_id)
        return seen

    def unexecuted_nodes(self) -> List[str]:
        """Plan nodes that never appear in the trace (e.g. the query was
        interrupted, or the trace was filtered)."""
        return [n for n in self.graph.nodes if n not in self._by_node]

    def coverage(self) -> float:
        """Fraction of plan nodes with at least one trace event."""
        if not self.graph.nodes:
            return 1.0
        return len(self._by_node) / len(self.graph.nodes)

    def total_usec(self) -> int:
        """Clock of the last event (query makespan)."""
        return max((e.clock_usec for e in self.events), default=0)
