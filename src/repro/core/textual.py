"""The textual Stethoscope (paper §3.2).

"The MonetDB profiler information is accessed through a textual version
of Stethoscope.  It uses a UDP socket interface to connect to MonetDB
server, for receiving the MonetDB execution trace.  The textual
Stethoscope can connect to multiple MonetDB servers at the same time to
receive execution traces from all (distributed) sources.  Its filter
options allow for selective tracing of execution states on each of the
connected servers."

Each :class:`ServerConnection` owns one UDP receiver (the port a server
streams to) and a client-side filter; :class:`TextualStethoscope` drains
any number of connections, splitting framed dot content from trace
events and optionally appending to trace files.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StethoscopeError, TraceFormatError
from repro.profiler.events import TraceEvent, format_event, parse_event
from repro.profiler.filters import EventFilter
from repro.profiler.stream import DOT_PREFIX, END_MARKER, UdpReceiver


class ServerConnection:
    """One connected (possibly remote) server's trace stream."""

    def __init__(self, name: str, receiver: UdpReceiver,
                 event_filter: Optional[EventFilter] = None) -> None:
        self.name = name
        self.receiver = receiver
        self.event_filter = event_filter or EventFilter()
        self.events: List[TraceEvent] = []
        self.dot_lines: List[str] = []
        self.dropped = 0  # events rejected by the filter
        self.malformed = 0
        self.ended = False

    @property
    def port(self) -> int:
        """The UDP port this connection listens on (give it to the
        server's profiler)."""
        return self.receiver.port

    def drain(self, max_lines: int = 10000, timeout: float = 0.05) -> int:
        """Pull available datagrams; returns how many lines arrived."""
        received = 0
        for _ in range(max_lines):
            line = self.receiver.try_line(timeout=timeout)
            if line is None:
                break
            received += 1
            self._consume(line)
        return received

    def _consume(self, line: str) -> None:
        if line == END_MARKER:
            self.ended = True
            return
        if line.startswith(DOT_PREFIX):
            self.dot_lines.append(line[len(DOT_PREFIX):])
            return
        try:
            event = parse_event(line)
        except TraceFormatError:
            self.malformed += 1
            return
        if self.event_filter.matches(event):
            self.events.append(event)
        else:
            self.dropped += 1

    def dot_text(self) -> str:
        """The dot file shipped ahead of the trace (may be empty)."""
        return "\n".join(self.dot_lines)

    def write_trace_file(self, path: str) -> int:
        """Dump collected (filtered) events to a trace file."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(format_event(event) + "\n")
        return len(self.events)

    def write_dot_file(self, path: str) -> None:
        """Dump the received dot content to a file (paper: "generates a
        new dot file, and stores the content in it")."""
        with open(path, "w") as handle:
            handle.write(self.dot_text() + "\n")

    def close(self) -> None:
        self.receiver.close()


class TextualStethoscope:
    """Aggregates any number of server connections."""

    def __init__(self) -> None:
        self.connections: Dict[str, ServerConnection] = {}

    def connect(self, name: str,
                event_filter: Optional[EventFilter] = None,
                host: str = "127.0.0.1", port: int = 0) -> ServerConnection:
        """Open a listening port for one server; returns the connection
        (its ``.port`` is what the server must stream to)."""
        if name in self.connections:
            raise StethoscopeError(f"connection {name!r} already exists")
        connection = ServerConnection(
            name, UdpReceiver(host=host, port=port), event_filter
        )
        self.connections[name] = connection
        return connection

    def adopt(self, name: str, connection: ServerConnection) -> None:
        """Register an externally constructed connection (tests)."""
        if name in self.connections:
            raise StethoscopeError(f"connection {name!r} already exists")
        self.connections[name] = connection

    def connection(self, name: str) -> ServerConnection:
        try:
            return self.connections[name]
        except KeyError:
            raise StethoscopeError(f"no connection {name!r}") from None

    def drain_all(self, timeout: float = 0.05) -> int:
        """Drain every connection once; returns total lines received."""
        return sum(
            c.drain(timeout=timeout) for c in self.connections.values()
        )

    def drain_until_ended(self, max_rounds: int = 200,
                          timeout: float = 0.05) -> None:
        """Drain until every connection saw its END marker (or rounds
        run out — a stalled stream should not hang the client)."""
        for _ in range(max_rounds):
            self.drain_all(timeout=timeout)
            if all(c.ended for c in self.connections.values()):
                return

    def merged_events(self) -> List[TraceEvent]:
        """All servers' events merged by trace clock (distributed view)."""
        merged: List[TraceEvent] = []
        for connection in self.connections.values():
            merged.extend(connection.events)
        merged.sort(key=lambda e: (e.clock_usec, e.event))
        return merged

    def close(self) -> None:
        for connection in self.connections.values():
            connection.close()

    def __enter__(self) -> "TextualStethoscope":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
