"""The Stethoscope facade: offline and online analysis sessions.

Offline mode follows the paper's workflow to the letter (§4): "the dot
file gets parsed and an intermediate scalar vector graphics (svg)
representation gets created.  In the next step, the svg file gets parsed
and an in memory graph structure gets created. ... Stethoscope parses
the trace file in a sequential manner."
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from repro.core.analysis import (
    costly_clusters,
    detect_sequential_anomaly,
    memory_by_operator,
    parallelism_profile,
    thread_utilization,
)
from repro.core.birdseye import render_birdseye, segment_trace
from repro.core.coloring import ColorAction
from repro.core.inspect import DebugWindow, tooltip_text
from repro.core.mapping import PlanTraceMap
from repro.core.microanalysis import TraceAnalyzer
from repro.core.online import OnlineSession
from repro.core.painter import GraphPainter
from repro.core.pruning import prune_administrative
from repro.core.replay import ReplayController
from repro.core.textual import ServerConnection, TextualStethoscope
from repro.dot.graph import Digraph
from repro.dot.parser import parse_dot
from repro.errors import StethoscopeError
from repro.layout import layout_graph
from repro.profiler.events import TraceEvent
from repro.profiler.traceio import iter_trace
from repro.svg import layout_to_svg, svg_to_graph
from repro.viz.color import gradient_for
from repro.viz.events import EventDispatchQueue
from repro.viz.view import View
from repro.viz.vspace import build_virtual_space


class OfflineSession:
    """An interactive analysis session over a dot file and a trace file."""

    def __init__(self, dot_text: str, events: List[TraceEvent],
                 threshold_usec: Optional[int] = None,
                 render_interval_ms: float = 150.0) -> None:
        # the paper's exact pipeline: dot -> graph -> (layout) -> svg ->
        # in-memory graph structure used for navigation
        parsed = parse_dot(dot_text)
        self.layout = layout_graph(parsed)
        self.svg_text = layout_to_svg(self.layout)
        self.graph: Digraph = svg_to_graph(self.svg_text)
        # carry the plan labels over (svg preserves them, but keep the
        # richer dot attrs too)
        for node_id, node in parsed.nodes.items():
            self.graph.node(node_id).attrs.setdefault(
                "label", node.label
            )
        self.space = build_virtual_space(self.layout)
        self.view = View(self.space)
        self.view.fit_all()
        self.trace_map = PlanTraceMap(self.graph, events)
        self.painter = GraphPainter(
            self.space, EventDispatchQueue(render_interval_ms)
        )
        self.replay = ReplayController(events, self.painter, threshold_usec)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        return self.trace_map.events

    def tooltip(self, node_id: str) -> str:
        """Tool-tip text for one node."""
        return tooltip_text(self.trace_map, node_id)

    def navigator(self, animated: bool = False):
        """A :class:`~repro.core.navigation.Navigator` over this plan,
        camera-coupled to the session's view."""
        from repro.core.navigation import Navigator
        from repro.viz.animation import Animator

        return Navigator(
            self.graph, self.layout, view=self.view,
            animator=Animator() if animated else None,
        )

    def debug_window(self, name: str, pcs) -> DebugWindow:
        """A debug-options window over selected pcs, pre-fed with the
        events replayed so far."""
        window = DebugWindow(name, set(pcs))
        for event in self.events[: self.replay.position]:
            window.observe(event)
        return window

    def birdseye(self, width: int = 72) -> str:
        """The bird's-eye trace clustering band."""
        return render_birdseye(segment_trace(self.events), width)

    def analyzer(self) -> TraceAnalyzer:
        """The micro-analysis interface over the full trace."""
        return TraceAnalyzer(self.events)

    def thread_utilization(self):
        return thread_utilization(self.events)

    def memory_by_operator(self):
        return memory_by_operator(self.events)

    def costly_clusters(self, fraction: float = 0.8):
        return costly_clusters(self.events, fraction)

    def parallelism(self):
        return parallelism_profile(self.events)

    def sequential_anomaly(self, expected_threads: int):
        return detect_sequential_anomaly(self.events, expected_threads)

    # ------------------------------------------------------------------
    # display extensions
    # ------------------------------------------------------------------

    def apply_gradient_coloring(self) -> int:
        """Future-work feature: paint every executed node on the
        GREEN→RED gradient according to its execution time."""
        done = [e for e in self.events if e.status == "done"]
        if not done:
            return 0
        low = min(e.usec for e in done)
        high = max(e.usec for e in done)
        painted = 0
        for event in done:
            color = gradient_for(event.usec, low, high)
            self.painter.apply(ColorAction(event.pc, color, "gradient"))
            painted += 1
        self.painter.flush()
        return painted

    def pruned_view(self, prune_result_plumbing: bool = False) -> Digraph:
        """The plan with administrative instructions pruned out."""
        return prune_administrative(
            self.graph, prune_result_plumbing=prune_result_plumbing
        )

    def render_ascii(self, columns: int = 100, rows: int = 36) -> str:
        """Render the current display state as text."""
        return self.view.render_ascii(columns, rows)

    def save_svg(self, path: str) -> None:
        """Write the display (current colours) as an SVG file."""
        with open(path, "w") as handle:
            handle.write(self.view.render_svg())

    def save_screenshot(self, path: str, width: int = 1280,
                        height: int = 960) -> None:
        """Write the display (current colours) as a PPM image."""
        from repro.viz.raster import screenshot

        screenshot(self.space, path, width=width, height=height)

    def minimap(self, columns: int = 48, rows: int = 16) -> str:
        """Overview+detail: the whole plan with the view's viewport
        rectangle marked."""
        from repro.viz.minimap import Minimap

        return Minimap(self.space, columns, rows).render(self.view)

    def memory_sparkline(self, width: int = 60) -> str:
        """The rss-over-time sparkline of the trace."""
        from repro.core.analysis import render_rss_sparkline

        return render_rss_sparkline(self.events, width)


class Stethoscope:
    """Top-level entry point mirroring the paper's two modes."""

    @staticmethod
    def offline(dot_path: str, trace_path: str,
                threshold_usec: Optional[int] = None) -> OfflineSession:
        """Open an offline session from files on disk (paper §4.1:
        "Offline mode needs access to a preexisting dot file and trace
        file")."""
        if not os.path.exists(dot_path):
            raise StethoscopeError(f"no dot file at {dot_path!r}")
        if not os.path.exists(trace_path):
            raise StethoscopeError(f"no trace file at {trace_path!r}")
        with open(dot_path) as handle:
            dot_text = handle.read()
        events = list(iter_trace(trace_path))
        return OfflineSession(dot_text, events, threshold_usec)

    @staticmethod
    def offline_from_memory(dot_text: str, events: List[TraceEvent],
                            threshold_usec: Optional[int] = None
                            ) -> OfflineSession:
        """Open an offline session from in-memory plan and trace."""
        return OfflineSession(dot_text, events, threshold_usec)

    @staticmethod
    def online(connection: ServerConnection, run_query: Callable,
               workdir: str, backlog_threshold: int = 32) -> OnlineSession:
        """Prepare an online session against a live server connection."""
        return OnlineSession(connection, run_query, workdir,
                             backlog_threshold)
