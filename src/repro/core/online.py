"""Online mode: live monitoring of a running query (paper §4.2).

"Online mode components use a multi-threaded design.  As a first step,
the textual Stethoscope is launched in a dedicated thread [listening for
the UDP stream].  The query whose execution plan needs to be analyzed is
launched next in a separate thread.  ...  A separate thread monitors the
received UDP stream for dot file and execution trace file content."

The monitor builds the display as soon as the dot content has arrived,
then feeds trace events through the colouring algorithm into the render
queue.  When the queue backlog exceeds a threshold — the ~150 ms/node
render ceiling cannot keep up with a fast event stream — the monitor
*samples*: it keeps the RED (long-running) actions and drops GREEN
repaints, which is the run-time filtering the paper describes applying
to the buffered trace.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.coloring import ColorAction, PairSequenceColorizer
from repro.core.painter import GraphPainter
from repro.core.textual import ServerConnection
from repro.dot.graph import Digraph
from repro.dot.parser import parse_dot
from repro.errors import StethoscopeError
from repro.layout import layout_graph
from repro.metrics.families import (
    ONLINE_EVENTS,
    ONLINE_RUNS,
    ONLINE_SAMPLED_OUT,
)
from repro.profiler.events import TraceEvent
from repro.viz.color import GREEN
from repro.viz.events import EventDispatchQueue
from repro.viz.vspace import VirtualSpace, build_virtual_space


@dataclass
class OnlineResult:
    """Everything an online monitoring run produced."""

    graph: Optional[Digraph]
    space: Optional[VirtualSpace]
    painter: Optional[GraphPainter]
    events: List[TraceEvent]
    dot_path: Optional[str]
    trace_path: Optional[str]
    query_result: Any
    sampled_out: int  # colour actions dropped by sampling
    red_pcs: List[int] = field(default_factory=list)
    #: live progress state at end of run (complete unless interrupted)
    progress: Any = None
    #: pop-ups raised for long-running instructions during the run
    popups: List[Any] = field(default_factory=list)

    def to_offline_session(self, threshold_usec: Optional[int] = None):
        """Reopen this run's plan and trace as an offline session — the
        natural follow-up after live monitoring ends: replay what was
        just watched, at leisure."""
        from repro.core.session import OfflineSession
        from repro.dot.writer import graph_to_dot
        from repro.errors import StethoscopeError

        if self.graph is None:
            raise StethoscopeError("no plan was received during the run")
        return OfflineSession(graph_to_dot(self.graph), self.events,
                              threshold_usec)


class OnlineSession:
    """Drives one online monitoring run.

    Args:
        connection: the textual-stethoscope connection the server
            streams to.
        run_query: launches the query on the server (called in the query
            thread); its return value lands in the result.
        workdir: where the dot and trace files are written.
        backlog_threshold: render-queue backlog above which GREEN
            actions are sampled out.
        render_interval_ms: the EDT pacing (the paper's ~150 ms).
    """

    def __init__(self, connection: ServerConnection,
                 run_query: Callable[[], Any],
                 workdir: str,
                 backlog_threshold: int = 32,
                 render_interval_ms: float = 150.0,
                 popup_threshold_usec: int = 10_000) -> None:
        self.connection = connection
        self.run_query = run_query
        self.workdir = workdir
        self.backlog_threshold = backlog_threshold
        self.render_interval_ms = render_interval_ms
        self.popup_threshold_usec = popup_threshold_usec

    def run(self, timeout_s: float = 30.0) -> OnlineResult:
        """Run listener, query and monitor threads until the stream ends.

        Raises:
            StethoscopeError: when the stream never ends within the
                timeout and no END marker was seen.
        """
        ONLINE_RUNS.inc()
        stop = threading.Event()
        query_out: List[Any] = []
        query_err: List[BaseException] = []

        def listener() -> None:
            while not stop.is_set() and not self.connection.ended:
                self.connection.drain(timeout=0.02)

        def query() -> None:
            try:
                query_out.append(self.run_query())
            except BaseException as exc:  # surfaced after join
                query_err.append(exc)

        listener_thread = threading.Thread(target=listener, daemon=True)
        query_thread = threading.Thread(target=query, daemon=True)
        listener_thread.start()
        query_thread.start()

        from repro.core.progress import PopupManager, ProgressWindow

        graph: Optional[Digraph] = None
        space: Optional[VirtualSpace] = None
        painter: Optional[GraphPainter] = None
        colorizer = PairSequenceColorizer()
        progress: Optional[ProgressWindow] = None
        popups = PopupManager(self.popup_threshold_usec)
        consumed = 0
        sampled_out = 0
        began = time.monotonic()
        deadline = began + timeout_s

        def elapsed_ms() -> float:
            return (time.monotonic() - began) * 1000.0

        while time.monotonic() < deadline:
            if graph is None and self.connection.dot_lines and \
                    (self.connection.events or self.connection.ended):
                # dot content is complete once execution events flow
                graph = parse_dot(self.connection.dot_text())
                space = build_virtual_space(layout_graph(graph))
                painter = GraphPainter(
                    space, EventDispatchQueue(self.render_interval_ms)
                )
            if graph is not None and progress is None:
                progress = ProgressWindow(plan_size=graph.node_count())
            new_events = self.connection.events[consumed:]
            consumed += len(new_events)
            if new_events:
                ONLINE_EVENTS.inc(len(new_events))
            for event in new_events:
                if progress is not None:
                    progress.observe(event)
                popups.observe(event)
                actions = colorizer.push(event)
                if painter is not None:
                    sampled_out += self._apply_sampled(painter, actions)
            if new_events:
                popups.tick(new_events[-1].clock_usec)
            if painter is not None:
                painter.pump(elapsed_ms())
            if self.connection.ended and consumed >= len(
                self.connection.events
            ):
                break
            time.sleep(0.005)
        stop.set()
        listener_thread.join(timeout=2.0)
        query_thread.join(timeout=2.0)
        if query_err:
            raise query_err[0]
        if not self.connection.ended:
            raise StethoscopeError(
                "online stream did not finish within the timeout"
            )
        final_actions = colorizer.finish()
        if painter is not None:
            painter.apply_all(final_actions)
            painter.flush()
        dot_path = trace_path = None
        if self.connection.dot_lines:
            dot_path = os.path.join(self.workdir, "plan.dot")
            self.connection.write_dot_file(dot_path)
        if self.connection.events:
            trace_path = os.path.join(self.workdir, "query.trace")
            self.connection.write_trace_file(trace_path)
        return OnlineResult(
            graph=graph, space=space, painter=painter,
            events=list(self.connection.events),
            dot_path=dot_path, trace_path=trace_path,
            query_result=query_out[0] if query_out else None,
            sampled_out=sampled_out,
            red_pcs=sorted(colorizer.currently_red),
            progress=progress,
            popups=list(popups.popups),
        )

    def _apply_sampled(self, painter: GraphPainter,
                       actions: List[ColorAction]) -> int:
        """Apply actions with backlog-based sampling; returns drops."""
        dropped = 0
        for action in actions:
            if (painter.backlog() > self.backlog_threshold
                    and action.color == GREEN):
                dropped += 1
                continue
            painter.apply(action)
        if dropped:
            ONLINE_SAMPLED_OUT.inc(dropped)
        return dropped
